"""Benchmarks regenerating Table 1 and Table 2."""

from repro.experiments import table1, table2

from conftest import run_once


def bench_table1(benchmark):
    result = run_once(benchmark, table1.run)
    rows = {r["access_width"]: r for r in result["rows"]}
    assert rows["Word (32 Bit)"]["main_memory"] == 4
    assert rows["Word (32 Bit)"]["scratchpad"] == 1
    assert rows["Byte (8 Bit)"]["main_memory"] == 2
    benchmark.extra_info["rows"] = len(result["rows"])


def bench_table2(benchmark):
    result = run_once(benchmark, table2.run)
    names = [r["name"] for r in result["rows"]]
    assert names == ["G.721", "ADPCM", "MultiSort"]
    assert all(r["code_bytes"] > 0 for r in result["rows"])
    benchmark.extra_info["benchmarks"] = names


def test_bench_modules_register():  # keeps plain pytest green on this dir
    assert callable(table1.run) and callable(table2.run)
