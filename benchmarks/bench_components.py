"""Micro-benchmarks of the tool-stack components.

These time the pieces a user pays for repeatedly: compilation, simulation
throughput, the cache fixpoint, IPET solving and the knapsack ILP.
"""

from repro.benchmarks import get
from repro.ilp import Model
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.spm import Item, solve_knapsack_ilp
from repro.wcet import CacheAnalysis, analyze_wcet, build_all_cfgs
from repro.wcet.stackdepth import stack_region


def bench_compile_g721(benchmark):
    source = get("g721").source()
    compiled = benchmark(compile_source, source)
    assert any(f.name == "g721_encoder"
               for f in compiled.program.functions)


def bench_simulate_adpcm_uncached(benchmark):
    image = link(compile_source(get("adpcm").source()).program)
    config = SystemConfig.uncached()
    result = benchmark(simulate, image, config)
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["mips_equivalent"] = round(
        result.instructions / max(benchmark.stats["mean"], 1e-9) / 1e6, 2)


def bench_simulate_adpcm_cached(benchmark):
    image = link(compile_source(get("adpcm").source()).program)
    config = SystemConfig.cached(CacheConfig(size=1024))
    result = benchmark(simulate, image, config)
    assert result.cache_stats.hits > 0


def bench_cache_fixpoint_g721(benchmark):
    image = link(compile_source(get("g721").source()).program)
    cfgs = build_all_cfgs(image)
    entry_by_addr = {c.entry: n for n, c in cfgs.items()}
    rng = stack_region(cfgs, "_start", entry_by_addr)

    def run():
        return CacheAnalysis(image, cfgs, CacheConfig(size=1024), rng,
                             "_start").run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.classes


def bench_wcet_analysis_multisort(benchmark):
    image = link(compile_source(get("multisort").source()).program)
    config = SystemConfig.uncached()
    result = benchmark.pedantic(analyze_wcet, args=(image, config),
                                rounds=3, iterations=1)
    assert result.wcet > 0


def bench_ipet_ilp_solve(benchmark):
    # A representative IPET-sized ILP (flow + bounds structure).
    def solve():
        model = Model("bench", maximize=True)
        xs = [model.add_var(f"x{i}", integer=True) for i in range(40)]
        for left, right in zip(xs, xs[1:]):
            model.add_le({left: 1, right: -1}, 0)
        model.add_le({xs[0]: 1}, 1)
        for i, x in enumerate(xs[1:], start=1):
            model.add_le({x: 1, xs[0]: -10}, 0)
        model.set_objective({x: 3 + (i % 7)
                             for i, x in enumerate(xs)})
        return model.solve()

    solution = benchmark(solve)
    assert solution.is_optimal


def bench_knapsack_ilp(benchmark):
    items = [Item(f"obj{i}", size=16 + (i * 37) % 300,
                  benefit=float(1 + (i * 13) % 97))
             for i in range(40)]

    def solve():
        return solve_knapsack_ilp(items, 2048)

    chosen, benefit = benchmark(solve)
    assert benefit > 0
