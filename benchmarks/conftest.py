"""Shared fixtures for the benchmark harness.

Every paper artefact (table/figure) has a ``bench_*`` module that
regenerates it through pytest-benchmark, asserting the paper's qualitative
shape on the result.  Heavy sweeps run in reduced (``fast``) form inside
the timing loop; `repro-experiments` regenerates the full versions.
"""

import pytest

from repro.benchmarks import get
from repro.workflow import Workflow

_CACHE = {}


@pytest.fixture(scope="session")
def workflow_factory():
    def factory(key):
        if key not in _CACHE:
            _CACHE[key] = Workflow(get(key).source())
            _CACHE[key].profile()  # warm the compile+profile steps
        return _CACHE[key]
    return factory


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
