"""Simulator throughput across hierarchy depths (the perf trajectory).

Each benchmark here runs the same executable through a deeper and deeper
level pipeline and reports simulated instructions per host second — the
cost of the composable hierarchy model itself.  Run under pytest-benchmark
as part of the harness, or directly::

    PYTHONPATH=src python benchmarks/bench_hierarchy.py

which writes ``BENCH_hierarchy.json`` next to this file so the repo's
performance trajectory is tracked commit over commit.
"""

import json
import time
from pathlib import Path

from repro.benchmarks import get
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate

#: One executable, every hierarchy depth the pipeline supports.
CONFIGS = {
    "uncached": SystemConfig.uncached(),
    "l1": SystemConfig.cached(CacheConfig(size=1024)),
    "l1+l2": SystemConfig.two_level(CacheConfig(size=1024),
                                    CacheConfig(size=4096)),
    "split-i/d": SystemConfig.split_l1(
        CacheConfig(size=512, unified=False), CacheConfig(size=512)),
}

_IMAGE = None


def _image():
    global _IMAGE
    if _IMAGE is None:
        _IMAGE = link(compile_source(get("adpcm").source()).program)
    return _IMAGE


def _throughput_bench(benchmark, label):
    image = _image()
    result = benchmark(simulate, image, CONFIGS[label])
    benchmark.extra_info["instructions"] = result.instructions
    benchmark.extra_info["instructions_per_sec"] = round(
        result.instructions / max(benchmark.stats["mean"], 1e-9))


def bench_sim_uncached(benchmark):
    _throughput_bench(benchmark, "uncached")


def bench_sim_l1(benchmark):
    _throughput_bench(benchmark, "l1")


def bench_sim_l1_l2(benchmark):
    _throughput_bench(benchmark, "l1+l2")


def bench_sim_split_id(benchmark):
    _throughput_bench(benchmark, "split-i/d")


def bench_sim_hybrid(benchmark):
    """SPM in front of an L1 (needs its own link with SPM placement)."""
    program = compile_source(get("adpcm").source()).program
    chosen, used = [], 0
    for name, _kind, size in sorted(program.memory_objects(),
                                    key=lambda o: o[2]):
        aligned = (size + 3) & ~3
        if used + aligned <= 512:
            chosen.append(name)
            used += aligned
    image = link(program, spm_size=512, spm_objects=chosen)
    config = SystemConfig.hybrid(512, CacheConfig(size=512))
    result = benchmark(simulate, image, config)
    benchmark.extra_info["instructions_per_sec"] = round(
        result.instructions / max(benchmark.stats["mean"], 1e-9))


def main(rounds: int = 3) -> dict:
    """Standalone run: measure every config, write BENCH_hierarchy.json."""
    image = _image()
    report = {}
    for label, config in CONFIGS.items():
        best = None
        for _ in range(rounds):
            start = time.perf_counter()
            result = simulate(image, config)
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best:
                best = elapsed
        report[label] = {
            "sim_cycles": result.cycles,
            "instructions": result.instructions,
            "seconds": round(best, 4),
            "instructions_per_sec": round(result.instructions / best),
        }
    out_path = Path(__file__).parent / "BENCH_hierarchy.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


if __name__ == "__main__":
    for label, row in main().items():
        print(f"{label:10} {row['instructions_per_sec']:>10} instr/s "
              f"({row['instructions']} instr in {row['seconds']}s)")
