"""Benchmarks regenerating Figure 5 (MultiSort) and Figure 6 (ADPCM)."""

from repro.experiments import fig5_ratio_multisort, fig6_adpcm

from conftest import run_once


def bench_fig5_multisort(benchmark):
    result = run_once(benchmark, fig5_ratio_multisort.run, fast=True)
    rows = result["rows"]
    spm_ratios = [r["spm_ratio"] for r in rows]
    # Paper: roughly constant SPM ratio (about 3x from typical input),
    # growing cache ratio.
    assert max(spm_ratios) / min(spm_ratios) < 1.25
    assert 1.5 < spm_ratios[0] < 4.5
    assert rows[-1]["cache_ratio"] > rows[0]["cache_ratio"]
    benchmark.extra_info["rows"] = rows


def bench_fig6_adpcm(benchmark):
    result = run_once(benchmark, fig6_adpcm.run, fast=True)
    spm = result["spm"]
    cache = result["cache"]
    # Severe small-cache degradation vs. the small scratchpad.
    assert cache[0]["sim_cycles"] > 1.5 * spm[0]["sim_cycles"]
    # Low overall WCET/sim deviation on the scratchpad side.
    assert all(r["ratio"] < 1.5 for r in spm)
    # Cache WCET does not follow the average case.
    assert cache[-1]["ratio"] > spm[-1]["ratio"] * 2
    benchmark.extra_info["spm_rows"] = spm
    benchmark.extra_info["cache_rows"] = cache
