"""Benchmarks for Figure 2 (annotation file) and the §4 precision check."""

from repro.experiments import fig2_annotations, xtra_worstcase_sort

from conftest import run_once


def bench_fig2_annotations(benchmark):
    result = run_once(benchmark, fig2_annotations.run)
    row = result["rows"][0]
    assert row["areas"] > 5
    assert row["loop_bounds"] > 3
    assert row["access_ranges"] > 10
    text = result["text"]
    assert "# Scratchpad" in text and "Literal pool" in text
    benchmark.extra_info.update(row)


def bench_worstcase_sort_precision(benchmark):
    result = run_once(benchmark, xtra_worstcase_sort.run)
    row = result["rows"][0]
    # Paper: WCET and simulation "only differed by [a small percentage]".
    assert 0 <= row["gap_percent"] < 3.0
    assert row["wcet_cycles"] >= row["sim_cycles"]
    benchmark.extra_info.update(row)
