"""Unified performance suite: simulator throughput + WCET analysis time.

Measures the two hot paths this repo's experiments are built on and
writes one JSON artefact per engine, next to this file:

* ``BENCH_simulator.json`` — simulated instructions per host second for
  the ADPCM executable across every hierarchy depth (the same configs as
  :mod:`bench_hierarchy`), plus the speedup factor versus the committed
  ``BENCH_hierarchy.json`` trajectory baseline;
* ``BENCH_wcet.json`` — wall seconds for a whole-program WCET analysis
  on representative (benchmark × hierarchy) points, plus the computed
  bound (so an accidental semantic change shows up in review).

Every measurement is the best of ``--rounds`` (default 3)
``time.perf_counter`` runs on a freshly built simulator/analysis, so
one-off scheduler noise doesn't contaminate the committed baselines.

CI runs ``python benchmarks/bench_suite.py --check``, which re-measures
and fails when any point regresses by more than ``--tolerance`` (default
30%) against the committed baselines — the bench-smoke job.

Usage::

    PYTHONPATH=src python benchmarks/bench_suite.py            # write
    PYTHONPATH=src python benchmarks/bench_suite.py --check    # compare
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.benchmarks import get
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.wcet.analyzer import analyze_wcet

from bench_hierarchy import CONFIGS as SIM_CONFIGS

_HERE = Path(__file__).parent
SIM_BASELINE = _HERE / "BENCH_hierarchy.json"
SIM_REPORT = _HERE / "BENCH_simulator.json"
WCET_REPORT = _HERE / "BENCH_wcet.json"

#: (label, benchmark, SystemConfig) points for the WCET timing section.
WCET_POINTS = (
    ("g721/l1-256", "g721",
     SystemConfig.cached(CacheConfig(size=256))),
    ("g721/l1+l2", "g721",
     SystemConfig.two_level(CacheConfig(size=256),
                            CacheConfig(size=1024))),
    ("adpcm/split-i/d", "adpcm",
     SystemConfig.split_l1(CacheConfig(size=256, unified=False),
                           CacheConfig(size=256))),
    ("multisort/uncached", "multisort", SystemConfig.uncached()),
)

_IMAGES = {}


def _image(key):
    if key not in _IMAGES:
        _IMAGES[key] = link(compile_source(get(key).source()).program)
    return _IMAGES[key]


def _best_of(rounds, func):
    """(best seconds, last result) over *rounds* timed runs."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_simulator(rounds=3) -> dict:
    """Throughput per hierarchy config, with speedup vs. the committed
    BENCH_hierarchy.json baseline when one is present."""
    baseline = {}
    if SIM_BASELINE.exists():
        baseline = json.loads(SIM_BASELINE.read_text())
    image = _image("adpcm")
    report = {}
    for label, config in SIM_CONFIGS.items():
        seconds, result = _best_of(
            rounds, lambda config=config: simulate(image, config))
        per_sec = round(result.instructions / seconds)
        entry = {
            "sim_cycles": result.cycles,
            "instructions": result.instructions,
            "seconds": round(seconds, 4),
            "instructions_per_sec": per_sec,
        }
        base = baseline.get(label, {}).get("instructions_per_sec")
        if base:
            entry["speedup_vs_baseline"] = round(per_sec / base, 2)
        report[label] = entry
    return report


def bench_wcet(rounds=3) -> dict:
    """WCET analysis wall time per representative point."""
    report = {}
    for label, bench, config in WCET_POINTS:
        image = _image(bench)
        seconds, result = _best_of(
            rounds,
            lambda image=image, config=config: analyze_wcet(image, config))
        report[label] = {
            "wcet_cycles": result.wcet,
            "seconds": round(seconds, 4),
        }
    return report


def check(sim_report, wcet_report, tolerance) -> int:
    """Compare fresh measurements against the committed baselines.

    Returns the number of regressions beyond *tolerance* (a fraction:
    0.3 means "fail when >30% slower than the committed number").
    """
    failures = 0
    floor = 1.0 - tolerance
    if SIM_REPORT.exists():
        committed = json.loads(SIM_REPORT.read_text())
        for label, entry in sim_report.items():
            base = committed.get(label, {}).get("instructions_per_sec")
            if not base:
                continue
            ratio = entry["instructions_per_sec"] / base
            status = "ok" if ratio >= floor else "REGRESSION"
            print(f"sim  {label:12} {entry['instructions_per_sec']:>9}"
                  f" instr/s  ({ratio:.2f}x committed)  {status}")
            failures += status != "ok"
    else:
        print(f"sim  baseline {SIM_REPORT.name} missing; nothing to check")
    if WCET_REPORT.exists():
        committed = json.loads(WCET_REPORT.read_text())
        for label, entry in wcet_report.items():
            base = committed.get(label, {}).get("seconds")
            if not base:
                continue
            # Throughput ratio: committed seconds / measured seconds.
            ratio = base / entry["seconds"] if entry["seconds"] else 1.0
            status = "ok" if ratio >= floor else "REGRESSION"
            print(f"wcet {label:20} {entry['seconds']:.4f}s"
                  f"  ({ratio:.2f}x committed)  {status}")
            failures += status != "ok"
    else:
        print(f"wcet baseline {WCET_REPORT.name} missing; nothing to check")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure simulator + WCET throughput; write or "
                    "check the BENCH_*.json baselines.")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed runs per point, best kept (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed BENCH_*.json "
                             "instead of rewriting them")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed throughput regression fraction for "
                             "--check (default 0.30)")
    args = parser.parse_args(argv)

    sim_report = bench_simulator(args.rounds)
    wcet_report = bench_wcet(args.rounds)

    if args.check:
        failures = check(sim_report, wcet_report, args.tolerance)
        if failures:
            print(f"{failures} benchmark(s) regressed beyond "
                  f"{100 * args.tolerance:.0f}%")
            return 1
        print("bench-smoke: no regressions")
        return 0

    SIM_REPORT.write_text(json.dumps(sim_report, indent=2) + "\n")
    WCET_REPORT.write_text(json.dumps(wcet_report, indent=2) + "\n")
    for label, entry in sim_report.items():
        speedup = entry.get("speedup_vs_baseline")
        extra = f"  ({speedup}x baseline)" if speedup else ""
        print(f"sim  {label:12} {entry['instructions_per_sec']:>9} "
              f"instr/s{extra}")
    for label, entry in wcet_report.items():
        print(f"wcet {label:20} {entry['seconds']:.4f}s "
              f"(WCET {entry['wcet_cycles']} cycles)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
