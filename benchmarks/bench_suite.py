"""Unified performance suite: simulator throughput + WCET analysis time.

Measures the two hot paths this repo's experiments are built on and
writes one JSON artefact per engine, next to this file:

* ``BENCH_simulator.json`` — simulated instructions per host second for
  the ADPCM executable across every hierarchy depth (the same configs as
  :mod:`bench_hierarchy`), plus the speedup factor versus the committed
  ``BENCH_hierarchy.json`` trajectory baseline.  Each config also gets
  a ``<label> (replay)`` row — re-pricing the recorded trace instead of
  re-executing — alongside a one-off ``trace-record`` row, a
  ``sweep-x8 (replay)`` row for the single-pass Mattson kernel serving
  all eight paper cache sizes at once (its throughput counts the
  trace's instructions once per size served), a
  ``geometry-grid (replay)`` row pricing a 32-point
  (size × associativity) instruction-cache grid in one pass (asserted
  equal to per-point replay), and a ``trace-rle-load`` row unpickling
  the run-length-encoded trace and expanding its ops;
* ``BENCH_wcet.json`` — wall seconds for a whole-program WCET analysis
  on every hierarchy shape × {g721, adpcm, multisort} point, plus the
  computed bound (so an accidental semantic change shows up in review).
  Each point records ``cold_seconds`` (first run after
  ``clear_analysis_caches()``: the full CFG + fixpoint + IPET cost) and
  ``seconds`` (best of the remaining rounds, i.e. the warm path a sweep
  actually pays, with the content-addressed reuse caches hitting);
* ``BENCH_experiments.json`` — wall seconds per full-sweep experiment
  (the ``repro-experiments`` artefact regeneration), the end-to-end
  number the two baselines above exist to protect;
* ``BENCH_store.json`` — the ``ArtifactStore`` full-cycle cost versus
  the raw-pickle disk idiom it replaced, as a paired median ratio.
  Unlike the other sections this gate is same-run (store vs raw on the
  same host, seconds apart), so it holds on any machine.
* ``BENCH_serve.json`` — daemon round-trip throughput for the
  ``repro-serve-load`` standard request mix against a freshly spawned
  ``repro-serve`` daemon, with every response verified byte-identical
  to direct evaluation.  The throughput number is what the dedup +
  memo machinery buys (most of the mix coalesces); correctness is a
  hard in-run gate (any verification failure aborts the section).

Every timing is the best of ``--rounds`` (default 3)
``time.perf_counter`` runs (experiments run once: they are long and
internally averaged enough to be stable), so one-off scheduler noise
doesn't contaminate the committed baselines.

CI runs ``python benchmarks/bench_suite.py --check``, which re-measures
and fails when any point regresses by more than ``--tolerance`` (default
30%) against the committed baselines — the bench-smoke job.

Usage::

    PYTHONPATH=src python benchmarks/bench_suite.py            # write
    PYTHONPATH=src python benchmarks/bench_suite.py --check    # compare
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.benchmarks import get
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
import pickle

from repro.sim import (record_trace, replay, replay_grid, replay_sweep,
                       simulate)
from repro.wcet.analyzer import analyze_wcet, clear_analysis_caches
from repro.workflow import PAPER_SIZES

from bench_hierarchy import CONFIGS as SIM_CONFIGS

_HERE = Path(__file__).parent
SIM_BASELINE = _HERE / "BENCH_hierarchy.json"
SIM_REPORT = _HERE / "BENCH_simulator.json"
WCET_REPORT = _HERE / "BENCH_wcet.json"
EXPERIMENTS_REPORT = _HERE / "BENCH_experiments.json"
STORE_REPORT = _HERE / "BENCH_store.json"
SERVE_REPORT = _HERE / "BENCH_serve.json"

#: The four hierarchy shapes every WCET benchmark is analysed under.
WCET_SHAPES = (
    ("uncached", lambda: SystemConfig.uncached()),
    ("l1-256", lambda: SystemConfig.cached(CacheConfig(size=256))),
    ("l1+l2", lambda: SystemConfig.two_level(CacheConfig(size=256),
                                             CacheConfig(size=1024))),
    ("split-i/d", lambda: SystemConfig.split_l1(
        CacheConfig(size=256, unified=False), CacheConfig(size=256))),
)

WCET_BENCHMARKS = ("g721", "adpcm", "multisort")

#: (label, benchmark, SystemConfig) points for the WCET timing section.
WCET_POINTS = tuple(
    (f"{bench}/{shape}", bench, make_config())
    for bench in WCET_BENCHMARKS
    for shape, make_config in WCET_SHAPES
)

_IMAGES = {}


def _image(key):
    if key not in _IMAGES:
        _IMAGES[key] = link(compile_source(get(key).source()).program)
    return _IMAGES[key]


def _best_of(rounds, func):
    """(best seconds, last result) over *rounds* timed runs."""
    best = None
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _best_of_scaled(rounds, func, min_seconds=0.002):
    """Like :func:`_best_of`, but repeats *func* inside each round until
    a round lasts at least *min_seconds*, reporting per-call seconds.

    The O(1) replay paths finish in microseconds; timing a single call
    there would gate CI on scheduler noise rather than on the kernel.
    """
    start = time.perf_counter()
    result = func()
    probe = time.perf_counter() - start
    repeats = max(1, int(min_seconds / max(probe, 1e-9)))
    if repeats == 1:
        best, result = _best_of(max(rounds - 1, 1), func)
        return min(probe, best), result
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(repeats):
            result = func()
        elapsed = (time.perf_counter() - start) / repeats
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def bench_simulator(rounds=3) -> dict:
    """Throughput per hierarchy config, with speedup vs. the committed
    BENCH_hierarchy.json baseline when one is present.

    Execute-per-config rows measure the engine; the replay rows measure
    the trace path the sweeps actually take — one ``trace-record`` run
    (engine + stream capture), then per-config replays of that trace,
    then the single-pass sweep kernel pricing all eight paper sizes in
    one walk.  Replay results are asserted equal to execution, so a
    kernel that silently diverged would fail the bench, not just slow
    down.
    """
    baseline = {}
    if SIM_BASELINE.exists():
        baseline = json.loads(SIM_BASELINE.read_text())
    image = _image("adpcm")
    report = {}
    for label, config in SIM_CONFIGS.items():
        seconds, result = _best_of(
            rounds, lambda config=config: simulate(image, config))
        per_sec = round(result.instructions / seconds)
        entry = {
            "sim_cycles": result.cycles,
            "instructions": result.instructions,
            "seconds": round(seconds, 4),
            "instructions_per_sec": per_sec,
        }
        base = baseline.get(label, {}).get("instructions_per_sec")
        if base:
            entry["speedup_vs_baseline"] = round(per_sec / base, 2)
        report[label] = entry

    seconds, trace = _best_of(rounds, lambda: record_trace(image, 0))
    report["trace-record"] = {
        "accesses": trace.accesses,
        "seconds": round(seconds, 4),
        "instructions_per_sec": round(trace.instructions / seconds),
    }
    for label, config in SIM_CONFIGS.items():
        seconds, result = _best_of_scaled(
            rounds, lambda config=config: replay(trace, config))
        assert result.cycles == report[label]["sim_cycles"], label
        report[f"{label} (replay)"] = {
            "sim_cycles": result.cycles,
            "seconds": round(seconds, 6),
            "instructions_per_sec": round(result.instructions / seconds),
        }
    sweep_configs = [SystemConfig.cached(CacheConfig(size=size))
                     for size in PAPER_SIZES]
    seconds, results = _best_of_scaled(
        rounds, lambda: replay_sweep(trace, sweep_configs))
    report["sweep-x8 (replay)"] = {
        "points": len(results),
        "seconds": round(seconds, 4),
        "instructions_per_sec": round(
            trace.instructions * len(results) / seconds),
    }
    grid_configs = [
        SystemConfig.cached(CacheConfig(size=size, assoc=assoc,
                                        unified=False))
        for size in (128, 256, 512, 1024, 2048, 4096, 8192, 16384)
        for assoc in (1, 2, 4, 8)]
    seconds, results = _best_of_scaled(
        rounds, lambda: replay_grid(trace, grid_configs))
    for config, result in zip(grid_configs, results):
        assert result.cycles == replay(trace, config).cycles, config
    report["geometry-grid (replay)"] = {
        "points": len(results),
        "seconds": round(seconds, 4),
        "instructions_per_sec": round(
            trace.instructions * len(results) / seconds),
    }
    payload = pickle.dumps(trace)
    seconds, expanded = _best_of_scaled(
        rounds, lambda: len(pickle.loads(payload).ops))
    assert expanded == trace.accesses
    report["trace-rle-load"] = {
        "ops_bytes": trace.accesses * 8,
        "rle_bytes": len(payload),
        "seconds": round(seconds, 6),
        "instructions_per_sec": round(trace.instructions / seconds),
    }
    return report


def bench_wcet(rounds=3) -> dict:
    """WCET analysis wall time per (benchmark × hierarchy shape) point.

    Each point is timed cold (analysis caches cleared first: the full
    CFG reconstruction + cache fixpoints + IPET cost) and then warm
    (best of the remaining rounds, with the content-addressed reuse
    caches hitting — what a configuration sweep actually pays per
    repeated point).  ``seconds`` is the best overall round, matching
    how sweeps consume the analyser; ``cold_seconds`` keeps the
    no-cache cost honest and regression-guarded too.
    """
    report = {}
    for label, bench, config in WCET_POINTS:
        image = _image(bench)
        clear_analysis_caches()
        run = lambda image=image, config=config: analyze_wcet(image, config)
        start = time.perf_counter()
        result = run()
        cold = time.perf_counter() - start
        best, result = _best_of(max(rounds - 1, 1), run)
        report[label] = {
            "wcet_cycles": result.wcet,
            "seconds": round(min(cold, best), 4),
            "cold_seconds": round(cold, 4),
        }
    return report


def bench_store(rounds=3) -> dict:
    """ArtifactStore full-cycle cost against the raw-pickle disk idiom
    it replaced (sha256 digest path, ``pickle.dumps`` to a tmp file,
    ``os.replace``, then read + ``pickle.loads`` — no verification).

    Both sides do the identical dumps/rename/read/loads work on the
    recorded ADPCM trace; the store adds its checksummed envelope (one
    word-sum pass over the payload per direction) and counter
    bookkeeping.  Cycles are timed in raw/store pairs with alternating
    order and summarised by per-cycle medians: ``os.replace`` swings
    2-3x with filesystem journal state, which best-of or averaging
    would smear into the comparison, while pairing and medians cancel
    it.  The gate (in :func:`check`) is same-run — store total within
    5% of the raw total plus the suite's standard few-ms slack — so it
    needs no committed baseline and cannot drift with the host.
    """
    from repro.store import ArtifactStore

    trace = record_trace(_image("adpcm"), 0)
    key = ("bench", "store-overhead")
    with tempfile.TemporaryDirectory(prefix="bench-store-") as root:
        raw_dir = os.path.join(root, "raw")
        os.makedirs(raw_dir)
        store = ArtifactStore(os.path.join(root, "store"), suffix=".pkl")

        def raw_cycle():
            digest = hashlib.sha256(repr(key).encode()).hexdigest()
            path = os.path.join(raw_dir, digest + ".pkl")
            blob = pickle.dumps(trace, pickle.HIGHEST_PROTOCOL)
            tmp = path + ".tmp"
            with open(tmp, "wb") as handle:
                handle.write(blob)
            os.replace(tmp, path)
            with open(path, "rb") as handle:
                return pickle.loads(handle.read())

        def store_cycle():
            store.store(key, trace)
            return store.load(key)

        assert raw_cycle().accesses == trace.accesses
        assert store_cycle().accesses == trace.accesses  # and warm both
        pairs = max(24, 16 * rounds)
        raw_times, store_times = [], []
        for index in range(pairs):
            first, second = ((raw_cycle, store_cycle) if index % 2 == 0
                             else (store_cycle, raw_cycle))
            start = time.perf_counter()
            first()
            middle = time.perf_counter()
            second()
            end = time.perf_counter()
            if index % 2 == 0:
                raw_times.append(middle - start)
                store_times.append(end - middle)
            else:
                store_times.append(middle - start)
                raw_times.append(end - middle)
        payload_bytes = len(pickle.dumps(trace, pickle.HIGHEST_PROTOCOL))
        counters = dict(store.counters)
    assert counters["corrupt"] == 0 and counters["write_errors"] == 0
    ratio = statistics.median(
        s / r for s, r in zip(store_times, raw_times))
    return {"store-overhead": {
        "payload_bytes": payload_bytes,
        "pairs": pairs,
        "raw_seconds": round(statistics.median(raw_times) * pairs, 6),
        "store_seconds": round(statistics.median(store_times) * pairs, 6),
        "overhead_ratio": round(ratio, 4),
    }}


def bench_serve() -> dict:
    """Daemon round-trip throughput for the standard serve load mix.

    Spawns a real ``repro-serve`` daemon (own process, fresh private
    cache), drives it with ``repro-serve-load``'s deterministic
    request mix, and records client-side throughput and latency.  The
    load generator verifies every response byte-identical to direct
    evaluation and requires a clean SIGTERM drain — any failure aborts
    the section rather than committing a number for a broken daemon.
    The ``served`` breakdown (computed / coalesced / memo) is recorded
    as a snapshot of the dedup economics, not gated: the exact split
    races with client scheduling.
    """
    from repro.serve import loadgen

    mix = ["--requests", "120", "--clients", "4",
           "--benches", "crc,fir", "--workers", "2", "--seed", "1234"]
    report = {}
    # Two transports, same mix: the unix row is the PR-9 baseline, the
    # tcp row (one authenticated daemon behind the cluster client)
    # prices the AF_INET handshake + framing on identical work.
    for label, extra in (("serve-load", []),
                         ("serve-load-tcp", ["--spawn-cluster", "1"])):
        args = loadgen.build_parser().parse_args(mix + extra)
        code, metrics, failures = loadgen.run_load(args)
        if code != 0:
            raise RuntimeError(
                f"serve load run ({label}) failed: {failures}")
        report[label] = {
            "requests": metrics["requests"],
            "clients": metrics["clients"],
            "throughput_rps": metrics["throughput_rps"],
            "latency_p50_ms": metrics["latency_ms"]["p50"],
            "latency_p95_ms": metrics["latency_ms"]["p95"],
            "served": metrics["served"],
            "distinct_keys_verified": metrics["distinct_keys_verified"],
        }
    return report


def bench_experiments() -> dict:
    """Wall time of every full-sweep experiment, runner-style.

    Experiments share the process-wide workflow and analysis caches
    exactly as ``repro-experiments`` does, so the committed numbers
    reflect (and guard) the cross-point reuse the analyser caches buy.
    Runs each experiment once — a full sweep is long enough to be
    timing-stable, and CI cannot afford best-of-N here.
    """
    from repro.experiments.runner import EXPERIMENTS

    report = {}
    total = 0.0
    for name, run in EXPERIMENTS.items():
        start = time.perf_counter()
        run(fast=False)
        seconds = time.perf_counter() - start
        report[name] = {"seconds": round(seconds, 2)}
        total += seconds
    report["total"] = {"seconds": round(total, 2)}
    return report


def _check_seconds(kind, label, measured, base, floor, slack=0.0,
                   gate=True) -> bool:
    """Print one seconds-based comparison; True when it regressed.

    *slack* is an absolute allowance on top of the relative floor: the
    warm WCET entries are single-digit milliseconds, where a GC pause
    or noisy-neighbor blip on a hosted runner dwarfs a 30% margin.  A
    few ms of slack keeps those gates jitter-proof while still failing
    on the cliff that matters (warm collapsing to the 10-80 ms cold
    path when a reuse cache dies).  With ``gate=False`` the comparison
    is printed as ``info`` and never counts as a regression.
    """
    if not base:
        return False
    # Throughput ratio: committed seconds / measured seconds.
    ratio = base / measured if measured else 1.0
    if not gate:
        status = "info"
    elif measured <= base / floor + slack:
        status = "ok"
    else:
        status = "REGRESSION"
    print(f"{kind} {label:24} {measured:.4f}s"
          f"  ({ratio:.2f}x committed)  {status}")
    return status == "REGRESSION"


def check(sim_report, wcet_report, experiments_report, tolerance,
          store_report=None, serve_report=None) -> int:
    """Compare fresh measurements against the committed baselines.

    Returns the number of regressions beyond *tolerance* (a fraction:
    0.3 means "fail when >30% slower than the committed number").
    """
    failures = 0
    floor = 1.0 - tolerance
    if store_report is not None:
        # Same-run gate, no committed baseline: the raw side ran on the
        # same host seconds earlier, so the 5% bound is on the envelope
        # itself.  The few-ms slack matches the warm-WCET gates — both
        # totals are tens of ms, where one GC pause outweighs 5%.
        entry = store_report["store-overhead"]
        bound = entry["raw_seconds"] * 1.05 + 0.005
        status = ("ok" if entry["store_seconds"] <= bound
                  else "REGRESSION")
        print(f"stor store-overhead        store {entry['store_seconds']:.4f}s"
              f" vs raw {entry['raw_seconds']:.4f}s over"
              f" {entry['pairs']} cycles  (median cycle ratio"
              f" {entry['overhead_ratio']:.3f}; gate 1.05x + 5ms)  {status}")
        failures += status != "ok"
    if serve_report is not None:
        if SERVE_REPORT.exists():
            committed = json.loads(SERVE_REPORT.read_text())
            for label, entry in serve_report.items():
                base = committed.get(label, {}).get("throughput_rps")
                if not base:
                    continue
                # Correctness already gated in-run (the load generator
                # verified every response and the drain); the committed
                # baseline only guards round-trip throughput.
                ratio = entry["throughput_rps"] / base
                status = "ok" if ratio >= floor else "REGRESSION"
                print(f"srv  {label:12} {entry['throughput_rps']:>8}"
                      f" req/s  ({ratio:.2f}x committed)  {status}")
                failures += status != "ok"
        else:
            print(f"serve baseline {SERVE_REPORT.name} missing; "
                  "nothing to check")
    if SIM_REPORT.exists():
        committed = json.loads(SIM_REPORT.read_text())
        for label, entry in sim_report.items():
            base = committed.get(label, {}).get("instructions_per_sec")
            if not base:
                continue
            ratio = entry["instructions_per_sec"] / base
            status = "ok" if ratio >= floor else "REGRESSION"
            print(f"sim  {label:12} {entry['instructions_per_sec']:>9}"
                  f" instr/s  ({ratio:.2f}x committed)  {status}")
            failures += status != "ok"
    else:
        print(f"sim  baseline {SIM_REPORT.name} missing; nothing to check")
    if WCET_REPORT.exists():
        committed = json.loads(WCET_REPORT.read_text())
        for label, entry in wcet_report.items():
            base = committed.get(label, {})
            failures += _check_seconds(
                "wcet", label, entry["seconds"], base.get("seconds"),
                floor, slack=0.005)
            if "cold_seconds" in entry and base.get("cold_seconds"):
                failures += _check_seconds(
                    "wcet", label + " (cold)", entry["cold_seconds"],
                    base["cold_seconds"], floor, slack=0.005)
    else:
        print(f"wcet baseline {WCET_REPORT.name} missing; nothing to check")
    if experiments_report is not None:
        if EXPERIMENTS_REPORT.exists():
            committed = json.loads(EXPERIMENTS_REPORT.read_text())
            for label, entry in experiments_report.items():
                # Only the aggregate is a gate: individual experiments
                # are short and cross-coupled through the shared
                # caches, too noisy for a hard floor.
                failures += _check_seconds(
                    "swp ", label, entry["seconds"],
                    committed.get(label, {}).get("seconds"), floor,
                    gate=label == "total")
        else:
            print(f"sweep baseline {EXPERIMENTS_REPORT.name} missing; "
                  "nothing to check")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure simulator + WCET throughput; write or "
                    "check the BENCH_*.json baselines.")
    parser.add_argument("--rounds", type=int, default=3,
                        help="timed runs per point, best kept (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="compare against committed BENCH_*.json "
                             "instead of rewriting them")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed throughput regression fraction for "
                             "--check (default 0.30)")
    parser.add_argument("--skip-experiments", action="store_true",
                        help="skip the full-sweep wall-time section "
                             "(it regenerates every paper artefact)")
    args = parser.parse_args(argv)

    sim_report = bench_simulator(args.rounds)
    wcet_report = bench_wcet(args.rounds)
    store_report = bench_store(args.rounds)
    serve_report = bench_serve()
    experiments_report = (None if args.skip_experiments
                          else bench_experiments())

    if args.check:
        failures = check(sim_report, wcet_report, experiments_report,
                         args.tolerance, store_report, serve_report)
        if failures:
            print(f"{failures} benchmark(s) regressed beyond "
                  f"{100 * args.tolerance:.0f}%")
            return 1
        print("bench-smoke: no regressions")
        return 0

    SIM_REPORT.write_text(json.dumps(sim_report, indent=2) + "\n")
    WCET_REPORT.write_text(json.dumps(wcet_report, indent=2) + "\n")
    STORE_REPORT.write_text(json.dumps(store_report, indent=2) + "\n")
    SERVE_REPORT.write_text(json.dumps(serve_report, indent=2) + "\n")
    if experiments_report is not None:
        EXPERIMENTS_REPORT.write_text(
            json.dumps(experiments_report, indent=2) + "\n")
    for label, entry in sim_report.items():
        speedup = entry.get("speedup_vs_baseline")
        extra = f"  ({speedup}x baseline)" if speedup else ""
        print(f"sim  {label:12} {entry['instructions_per_sec']:>9} "
              f"instr/s{extra}")
    for label, entry in wcet_report.items():
        print(f"wcet {label:20} {entry['seconds']:.4f}s warm / "
              f"{entry['cold_seconds']:.4f}s cold "
              f"(WCET {entry['wcet_cycles']} cycles)")
    entry = store_report["store-overhead"]
    print(f"stor store-overhead  median cycle ratio "
          f"{entry['overhead_ratio']:.3f} vs raw pickle "
          f"({entry['payload_bytes']} byte payload)")
    for label, entry in serve_report.items():
        print(f"srv  {label:15} {entry['throughput_rps']} req/s "
              f"(p50 {entry['latency_p50_ms']}ms, "
              f"p95 {entry['latency_p95_ms']}ms, "
              f"served {entry['served']})")
    for label, entry in (experiments_report or {}).items():
        print(f"swp  {label:20} {entry['seconds']:.2f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
