"""Benchmarks for the three ablations (paper §5 / future work)."""

from repro.experiments import (
    ablation_cacheconfig,
    ablation_persistence,
    ablation_wcet_alloc,
)

from conftest import run_once


def bench_ablation_cache_configs(benchmark):
    result = run_once(benchmark, ablation_cacheconfig.run, fast=True)
    for row in result["rows"]:
        # Instruction caches analyse far better than unified ones (no
        # data clobbering of the MUST state).
        assert row["icache_dm_ratio"] <= row["unified_dm_ratio"]
    benchmark.extra_info["rows"] = result["rows"]


def bench_ablation_persistence(benchmark):
    result = run_once(benchmark, ablation_persistence.run, fast=True)
    for row in result["rows"]:
        assert row["cache_wcet_persist"] <= row["cache_wcet_must"]
        # The paper's conjecture: even full cache analysis cannot reach
        # the inherently predictable scratchpad.
        assert row["spm_wcet"] < row["cache_wcet_persist"]
    benchmark.extra_info["rows"] = result["rows"]


def bench_ablation_wcet_driven_allocation(benchmark):
    result = run_once(benchmark, ablation_wcet_alloc.run, fast=True)
    for row in result["rows"]:
        assert row["wcet_wcet_alloc"] <= row["wcet_energy_alloc"] * 1.05
    benchmark.extra_info["rows"] = result["rows"]
