"""Benchmarks regenerating Figures 3 and 4 (G.721 sweeps and ratios)."""

from repro.experiments import fig3_g721, fig4_ratio_g721

from conftest import run_once


def bench_fig3_g721(benchmark):
    result = run_once(benchmark, fig3_g721.run, fast=True)
    spm = result["spm"]
    cache = result["cache"]
    # Figure 3a: parallel decreasing curves.
    assert spm[-1]["sim_cycles"] < spm[0]["sim_cycles"]
    assert spm[-1]["wcet_cycles"] < spm[0]["wcet_cycles"]
    # Figure 3b: sim drops, WCET stays high.
    assert cache[-1]["sim_cycles"] < cache[0]["sim_cycles"] / 2
    assert cache[-1]["wcet_cycles"] > cache[0]["wcet_cycles"] / 2
    benchmark.extra_info["spm_rows"] = spm
    benchmark.extra_info["cache_rows"] = cache


def bench_fig4_ratio_g721(benchmark):
    result = run_once(benchmark, fig4_ratio_g721.run, fast=True)
    rows = result["rows"]
    spm_ratios = [r["spm_ratio"] for r in rows]
    cache_ratios = [r["cache_ratio"] for r in rows]
    assert max(spm_ratios) / min(spm_ratios) < 1.25   # near constant
    assert cache_ratios[-1] > cache_ratios[0] * 2     # grows with size
    benchmark.extra_info["spm_ratios"] = spm_ratios
    benchmark.extra_info["cache_ratios"] = cache_ratios
