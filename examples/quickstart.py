#!/usr/bin/env python3
"""Quickstart: compile, simulate and bound a small real-time task.

Walks the whole stack in ~30 lines of API:

1. compile a mini-C program to a relocatable T16 binary;
2. link it three ways (plain main memory, 512-byte scratchpad, cache);
3. simulate each (average case, typical input);
4. run the static WCET analysis on each;
5. print the paper's key observable: the WCET/simulation ratio.
"""

from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.spm import allocate_energy_optimal
from repro.sim.profile import build_profile
from repro.wcet import analyze_wcet

SOURCE = """
int samples[32];
int history[4];

int smooth(int x) {
    int acc = x;
    int i;
    for (i = 0; i < 4; i++) { acc += history[i]; }
    for (i = 3; i > 0; i--) { history[i] = history[i - 1]; }
    history[0] = x;
    return acc / 5;
}

int main(void) {
    int i;
    int out = 0;
    for (i = 0; i < 32; i++) { samples[i] = (i * 37) & 255; }
    for (i = 0; i < 32; i++) { out += smooth(samples[i]); }
    return out & 255;
}
"""

SPM_SIZE = 512


def main():
    compiled = compile_source(SOURCE)

    # --- profile once on the plain layout (drives the SPM knapsack) ----
    baseline = link(compiled.program)
    profile_run = simulate(baseline, SystemConfig.uncached(), profile=True)
    profile = build_profile(baseline, profile_run)

    # --- the three systems of the paper --------------------------------
    allocation = allocate_energy_optimal(compiled.program, profile,
                                         SPM_SIZE)
    spm_image = link(compiled.program, spm_size=SPM_SIZE,
                     spm_objects=allocation.objects)

    systems = [
        ("main memory only", baseline, SystemConfig.uncached()),
        (f"{SPM_SIZE} B scratchpad", spm_image,
         SystemConfig.scratchpad(SPM_SIZE)),
        ("512 B unified cache", baseline,
         SystemConfig.cached(CacheConfig(size=512))),
    ]

    print(f"{'system':22} {'sim cycles':>12} {'WCET bound':>12} "
          f"{'WCET/sim':>9}")
    for name, image, config in systems:
        sim = simulate(image, config)
        wcet = analyze_wcet(image, config)
        print(f"{name:22} {sim.cycles:12} {wcet.wcet:12} "
              f"{wcet.wcet / sim.cycles:9.3f}")

    print(f"\nSPM contents ({allocation.used_bytes} B used): "
          f"{', '.join(sorted(allocation.objects))}")


if __name__ == "__main__":
    main()
