#!/usr/bin/env python3
"""The paper's future-work idea: allocate for the WCET, not for energy.

Section 5: "the allocation technique will be extended to ... consider
placing those objects onto the faster memory that lie on the critical
path of the application."

This example runs both knapsacks on MultiSort for a few scratchpad sizes
and reports which objects each picks and what WCET bound results.  The
energy knapsack weights objects by *profiled* access counts (typical
input); the WCET knapsack weights them by worst-case path cycles from the
IPET solution — so rarely-profiled but worst-case-hot objects win.
"""

from repro.benchmarks import get
from repro.workflow import Workflow

SIZES = (128, 512, 2048)


def main():
    workflow = Workflow(get("multisort").source())

    print(f"{'SPM [B]':>8} {'objective':>10} {'WCET bound':>12} "
          f"{'sim':>10}  picked objects")
    for size in SIZES:
        for method, label in (("energy", "energy"), ("wcet", "WCET")):
            point = workflow.spm_point(size, method=method)
            names = ", ".join(sorted(point.allocation.objects)[:5])
            extra = len(point.allocation.objects) - 5
            if extra > 0:
                names += f", +{extra}"
            print(f"{size:8} {label:>10} {point.wcet.wcet:12} "
                  f"{point.sim.cycles:10}  {names}")
        print()

    print("The WCET-driven knapsack may pick different objects (e.g. "
          "functions on the\nworst-case path that a typical run rarely "
          "touches) and never needs a profiling\nrun — its weights come "
          "from the analyser itself.")


if __name__ == "__main__":
    main()
