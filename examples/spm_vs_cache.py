#!/usr/bin/env python3
"""The paper's headline experiment on the ADPCM benchmark.

Sweeps scratchpad and cache capacities from 64 B to 8 KB (Figure 1's two
branches) and prints the Figure-4-style ratio table: with a scratchpad the
WCET bound tracks the average case at a constant factor; with a cache the
bound decouples and the ratio grows with capacity.

Run time is a couple of minutes (full sweeps, both branches).
Pass ``--fast`` for a three-point sweep.
"""

import sys

from repro.benchmarks import get
from repro.workflow import PAPER_SIZES, Workflow

FAST_SIZES = (64, 512, 4096)


def main():
    sizes = FAST_SIZES if "--fast" in sys.argv else PAPER_SIZES
    workflow = Workflow(get("adpcm").source())

    print("ADPCM — scratchpad branch (energy-optimal knapsack placement)")
    print(f"{'SPM [B]':>8} {'sim':>10} {'WCET':>10} {'ratio':>7}  "
          f"objects in SPM")
    for point in workflow.spm_sweep(sizes):
        names = ", ".join(sorted(point.allocation.objects)[:4])
        more = len(point.allocation.objects) - 4
        if more > 0:
            names += f", +{more} more"
        print(f"{point.config.spm_size:8} {point.sim.cycles:10} "
              f"{point.wcet.wcet:10} {point.ratio:7.3f}  {names}")

    print("\nADPCM — cache branch (unified direct-mapped, 16 B lines)")
    print(f"{'cache[B]':>8} {'sim':>10} {'WCET':>10} {'ratio':>7}  "
          f"{'miss rate':>9}")
    for point in workflow.cache_sweep(sizes):
        stats = point.sim.cache_stats
        miss_rate = stats.misses / max(stats.hits + stats.misses, 1)
        print(f"{point.config.cache.size:8} {point.sim.cycles:10} "
              f"{point.wcet.wcet:10} {point.ratio:7.3f}  "
              f"{100 * miss_rate:8.2f}%")

    print("\nReading: the scratchpad ratio stays flat — every cycle "
          "gained in the average case\nis a cycle off the guaranteed "
          "bound.  The cache ratio grows with capacity: the\nanalysis "
          "cannot promise the larger cache's contents, so the bound "
          "stays high.")


if __name__ == "__main__":
    main()
