#!/usr/bin/env python3
"""Figure 2 tour: the annotations a WCET analyser needs, auto-generated.

The paper stresses that supporting a scratchpad in aiT costs *only* a
memory-region annotation, and that all annotations (regions, loop bounds,
array access ranges) are generated automatically from linker/simulator
information.  This example reproduces that artefact for the ADPCM
benchmark with a 256-byte scratchpad, then runs the analysis and prints
the per-function WCET report.
"""

from repro.benchmarks import get
from repro.link import link
from repro.memory import SystemConfig
from repro.minic import compile_source
from repro.wcet import analyze_wcet, format_annotations, \
    generate_annotations
from repro.sim import simulate
from repro.sim.profile import build_profile
from repro.spm import allocate_energy_optimal

SPM_SIZE = 256


def main():
    compiled = compile_source(get("adpcm").source())

    baseline = link(compiled.program)
    profile = build_profile(
        baseline, simulate(baseline, SystemConfig.uncached(),
                           profile=True))
    allocation = allocate_energy_optimal(compiled.program, profile,
                                         SPM_SIZE)
    image = link(compiled.program, spm_size=SPM_SIZE,
                 spm_objects=allocation.objects)
    config = SystemConfig.scratchpad(SPM_SIZE)

    print("=== generated annotation file (Figure 2 format) ===\n")
    print(format_annotations(generate_annotations(image, config)))

    print("=== placement map ===\n")
    print(image.map_report())

    print("\n=== WCET report ===\n")
    print(analyze_wcet(image, config).report())


if __name__ == "__main__":
    main()
