"""Table 1: cycles per memory access (access + waitstates)."""

from __future__ import annotations

from ..memory.regions import RegionKind
from ..memory.timing import AccessTiming
from .common import format_table


def run(fast: bool = False) -> dict:
    timing = AccessTiming.table1()
    rows = []
    for label, width in (("Byte (8 Bit)", 1), ("Halfword (16 Bit)", 2),
                         ("Word (32 Bit)", 4)):
        rows.append({
            "access_width": label,
            "main_memory": timing.cycles(RegionKind.MAIN, width),
            "scratchpad": timing.cycles(RegionKind.SPM, width),
        })
    text = "Table 1: Cycles per memory access (access + waitstates)\n"
    text += format_table(
        ["Access Width", "Main Memory", "Scratchpad"],
        [(r["access_width"], r["main_memory"], r["scratchpad"])
         for r in rows])
    return {"name": "table1", "rows": rows, "text": text}
