"""Command-line runner: regenerate any table/figure of the paper.

Usage::

    repro-experiments            # everything, full sweeps
    repro-experiments fig4 fig5  # selected experiments
    repro-experiments --fast     # reduced sweeps (smoke test)
    repro-experiments --jobs 8   # fan sweep points across 8 processes

``--jobs N`` parallelises *within* the sweep-style experiments (the
figures and ablations): their (benchmark × memory configuration)
evaluation points fan out across N worker processes through
:func:`repro.experiments.common.evaluate_points`, and results merge
back in deterministic task order — the emitted tables and figures are
identical to a serial run.  The cheap single-point artefacts (table1,
table2, fig2, worstcase) always run serially.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import common
from . import (
    ablation_cacheconfig,
    ablation_multilevel,
    ablation_persistence,
    ablation_wcet_alloc,
    fig2_annotations,
    fig3_g721,
    fig4_ratio_g721,
    fig5_ratio_multisort,
    fig6_adpcm,
    geometry_grid,
    table1,
    table2,
    xtra_worstcase_sort,
)

EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "fig2": fig2_annotations.run,
    "fig3": fig3_g721.run,
    "fig4": fig4_ratio_g721.run,
    "fig5": fig5_ratio_multisort.run,
    "fig6": fig6_adpcm.run,
    "worstcase": xtra_worstcase_sort.run,
    "ablation_cacheconfig": ablation_cacheconfig.run,
    "ablation_multilevel": ablation_multilevel.run,
    "ablation_persistence": ablation_persistence.run,
    "ablation_wcet_alloc": ablation_wcet_alloc.run,
    "geometry_grid": geometry_grid.run,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiments", nargs="*",
                        help=f"subset of: {', '.join(EXPERIMENTS)}")
    parser.add_argument("--fast", action="store_true",
                        help="reduced sweeps (smoke test)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="fan (benchmark x config) sweep points "
                             "across N worker processes (default: 1)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-unit wall-clock timeout for --jobs "
                             "sweeps (default: 600; 0 disables)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="re-runs of a failed/timed-out/crashed "
                             "sweep unit before the sweep is declared "
                             "failed (default: 2)")
    args = parser.parse_args(argv)
    common.set_jobs(args.jobs)
    if args.timeout is not None:
        common.set_resilience(
            timeout=None if args.timeout <= 0 else args.timeout)
    if args.retries is not None:
        common.set_resilience(retries=args.retries)

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}")

    failed = []
    for name in selected:
        start = time.time()
        try:
            result = EXPERIMENTS[name](fast=args.fast)
        except common.SweepFailure as failure:
            # Structured failure instead of a traceback mid-sweep: the
            # report names the failing unit, its attempt count and a
            # repro command; remaining experiments still run.
            elapsed = time.time() - start
            print(f"===== {name} ({elapsed:.1f}s) ===== FAILED",
                  file=sys.stderr)
            print(failure.report(), file=sys.stderr)
            print(file=sys.stderr)
            failed.append(name)
            continue
        elapsed = time.time() - start
        print(f"===== {name} ({elapsed:.1f}s) =====")
        print(result["text"])
        print()
    if failed:
        print(f"FAILED experiments: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
