"""Figure 2: example annotation file for a scratchpad configuration.

The paper shows the aiT memory-area annotation generated for one benchmark
at one scratchpad size: the SPM region at one cycle per access, 16-bit
instruction regions, 32-bit literal pools and per-array data regions with
width-dependent waitstates.
"""

from __future__ import annotations

from ..link.linker import link
from ..memory.hierarchy import SystemConfig
from ..wcet.annotations import format_annotations, generate_annotations
from .common import workflow_for

SPM_SIZE = 512


def run(fast: bool = False) -> dict:
    workflow = workflow_for("g721")
    allocation = workflow.allocate(SPM_SIZE)
    image = link(workflow.program, spm_size=SPM_SIZE,
                 spm_objects=allocation.objects, config_name="fig2")
    config = SystemConfig.scratchpad(SPM_SIZE)
    annotations = generate_annotations(image, config)
    text = ("Figure 2: memory-area annotation for G.721 with a "
            f"{SPM_SIZE}-byte scratchpad\n\n")
    text += format_annotations(annotations)
    rows = [{
        "areas": len(annotations.areas),
        "loop_bounds": len(annotations.loop_bounds),
        "access_ranges": len(annotations.accesses),
    }]
    return {"name": "fig2", "rows": rows, "text": text,
            "annotations": annotations}
