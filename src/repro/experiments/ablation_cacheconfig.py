"""Ablation A1 (paper future work): other cache configurations.

"In the future, we will consider other cache configurations (instruction
caches instead of unified caches as well as set associative caches) to
investigate their effect on WCET."

Three cache organisations at each size on G.721:

* unified direct-mapped (the paper's experimental setup);
* unified 2-way set-associative LRU;
* instruction-only direct-mapped (data bypasses the cache).

The instruction cache is dramatically friendlier to the MUST analysis
because data accesses can no longer clobber guaranteed cache contents.
"""

from __future__ import annotations

from ..memory.cache import CacheConfig
from .common import cache_task, evaluate_points, format_table, sizes

LABELS = ("unified_dm", "unified_2way", "icache_dm")


def _configs(size):
    return {
        "unified_dm": CacheConfig(size=size),
        "unified_2way": CacheConfig(size=size, assoc=2),
        "icache_dm": CacheConfig(size=size, unified=False),
    }


def run(fast: bool = False) -> dict:
    sweep = sizes(fast)
    tasks = [cache_task("g721", _configs(size)[label])
             for size in sweep for label in LABELS]
    points = iter(evaluate_points(tasks))
    rows = []
    for size in sweep:
        row = {"size": size}
        for label in LABELS:
            point = next(points)
            row[f"{label}_sim"] = point.sim.cycles
            row[f"{label}_wcet"] = point.wcet.wcet
            row[f"{label}_ratio"] = round(point.ratio, 3)
        rows.append(row)
    text = ("Ablation A1: G.721 WCET/sim ratio by cache organisation\n")
    text += format_table(
        ["Size [B]", "unified DM", "unified 2-way", "I-cache DM"],
        [(r["size"], r["unified_dm_ratio"], r["unified_2way_ratio"],
          r["icache_dm_ratio"]) for r in rows])
    return {"name": "ablation_cacheconfig", "rows": rows, "text": text}
