"""Figure 6: ADPCM absolute results.

Paper observations reproduced here:

* for small caches the benchmark degrades badly (conflict misses), while
  even a small scratchpad already beats it in absolute terms;
* the overall WCET/sim deviation is low for ADPCM (little data-dependent
  control flow — the program is mostly critical path);
* for larger sizes the cache's WCET again fails to follow the average
  case while the scratchpad's does.
"""

from __future__ import annotations

from ..memory.cache import CacheConfig
from .charts import cycles_chart
from .common import (
    cache_rows,
    cache_task,
    evaluate_points,
    format_table,
    sizes,
    spm_rows,
    spm_task,
)


def run(fast: bool = False) -> dict:
    sweep = sizes(fast)
    points = evaluate_points(
        [spm_task("adpcm", size) for size in sweep]
        + [cache_task("adpcm", CacheConfig(size=size)) for size in sweep])
    spm_points = points[:len(sweep)]
    cache_points = points[len(sweep):]

    rows_spm = spm_rows(spm_points)
    rows_cache = cache_rows(cache_points)
    text = "Figure 6: ADPCM using a scratchpad\n"
    text += format_table(
        ["SPM [B]", "Sim cycles", "WCET cycles", "WCET/Sim"],
        [(r["size"], r["sim_cycles"], r["wcet_cycles"], r["ratio"])
         for r in rows_spm])
    text += "\n" + cycles_chart(rows_spm)
    text += "\n\nFigure 6 (cont.): ADPCM using a unified cache\n"
    text += format_table(
        ["Cache [B]", "Sim cycles", "WCET cycles", "WCET/Sim"],
        [(r["size"], r["sim_cycles"], r["wcet_cycles"], r["ratio"])
         for r in rows_cache])
    text += "\n" + cycles_chart(rows_cache)
    return {"name": "fig6", "rows": rows_spm + rows_cache,
            "spm": rows_spm, "cache": rows_cache, "text": text}
