"""Section 4 precision check: sorting with a known worst-case input.

"Using a simple sorting algorithm with a known worst case input data set,
the results obtained by simulation on one hand and by WCET on the other
only differed by [a small percentage], highlighting the high precision of
the used WCET analysis tool."

With a strictly descending array every selection-sort comparison takes
the longer (best-update) path and the inner-loop totals are exact
triangular flow facts, so the simulated path *is* the worst-case path and
any remaining WCET gap is pure analysis overestimation.
"""

from __future__ import annotations

from .common import format_table, workflow_for


def run(fast: bool = False) -> dict:
    workflow = workflow_for("sort_wc")
    point = workflow.uncached_point()
    gap_percent = 100.0 * (point.wcet.wcet - point.sim.cycles) / \
        point.sim.cycles
    rows = [{
        "sim_cycles": point.sim.cycles,
        "wcet_cycles": point.wcet.wcet,
        "gap_percent": round(gap_percent, 2),
    }]
    text = ("Worst-case-input insertion sort (uncached): "
            "analysis precision\n")
    text += format_table(
        ["Sim cycles", "WCET cycles", "Gap %"],
        [(r["sim_cycles"], r["wcet_cycles"], r["gap_percent"])
         for r in rows])
    return {"name": "worstcase_sort", "rows": rows, "text": text}
