"""Ablation A2 (paper future work): WCET-driven scratchpad allocation.

"Finally, the allocation technique will be extended to not optimize the
allocation of objects to the scratchpad memory using an energy cost
function, but rather to consider placing those objects onto the faster
memory that lie on the critical path of the application.  This is
expected to lead to even better WCET estimates."

Compares, per SPM size and benchmark, the WCET bound achieved by the
paper's energy-optimal knapsack against the critical-path (WCET-driven)
knapsack of :mod:`repro.spm.wcet_driven`.
"""

from __future__ import annotations

from .common import evaluate_points, format_table, sizes, spm_task

BENCHES = ("g721", "multisort", "adpcm")


def run(fast: bool = False) -> dict:
    rows = []
    sweep = sizes(fast)
    benches = BENCHES[:1] if fast else BENCHES
    tasks = []
    for key in benches:
        for size in sweep:
            tasks.append(spm_task(key, size, method="energy"))
            tasks.append(spm_task(key, size, method="wcet"))
    points = iter(evaluate_points(tasks))
    for key in benches:
        for size in sweep:
            energy_point = next(points)
            wcet_point = next(points)
            gain = 100.0 * (energy_point.wcet.wcet - wcet_point.wcet.wcet) \
                / energy_point.wcet.wcet
            rows.append({
                "benchmark": key,
                "size": size,
                "wcet_energy_alloc": energy_point.wcet.wcet,
                "wcet_wcet_alloc": wcet_point.wcet.wcet,
                "gain_percent": round(gain, 2),
            })
    text = ("Ablation A2: WCET bound under energy-optimal vs. "
            "WCET-driven allocation\n")
    text += format_table(
        ["Benchmark", "SPM [B]", "energy-driven", "WCET-driven", "gain %"],
        [(r["benchmark"], r["size"], r["wcet_energy_alloc"],
          r["wcet_wcet_alloc"], r["gain_percent"]) for r in rows])
    return {"name": "ablation_wcet_alloc", "rows": rows, "text": text}
