"""Regeneration of every table and figure in the paper's evaluation.

===================== ====================================================
module                paper artefact
===================== ====================================================
table1                Table 1 — cycles per memory access
table2                Table 2 — benchmark inventory
fig2_annotations      Figure 2 — memory-area annotation file
fig3_g721             Figure 3 — G.721 absolute cycles (SPM and cache)
fig4_ratio_g721       Figure 4 — G.721 WCET/sim ratios
fig5_ratio_multisort  Figure 5 — MultiSort WCET/sim ratios
fig6_adpcm            Figure 6 — ADPCM results
xtra_worstcase_sort   §4 — known worst-case-input precision check
ablation_cacheconfig  §5 future work — i-cache / set-associative configs
ablation_persistence  §5 — MUST-only vs. full cache analysis
ablation_wcet_alloc   §5 future work — WCET-driven allocation
ablation_multilevel   §5 future work — L1+L2 and split-I/D hierarchies
===================== ====================================================
"""

from .runner import EXPERIMENTS, main

__all__ = ["EXPERIMENTS", "main"]
