"""Figure 5: MultiSort ratio of WCET to simulated cycles.

Same observable as Figure 4 on the sorting mix: the scratchpad ratio is
roughly constant (the gap reflects typical vs. worst-case *input*, about
3x in the paper), while the cache ratio grows with cache size.
"""

from __future__ import annotations

from ..memory.cache import CacheConfig
from .charts import ratio_chart
from .common import (
    cache_task,
    evaluate_points,
    format_table,
    sizes,
    spm_task,
)


def run(fast: bool = False) -> dict:
    sweep = sizes(fast)
    points = evaluate_points(
        [spm_task("multisort", size) for size in sweep]
        + [cache_task("multisort", CacheConfig(size=size))
           for size in sweep])
    spm_points = points[:len(sweep)]
    cache_points = points[len(sweep):]

    rows = []
    for spm_p, cache_p in zip(spm_points, cache_points):
        rows.append({
            "size": spm_p.config.spm_size,
            "spm_ratio": round(spm_p.ratio, 3),
            "cache_ratio": round(cache_p.ratio, 3),
            "spm_sim": spm_p.sim.cycles,
            "spm_wcet": spm_p.wcet.wcet,
            "cache_sim": cache_p.sim.cycles,
            "cache_wcet": cache_p.wcet.wcet,
        })
    text = ("Figure 5: MultiSort — WCET / simulated cycles "
            "(simulation normalised to 1)\n")
    text += format_table(
        ["Size [B]", "Scratchpad", "Cache"],
        [(r["size"], r["spm_ratio"], r["cache_ratio"]) for r in rows])
    text += "\n" + ratio_chart(rows)
    return {"name": "fig5", "rows": rows, "text": text}
