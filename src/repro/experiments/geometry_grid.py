"""Geometry grid (paper future work): size × associativity in one pass.

"In the future, we will consider other cache configurations
(instruction caches instead of unified caches as well as set
associative caches) to investigate their effect on WCET."

Where ablation A1 compares three fixed organisations, this experiment
maps the whole instruction-cache design space for ADPCM — every paper
size crossed with associativities 1/2/4/8 — and every point is priced
from **one** recorded trace in **one** replay pass: the per-set Mattson
stack kernel yields the hit count of all associativities per set count
simultaneously (points with fewer than one set are skipped).

The simulation side only: WCET bounds for set-associative caches stay
future work on the analysis side, so the table reports observed cycles
and fetch miss rates, making the latency cliffs between neighbouring
geometries visible.
"""

from __future__ import annotations

from ..memory.cache import CacheConfig
from .common import format_table, sizes, workflow_for

ASSOCS = (1, 2, 4, 8)
LINE = 16


def _grid(sweep):
    return [(size, assoc) for size in sweep for assoc in ASSOCS
            if size >= LINE * assoc]


def run(fast: bool = False) -> dict:
    sweep = sizes(fast)
    workflow = workflow_for("adpcm")
    caches = {point: CacheConfig(size=point[0], assoc=point[1],
                                 unified=False)
              for point in _grid(sweep)}
    sims = workflow.cache_sims(caches.values())
    rows = []
    for (size, assoc), cache in caches.items():
        sim = sims[cache]
        stats = sim.cache_stats
        fetches = stats.fetch_hits + stats.fetch_misses
        rows.append({
            "size": size,
            "assoc": assoc,
            "cycles": sim.cycles,
            "fetch_miss_pct": round(
                100.0 * stats.fetch_misses / max(fetches, 1), 2),
        })
    cells = {(row["size"], row["assoc"]): row for row in rows}
    text = ("Geometry grid: ADPCM I-cache cycles "
            f"({len(rows)} points, one trace pass)\n")
    text += format_table(
        ["Size [B]"] + [f"{assoc}-way" for assoc in ASSOCS],
        [[size] + [cells[(size, assoc)]["cycles"]
                   if (size, assoc) in cells else "-"
                   for assoc in ASSOCS]
         for size in sweep])
    return {"name": "geometry_grid", "rows": rows, "text": text}
