"""Ablation A4 (paper future work): deeper memory hierarchies.

The paper's closing question — how do richer memory hierarchies affect
the predictability gap? — answered quantitatively on G.721 with the
composable level pipeline:

* a fixed small L1 (256 B unified direct-mapped, the paper's geometry)
  alone, as the reference point;
* the same L1 backed by a unified L2 swept across the paper's sizes;
* a split I/D pair of half the L2's budget, for the same sweep.

The qualitative expectation (Hardy & Puaut): the L2 absorbs much of the
simulated miss cost, but MUST analysis at L2 only classifies accesses
the L1 already failed to guarantee — so the WCET/sim *ratio* keeps
degrading even as absolute times improve, the paper's cache argument
one level deeper.
"""

from __future__ import annotations

from ..memory.cache import CacheConfig
from .common import (
    cache_task,
    evaluate_points,
    format_table,
    multilevel_task,
    sizes,
    split_task,
)

#: The paper's L1 experimental geometry, held fixed across the sweep.
L1_SIZE = 256


def run(fast: bool = False) -> dict:
    l1 = CacheConfig(size=L1_SIZE)
    sweep = [size for size in sizes(fast) if size > L1_SIZE]
    tasks = [cache_task("g721", l1)]
    for size in sweep:
        tasks.append(multilevel_task("g721", l1, CacheConfig(size=size)))
        tasks.append(split_task(
            "g721",
            CacheConfig(size=size // 2, unified=False),
            CacheConfig(size=size // 2)))
    points = evaluate_points(tasks)
    reference = points[0]
    deeper = iter(points[1:])
    rows = []
    for size in sweep:
        two_level = next(deeper)
        split = next(deeper)
        rows.append({
            "l2_size": size,
            "l1_only_sim": reference.sim.cycles,
            "l1_only_wcet": reference.wcet.wcet,
            "l1_only_ratio": round(reference.ratio, 3),
            "l1l2_sim": two_level.sim.cycles,
            "l1l2_wcet": two_level.wcet.wcet,
            "l1l2_ratio": round(two_level.ratio, 3),
            "split_sim": split.sim.cycles,
            "split_wcet": split.wcet.wcet,
            "split_ratio": round(split.ratio, 3),
        })
    text = ("Ablation A4: G.721 with deeper hierarchies "
            f"(fixed {L1_SIZE} B L1)\n")
    text += format_table(
        ["L2 [B]", "L1-only ratio", "L1+L2 sim", "L1+L2 ratio",
         "split I/D sim", "split ratio"],
        [(r["l2_size"], r["l1_only_ratio"], r["l1l2_sim"],
          r["l1l2_ratio"], r["split_sim"], r["split_ratio"])
         for r in rows])
    return {"name": "ablation_multilevel", "rows": rows, "text": text}
