"""Terminal rendering of the paper's figures (ASCII bar charts).

The paper presents Figures 3-6 as charts; the experiment modules attach a
text rendering so `repro-experiments` output visually mirrors them.
"""

from __future__ import annotations

FULL = "#"
HALF = "+"


def _bar(value: float, scale: float, width: int) -> str:
    units = 0.0 if scale <= 0 else (value / scale) * width
    whole = int(units)
    frac = units - whole
    bar = FULL * whole
    if frac >= 0.5:
        bar += HALF
    return bar


def ascii_chart(rows, series, width=40, value_format="{:.3f}",
                label_header="size") -> str:
    """Grouped horizontal bar chart.

    *rows* is a list of (label, {series_name: value}) pairs; *series* the
    ordered series names.  Bars share one scale (the global maximum).
    """
    peak = max((values[name] for _label, values in rows
                for name in series if name in values), default=0)
    label_width = max([len(str(label)) for label, _ in rows]
                     + [len(label_header)])
    name_width = max(len(name) for name in series)
    lines = []
    for label, values in rows:
        for position, name in enumerate(series):
            if name not in values:
                continue
            value = values[name]
            prefix = (f"{label!s:>{label_width}}" if position == 0
                      else " " * label_width)
            lines.append(
                f"{prefix} {name:<{name_width}} "
                f"{_bar(value, peak, width):<{width + 1}}"
                f" {value_format.format(value)}")
        lines.append("")
    if lines:
        lines.pop()
    return "\n".join(lines)


def ratio_chart(rows, spm_key="spm_ratio", cache_key="cache_ratio",
                width=40) -> str:
    """Figure-4/5 style chart: scratchpad vs. cache ratio per size."""
    chart_rows = [
        (row["size"], {"spm": row[spm_key], "cache": row[cache_key]})
        for row in rows
    ]
    return ascii_chart(chart_rows, ["spm", "cache"], width=width)


def cycles_chart(rows, sim_key="sim_cycles", wcet_key="wcet_cycles",
                 width=40) -> str:
    """Figure-3/6 style chart: absolute sim and WCET cycles per size."""
    chart_rows = [
        (row["size"], {"sim": row[sim_key], "wcet": row[wcet_key]})
        for row in rows
    ]
    return ascii_chart(chart_rows, ["sim", "wcet"], width=width,
                       value_format="{:,.0f}")
