"""Ablation A3: MUST-only vs. MUST + persistence cache analysis.

The paper used "only a subset of the analysis techniques available with
commercial versions" of aiT (a MUST analysis without persistence) and
speculates that "using the full scale of cache analysis techniques ...
would probably lead to improved cache results with respect to WCET.
However ... it is doubtful that the results achieved by using an
inherently predictable scratchpad can be reached."

This experiment quantifies exactly that: the first-miss persistence
analysis tightens the cache WCET, but the scratchpad bound (no cache
analysis at all) stays out of reach.
"""

from __future__ import annotations

from ..memory.cache import CacheConfig
from .common import (
    cache_task,
    evaluate_points,
    format_table,
    sizes,
    spm_task,
)


def run(fast: bool = False) -> dict:
    sweep = sizes(fast)
    tasks = []
    for size in sweep:
        tasks.append(cache_task("g721", CacheConfig(size=size)))
        tasks.append(cache_task("g721", CacheConfig(size=size),
                                persistence=True))
        tasks.append(spm_task("g721", size))
    points = iter(evaluate_points(tasks))
    rows = []
    for size in sweep:
        plain = next(points)
        persist = next(points)
        spm = next(points)
        rows.append({
            "size": size,
            "cache_wcet_must": plain.wcet.wcet,
            "cache_wcet_persist": persist.wcet.wcet,
            "spm_wcet": spm.wcet.wcet,
            "improvement_percent": round(
                100.0 * (plain.wcet.wcet - persist.wcet.wcet)
                / plain.wcet.wcet, 1),
        })
    text = ("Ablation A3: G.721 cache WCET with MUST-only vs. "
            "MUST+persistence (vs. scratchpad)\n")
    text += format_table(
        ["Size [B]", "MUST only", "MUST+persist", "gain %", "SPM WCET"],
        [(r["size"], r["cache_wcet_must"], r["cache_wcet_persist"],
          r["improvement_percent"], r["spm_wcet"]) for r in rows])
    return {"name": "ablation_persistence", "rows": rows, "text": text}
