"""Table 2: the benchmark inventory."""

from __future__ import annotations

from ..benchmarks import BENCHMARKS, table2_rows
from ..workflow import Workflow
from .common import format_table


def run(fast: bool = False) -> dict:
    rows = []
    for key, bench in BENCHMARKS.items():
        if not bench.in_table2:
            continue
        entry = {"name": bench.name, "description": bench.description}
        if not fast:
            workflow = Workflow(bench.source())
            image = workflow.baseline_image()
            entry["code_bytes"] = sum(o.size for o in image.code_objects)
            entry["data_bytes"] = sum(o.size for o in image.data_objects)
        rows.append(entry)
    headers = ["Name", "Description"]
    table = [(r["name"], r["description"]) for r in rows]
    if rows and "code_bytes" in rows[0]:
        headers += ["Code (B)", "Data (B)"]
        table = [(r["name"], r["description"], r["code_bytes"],
                  r["data_bytes"]) for r in rows]
    text = "Table 2: Benchmarks\n" + format_table(headers, table)
    return {"name": "table2", "rows": rows, "text": text}
