"""Figure 3: G.721 absolute results (simulated cycles and WCET).

* Figure 3a — scratchpad branch: simulated cycles and estimated WCET both
  decrease as the SPM grows, and the curves stay parallel.
* Figure 3b — cache branch: simulated cycles drop with cache size (after
  the small-cache conflict-miss bump), while the estimated WCET "stays at
  a very high level for all cache sizes".
"""

from __future__ import annotations

from ..memory.cache import CacheConfig
from .charts import cycles_chart
from .common import (
    cache_rows,
    cache_task,
    evaluate_points,
    format_table,
    sizes,
    spm_rows,
    spm_task,
)


def run(fast: bool = False) -> dict:
    sweep = sizes(fast)
    points = evaluate_points(
        [spm_task("g721", size) for size in sweep]
        + [cache_task("g721", CacheConfig(size=size)) for size in sweep])
    spm_points = points[:len(sweep)]
    cache_points = points[len(sweep):]

    rows_a = spm_rows(spm_points)
    rows_b = cache_rows(cache_points)

    text = "Figure 3a: G.721 using a scratchpad\n"
    text += format_table(
        ["SPM [B]", "Sim cycles", "WCET cycles", "WCET/Sim"],
        [(r["size"], r["sim_cycles"], r["wcet_cycles"], r["ratio"])
         for r in rows_a])
    text += "\n" + cycles_chart(rows_a)
    text += "\n\nFigure 3b: G.721 using a unified direct-mapped cache\n"
    text += format_table(
        ["Cache [B]", "Sim cycles", "WCET cycles", "WCET/Sim"],
        [(r["size"], r["sim_cycles"], r["wcet_cycles"], r["ratio"])
         for r in rows_b])
    text += "\n" + cycles_chart(rows_b)
    return {"name": "fig3", "rows": rows_a + rows_b,
            "spm": rows_a, "cache": rows_b, "text": text}
