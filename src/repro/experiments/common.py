"""Shared infrastructure for experiment regeneration.

Each experiment module exposes ``run(fast=False) -> dict`` with at least
``name``, ``rows`` (list of dicts) and ``text`` (formatted report).
``fast=True`` shrinks sweeps for use inside pytest-benchmark timing loops;
the full runs regenerate the paper's artefacts.
"""

from __future__ import annotations

from ..benchmarks import get as get_benchmark
from ..workflow import PAPER_SIZES, Workflow

#: Reduced sweep for fast/benchmark runs.
FAST_SIZES = (64, 512, 4096)

_WORKFLOWS = {}


def workflow_for(key: str) -> Workflow:
    """Cached workflow per benchmark (compile + profile once)."""
    if key not in _WORKFLOWS:
        _WORKFLOWS[key] = Workflow(get_benchmark(key).source())
    return _WORKFLOWS[key]


def sizes(fast: bool):
    return FAST_SIZES if fast else PAPER_SIZES


def format_table(headers, rows) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    cells = []
    for row in rows:
        line = [str(value) for value in row]
        cells.append(line)
        widths = [max(w, len(v)) for w, v in zip(widths, line)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def spm_rows(points):
    return [
        {
            "size": p.config.spm_size,
            "sim_cycles": p.sim.cycles,
            "wcet_cycles": p.wcet.wcet,
            "ratio": round(p.ratio, 3),
            "spm_used": p.allocation.used_bytes,
            "objects": len(p.allocation.objects),
        }
        for p in points
    ]


def cache_rows(points):
    return [
        {
            "size": p.config.cache.size,
            "sim_cycles": p.sim.cycles,
            "wcet_cycles": p.wcet.wcet,
            "ratio": round(p.ratio, 3),
            "misses": p.sim.cache_stats.misses,
            "hits": p.sim.cache_stats.hits,
        }
        for p in points
    ]
