"""Shared infrastructure for experiment regeneration.

Each experiment module exposes ``run(fast=False) -> dict`` with at least
``name``, ``rows`` (list of dicts) and ``text`` (formatted report).
``fast=True`` shrinks sweeps for use inside pytest-benchmark timing loops;
the full runs regenerate the paper's artefacts.

Sweeps go through the **evaluation task layer**: an experiment describes
its (benchmark × configuration) points as picklable task tuples and hands
them to :func:`evaluate_points`, which either evaluates them serially in
order (the default) or fans them across ``set_jobs(N)`` worker processes
(``repro-experiments --jobs N``).  Results always come back in task
order and every point's computation is deterministic, so the merged
artefacts are identical whichever way they were produced.

Before anything runs, a **sweep-aware planner** (:func:`plan_units`)
rewrites the task list: all cache tasks of one benchmark collapse into
a single batched unit served by :meth:`~repro.workflow.Workflow.
cache_points`, which replays the benchmark's recorded trace instead of
re-executing it per configuration and evaluates same-geometry size
sweeps in one stack-distance pass.  Workers additionally share an
on-disk trace cache next to the PR-4 analysis reuse cache, so a trace
recorded by one process is loaded, not re-executed, by every other.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile

from ..benchmarks import get as get_benchmark
from ..serve.supervisor import SupervisedPool, TaskFailure
from ..sim.trace import set_trace_cache_dir
from ..wcet.cacheanalysis import set_analysis_cache_dir
from ..workflow import PAPER_SIZES, Workflow

#: Reduced sweep for fast/benchmark runs.
FAST_SIZES = (64, 512, 4096)

_WORKFLOWS = {}

#: Worker-process count for evaluate_points (set via ``set_jobs``).
_JOBS = 1

#: Resilience knobs for the parallel scheduler (``set_resilience``):
#: per-unit wall-clock timeout in seconds (None disables), how many
#: times a failed unit is re-run after its first attempt, and the base
#: backoff delay (doubling per attempt) before a unit retries.
_TIMEOUT = 600.0
_RETRIES = 2
_BACKOFF = 0.25

_KEEP = object()


def set_resilience(timeout=_KEEP, retries=_KEEP, backoff=_KEEP):
    """Configure the hardened scheduler (``repro-experiments
    --timeout/--retries``); omitted arguments keep their value."""
    global _TIMEOUT, _RETRIES, _BACKOFF
    if timeout is not _KEEP:
        _TIMEOUT = timeout
    if retries is not _KEEP:
        _RETRIES = max(0, int(retries))
    if backoff is not _KEEP:
        _BACKOFF = max(0.0, float(backoff))


class SweepFailure(RuntimeError):
    """A sweep aborted: some unit kept failing after every retry.

    Carries the partial results (task order, ``None`` where the failed
    units' points would be) and one structured record per failed unit,
    so the runner can report exactly what broke and how to reproduce
    it instead of dumping a mid-sweep traceback.
    """

    def __init__(self, failures, results):
        self.failures = failures
        self.results = results
        super().__init__(self.report())

    def report(self) -> str:
        done = sum(result is not None for result in self.results)
        lines = [
            f"sweep failed: {len(self.failures)} unit(s) exhausted "
            f"their retries; {done}/{len(self.results)} points "
            "completed (partial results merged in task order)"]
        for failure in self.failures:
            lines.append(
                f"  unit bench={failure['bench']} kind={failure['kind']} "
                f"task-indices={failure['indices']}: "
                f"{failure['attempts']} attempts, last error: "
                f"{failure['error']}")
            lines.append(f"    repro: {failure['repro']}")
        return "\n".join(lines)


def workflow_for(key: str) -> Workflow:
    """Cached workflow per benchmark (compile + profile once).

    Besides the seven suite names, ``gen:<seed>`` and
    ``gen:<seed>:<size>`` keys run experiments over generated workloads
    (:mod:`repro.gen`) — e.g. ``repro-experiments --bench gen:1234``
    prices generated program 1234 exactly like a hand-ported benchmark.
    """
    if key not in _WORKFLOWS:
        if key.startswith("gen:"):
            from ..gen import generate
            fields = key.split(":")
            if len(fields) not in (2, 3):
                raise ValueError(f"bad generated-benchmark key {key!r} "
                                 "(expected gen:<seed>[:<size>])")
            seed = int(fields[1])
            size = fields[2] if len(fields) == 3 else "small"
            source = generate(seed, size).source
            _WORKFLOWS[key] = Workflow(source)
        else:
            _WORKFLOWS[key] = Workflow(get_benchmark(key).source())
    return _WORKFLOWS[key]


def sizes(fast: bool):
    return FAST_SIZES if fast else PAPER_SIZES


# -- the process-parallel sweep layer ---------------------------------------

def set_jobs(jobs: int):
    """Set the worker-process count used by :func:`evaluate_points`."""
    global _JOBS
    _JOBS = max(1, int(jobs))


def spm_task(bench: str, size: int, method: str = "energy"):
    return (bench, "spm", (size, method))


def cache_task(bench: str, cache, persistence: bool = False):
    return (bench, "cache", (cache, persistence))


def uncached_task(bench: str):
    return (bench, "uncached", ())


def multilevel_task(bench: str, l1, l2):
    return (bench, "multilevel", (l1, l2))


def split_task(bench: str, icache, dcache):
    return (bench, "split", (icache, dcache))


def hybrid_task(bench: str, spm_size: int, cache, method: str = "energy"):
    return (bench, "hybrid", (spm_size, cache, method))


def _init_worker(bench_keys, profile_keys, cache_dir):
    """Worker bootstrap for :func:`evaluate_points` pools.

    Warms the per-worker workflow cache once at startup (a no-op on
    fork platforms, where the parent's warmed cache is inherited; a
    one-off compile+profile on spawn platforms, instead of redoing it
    lazily per benchmark mid-sweep) and joins the run's shared on-disk
    reuse caches: per-level cache-analysis fixpoints and recorded
    execution traces computed by one worker are loaded, not recomputed,
    by every other worker that needs them.
    """
    global _JOBS
    _JOBS = 1  # workers never nest their own pools
    if cache_dir:
        set_analysis_cache_dir(os.path.join(cache_dir, "analysis"))
        set_trace_cache_dir(os.path.join(cache_dir, "traces"))
    for key in bench_keys:
        workflow_for(key).warm(profile=key in profile_keys)


def _evaluate_task(task):
    """Evaluate one task tuple in this process (worker entry point)."""
    bench, kind, params = task
    workflow = workflow_for(bench)
    if kind == "spm":
        size, method = params
        return workflow.spm_point(size, method)
    if kind == "cache":
        cache, persistence = params
        return workflow.cache_point(cache, persistence=persistence)
    if kind == "uncached":
        return workflow.uncached_point()
    if kind == "multilevel":
        return workflow.multilevel_point(*params)
    if kind == "split":
        return workflow.split_point(*params)
    if kind == "hybrid":
        spm_size, cache, method = params
        return workflow.hybrid_point(spm_size, cache, method=method)
    raise ValueError(f"unknown evaluation task kind {kind!r}")


def plan_units(tasks):
    """Rewrite a task list into execution units for :func:`_run_unit`.

    Cache tasks of one benchmark — however they interleave with other
    kinds — become a single batched unit, so the benchmark's recorded
    trace is replayed (and same-geometry size sweeps collapse into one
    single-pass replay) instead of the executable re-executing per
    configuration.  Everything else stays a unit of its own.  Each unit
    carries the task indices it produces, so results land back in task
    order no matter how units are scheduled.
    """
    units = []
    batches = {}  # bench -> unit position in `units`
    for index, task in enumerate(tasks):
        bench, kind, params = task
        if kind != "cache":
            units.append(((index,), task))
            continue
        position = batches.get(bench)
        if position is None:
            batches[bench] = len(units)
            units.append(((index,), (bench, "cache_batch", (params,))))
        else:
            indices, (_, _, specs) = units[position]
            units[position] = (indices + (index,),
                               (bench, "cache_batch", specs + (params,)))
    return units


def _run_unit(unit):
    """Evaluate one planned unit; returns points in intra-unit order."""
    indices, task = unit
    bench, kind, params = task
    if os.environ.get("REPRO_FAULT_UNIT"):
        # Deterministic crash/hang/raise injection for the resilience
        # suite; a no-op unless the env var is set.
        from ..testing.faults import unit_fault
        unit_fault()
    if kind == "cache_batch":
        return workflow_for(bench).cache_points(params)
    return [_evaluate_task(task)]


def rerun_unit(unit):
    """Re-evaluate one failed unit serially (the failure-report repro).

    Accepts the unit tuple or its ``repr`` as printed by a
    :class:`SweepFailure` report; prints each produced point's row.
    """
    if isinstance(unit, str):
        from ..memory.cache import CacheConfig
        unit = eval(unit, {"CacheConfig": CacheConfig})
    points = _run_unit(unit)
    for point in points:
        print(point.row())
    return points


def _unit_failure(unit, attempts, error) -> dict:
    """Structured failure record for one exhausted unit."""
    indices, task = unit
    bench, kind, _params = task
    return {
        "bench": bench,
        "kind": kind,
        "indices": indices,
        "attempts": attempts,
        "error": repr(error) if isinstance(error, BaseException) else error,
        "repro": ("PYTHONPATH=src python -c \"from "
                  "repro.experiments.common import rerun_unit; "
                  f"rerun_unit({str(unit)!r})\""),
    }


def evaluate_points(tasks):
    """Evaluate task tuples; returns points in task order.

    Tasks are first rewritten by the sweep-aware planner
    (:func:`plan_units`).  With one job the units run serially in plan
    order, sharing the process-wide workflow cache.  With more, units
    fan out over a process pool through the hardened scheduler
    (:func:`_evaluate_parallel`): per-unit timeouts, retry with
    exponential backoff, and pool-rebuild recovery from crashed or
    hung workers.  Results always merge back by task index and every
    unit's computation is deterministic, so the merged artefacts are
    bit-for-bit the serial result no matter how many faults were
    survived along the way; a unit that keeps failing raises a
    :class:`SweepFailure` carrying the partial results and a
    structured report.  On fork platforms the parent warms each
    benchmark's compile (and profile, when a scratchpad task needs it)
    first, so workers inherit the expensive steps instead of redoing
    them.
    """
    tasks = list(tasks)
    units = plan_units(tasks)
    results = [None] * len(tasks)

    def merge(unit, points):
        for index, point in zip(unit[0], points):
            results[index] = point

    if _JOBS <= 1 or len(units) <= 1:
        for unit in units:
            merge(unit, _run_unit(unit))
        return results
    bench_keys = tuple(dict.fromkeys(t[0] for t in tasks))
    needs_profile = frozenset(
        t[0] for t in tasks if t[1] in ("spm", "hybrid"))
    for key in bench_keys:
        workflow_for(key).warm(profile=key in needs_profile)
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork: the initializer rebuilds
        context = multiprocessing.get_context()
    # Shared scratch directory for the content-addressed reuse caches
    # (analysis fixpoints + recorded traces): what one worker computes,
    # every other worker loads.
    cache_dir = tempfile.mkdtemp(prefix="repro-reuse-")
    os.makedirs(os.path.join(cache_dir, "analysis"))
    os.makedirs(os.path.join(cache_dir, "traces"))
    try:
        _evaluate_parallel(units, merge, results, context,
                           (bench_keys, needs_profile, cache_dir))
        return results
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def _evaluate_parallel(units, merge, results, context, initargs):
    """The fault-tolerant fan-out behind :func:`evaluate_points`.

    One :class:`~repro.serve.supervisor.SupervisedPool` (the scheduler
    this module's PR-8 pool-rebuild logic was refactored into, now
    shared with the serving daemon) runs the planned units.  The
    invariants the resilience suite pins down:

    * a unit that raises is retried with exponential backoff, up to
      ``retries`` re-runs;
    * a worker crash (``BrokenProcessPool``) or a unit exceeding the
      per-unit timeout tears the whole pool down (hung processes are
      killed), rebuilds it, and re-enqueues everything that was in
      flight — units merely caught in the rebuild do not lose an
      attempt;
    * results merge by task index, so scheduling order never changes
      the artefacts;
    * when a unit exhausts its attempts the sweep still finishes every
      other unit, then raises :class:`SweepFailure` with the partial
      results and per-unit failure records.
    """
    pool = SupervisedPool(
        _run_unit, min(_JOBS, len(units)), mp_context=context,
        initializer=_init_worker, initargs=initargs,
        timeout=_TIMEOUT, retries=_RETRIES, backoff=_BACKOFF,
        name="evaluate-points")
    failures = []
    try:
        futures = [(pool.submit(unit), unit) for unit in units]
        for future, unit in futures:
            try:
                merge(unit, future.result())
            except TaskFailure as failure:
                failures.append(_unit_failure(unit, failure.attempts,
                                              failure.error))
    finally:
        pool.shutdown()
    if failures:
        raise SweepFailure(failures, list(results))


def format_table(headers, rows) -> str:
    """Fixed-width text table."""
    widths = [len(h) for h in headers]
    cells = []
    for row in rows:
        line = [str(value) for value in row]
        cells.append(line)
        widths = [max(w, len(v)) for w, v in zip(widths, line)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(v.rjust(w) for v, w in zip(line, widths)))
    return "\n".join(lines)


def spm_rows(points):
    return [
        {
            "size": p.config.spm_size,
            "sim_cycles": p.sim.cycles,
            "wcet_cycles": p.wcet.wcet,
            "ratio": round(p.ratio, 3),
            "spm_used": p.allocation.used_bytes,
            "objects": len(p.allocation.objects),
        }
        for p in points
    ]


def cache_rows(points):
    return [
        {
            "size": p.config.cache.size,
            "sim_cycles": p.sim.cycles,
            "wcet_cycles": p.wcet.wcet,
            "ratio": round(p.ratio, 3),
            "misses": p.sim.cache_stats.misses,
            "hits": p.sim.cache_stats.hits,
        }
        for p in points
    ]
