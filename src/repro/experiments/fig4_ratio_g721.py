"""Figure 4: G.721 ratio of WCET estimate to simulated cycles.

The paper's main chart: with a scratchpad the ratio is (near) constant
over the whole size range — added performance translates 1:1 into a lower
WCET bound; with a cache the ratio grows with cache size because the
analysis cannot prove the larger cache's contents.
"""

from __future__ import annotations

from ..memory.cache import CacheConfig
from .charts import ratio_chart
from .common import (
    cache_task,
    evaluate_points,
    format_table,
    sizes,
    spm_task,
)


def run(fast: bool = False) -> dict:
    sweep = sizes(fast)
    points = evaluate_points(
        [spm_task("g721", size) for size in sweep]
        + [cache_task("g721", CacheConfig(size=size)) for size in sweep])
    spm_points = points[:len(sweep)]
    cache_points = points[len(sweep):]

    rows = []
    for spm_p, cache_p in zip(spm_points, cache_points):
        rows.append({
            "size": spm_p.config.spm_size,
            "spm_ratio": round(spm_p.ratio, 3),
            "cache_ratio": round(cache_p.ratio, 3),
        })
    text = ("Figure 4: G.721 — WCET / simulated cycles "
            "(simulation normalised to 1)\n")
    text += format_table(
        ["Size [B]", "Scratchpad", "Cache"],
        [(r["size"], r["spm_ratio"], r["cache_ratio"]) for r in rows])
    text += "\n" + ratio_chart(rows)
    return {"name": "fig4", "rows": rows, "text": text}
