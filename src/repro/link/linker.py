"""Linker: place memory objects, resolve symbols, produce an Image.

The allocation decision (which objects live in scratchpad) is an *input*,
computed by :mod:`repro.spm`; the linker mechanically honours it.  This
mirrors the paper's flow, where the compiler/ILP stage decides placement
and the toolchain fixes every address at link time — the root cause of the
scratchpad's predictability.

Layout:

* scratchpad objects are packed from the SPM base upwards;
* main-memory objects are packed from the main base upwards, code first
  (so instruction addresses stay compact), then data;
* all objects are 4-byte aligned.
"""

from __future__ import annotations

from ..isa.assembler import EncodingError, encode_placed, layout_items
from ..memory.regions import MAIN_BASE, SPM_BASE
from .image import Image, PlacedObject
from .objects import DataObject, FunctionCode, Program


class LinkError(Exception):
    """Objects do not fit or symbols cannot be resolved."""


def link(program: Program, spm_size: int = 0, spm_objects=(),
         config_name: str = "") -> Image:
    """Link *program* into an :class:`Image`.

    *spm_objects* is the set of object names placed in the scratchpad;
    every other object goes to main memory.  ``spm_size`` is validated
    against the packed SPM usage.
    """
    spm_set = set(spm_objects)
    known = {f.name for f in program.functions}
    known |= {g.name for g in program.globals}
    unknown = spm_set - known
    if unknown:
        raise LinkError(f"unknown objects in SPM allocation: {sorted(unknown)}")
    if spm_set and not spm_size:
        raise LinkError("SPM allocation given but spm_size is 0")

    # -- phase 1: lay out each object locally (sizes + local symbols) --------
    laid_out = {}
    for func in program.functions:
        placed, local_syms, size = layout_items(func.items, 0)
        laid_out[func.name] = (placed, local_syms, size)

    # -- phase 2: assign bases -------------------------------------------------
    def align4(value):
        return (value + 3) & ~3

    spm_cursor = SPM_BASE
    main_cursor = MAIN_BASE
    bases = {}

    def place(name, size, to_spm):
        nonlocal spm_cursor, main_cursor
        if to_spm:
            base = align4(spm_cursor)
            spm_cursor = base + size
        else:
            base = align4(main_cursor)
            main_cursor = base + size
        bases[name] = base
        return base

    objects = []
    # Code first (main-memory code stays compact near the base), then data.
    for func in program.functions:
        _placed, _syms, size = laid_out[func.name]
        to_spm = func.name in spm_set
        base = place(func.name, size, to_spm)
        objects.append(PlacedObject(
            name=func.name, kind="code", base=base, size=size,
            region="scratchpad" if to_spm else "main"))
    for glob in program.globals:
        to_spm = glob.name in spm_set
        base = place(glob.name, glob.size, to_spm)
        objects.append(PlacedObject(
            name=glob.name, kind="data", base=base, size=glob.size,
            region="scratchpad" if to_spm else "main",
            readonly=glob.readonly, element_width=glob.element_width))

    spm_used = spm_cursor - SPM_BASE
    if spm_used > spm_size:
        raise LinkError(
            f"SPM overflow: allocation needs {spm_used} bytes, "
            f"capacity is {spm_size}")

    # -- phase 3: build the global symbol table ---------------------------------
    symbols = dict(bases)
    for func in program.functions:
        _placed, local_syms, _size = laid_out[func.name]
        base = bases[func.name]
        for label, offset in local_syms.items():
            if label in symbols and label not in (func.name,):
                raise LinkError(f"duplicate label {label!r}")
            symbols[label] = base + offset

    def resolve(name):
        try:
            return symbols[name]
        except KeyError:
            raise EncodingError(f"undefined symbol {name!r}") from None

    # -- phase 4: encode and collect annotations --------------------------------
    segments = []
    access_notes = {}
    loop_bounds = {}
    loop_totals = {}
    for func in program.functions:
        placed_at_zero, _syms, _size = laid_out[func.name]
        base = bases[func.name]
        placed = [(addr + base, item) for addr, item in placed_at_zero]
        code = encode_placed(placed, resolve)
        segments.append((base, code))
        for addr, item in placed:
            note = getattr(item, "note", None)
            if note is not None:
                access_notes[addr] = note
        for table, out in ((func.loop_bounds, loop_bounds),
                           (func.loop_totals, loop_totals)):
            for label, bound in table.items():
                try:
                    header = symbols[label]
                except KeyError:
                    raise LinkError(
                        f"loop bound for unknown label {label!r} "
                        f"in {func.name}") from None
                out[header] = bound
    for glob in program.globals:
        segments.append((bases[glob.name], glob.initial_bytes()))

    if program.entry not in symbols:
        raise LinkError(f"entry symbol {program.entry!r} undefined")

    return Image(
        segments=segments,
        symbols=symbols,
        objects=objects,
        entry=symbols[program.entry],
        access_notes=access_notes,
        loop_bounds=loop_bounds,
        loop_totals=loop_totals,
        config_name=config_name,
    )
