"""Pre-link program model: relocatable memory objects.

The paper's allocation granularity is **functions and global data
elements** ("memory objects").  The compiler therefore emits one
:class:`FunctionCode` per function (instructions + its literal pool) and
one :class:`DataObject` per global, and the linker is free to place each
object in scratchpad or main memory independently — the property that
makes compile-time SPM allocation possible at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..isa.assembler import layout_items


@dataclass(frozen=True)
class AccessNote:
    """Compiler-known target(s) of one load/store instruction.

    *targets* is a tuple of ``(symbol, offset_lo, offset_hi)`` entries: the
    access touches one of the named objects, somewhere in the given byte
    range relative to that object (an exact scalar access has
    ``offset_hi - offset_lo == width``; an unknown array index spans the
    whole object; a pointer parameter carries one entry per array it may
    be bound to).  ``stack=True`` marks an sp-relative access, which the
    WCET analyser bounds with its stack-depth analysis.  An empty note
    (no targets, not stack) means "address unknown" and forces the
    analyser's worst-case treatment.

    These notes are the automated equivalent of the paper's "range of
    possible addresses for those array accesses" annotations.
    """

    targets: tuple = ()
    stack: bool = False

    @classmethod
    def exact(cls, symbol, offset, width):
        return cls(targets=((symbol, offset, offset + width),))

    @classmethod
    def whole_object(cls, symbol, size):
        return cls(targets=((symbol, 0, size),))

    @classmethod
    def multi(cls, entries):
        return cls(targets=tuple(entries))

    @classmethod
    def stack_access(cls):
        return cls(stack=True)

    @classmethod
    def unknown(cls):
        return cls()


class FunctionCode:
    """One compiled function: code items, literal pool, flow facts."""

    def __init__(self, name, items, loop_bounds=None, loop_totals=None):
        from ..isa.assembler import relax_branches
        self.name = name
        #: Label/Instr/Data/WordRef stream (literal pool included);
        #: conditional branches are range-relaxed on construction.
        self.items = relax_branches(list(items), prefix=name)
        #: Loop-header label -> max back edges per loop entry (flow facts
        #: the compiler proves or #pragma loopbound supplies).
        self.loop_bounds = dict(loop_bounds or {})
        #: Loop-header label -> max back edges per function invocation
        #: (#pragma loopbound_total; exact for triangular nests).
        self.loop_totals = dict(loop_totals or {})
        self._size = None

    @property
    def size(self) -> int:
        """Byte size (layout-invariant, so cacheable)."""
        if self._size is None:
            _placed, _symbols, size = layout_items(self.items, 0)
            self._size = size
        return self._size

    def __repr__(self):
        return f"<FunctionCode {self.name} {self.size}B>"


class DataObject:
    """One global data element (scalar or array)."""

    def __init__(self, name, payload=None, size=None, align=4,
                 readonly=False, element_width=4):
        if payload is None and size is None:
            raise ValueError("data object needs payload or size")
        self.name = name
        self.payload = bytes(payload) if payload is not None else None
        self._size = size if size is not None else len(self.payload)
        self.align = align
        self.readonly = readonly
        #: Element width in bytes (drives Table-1 access timing annotation).
        self.element_width = element_width

    @property
    def size(self) -> int:
        return self._size

    def initial_bytes(self) -> bytes:
        if self.payload is not None:
            return self.payload
        return b"\0" * self._size

    def __repr__(self):
        kind = "ro" if self.readonly else "rw"
        return f"<DataObject {self.name} {self.size}B {kind}>"


@dataclass
class Program:
    """A complete pre-link program (compiler output)."""

    functions: list = field(default_factory=list)
    globals: list = field(default_factory=list)
    entry: str = "_start"

    def function(self, name) -> FunctionCode:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function {name!r}")

    def data(self, name) -> DataObject:
        for obj in self.globals:
            if obj.name == name:
                return obj
        raise KeyError(f"no global {name!r}")

    def memory_objects(self):
        """All allocatable objects as (name, kind, size) tuples."""
        rows = [(f.name, "code", f.size) for f in self.functions]
        rows += [(g.name, "data", g.size) for g in self.globals]
        return rows
