"""Linking: relocatable memory objects -> loadable executable image."""

from .objects import AccessNote, DataObject, FunctionCode, Program
from .image import Image, PlacedObject
from .linker import LinkError, link

__all__ = [
    "AccessNote", "DataObject", "FunctionCode", "Program",
    "Image", "PlacedObject", "LinkError", "link",
]
