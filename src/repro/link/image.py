"""Linked executable image: what the simulator loads and the analyser reads.

An :class:`Image` carries, exactly as the paper's flow does:

* the memory segments (address + bytes) to load;
* the symbol table and per-object placement (the "map file" the automated
  annotation generation reads);
* instruction-level access notes (which object a load/store touches);
* loop-bound flow facts resolved to header addresses.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass


@dataclass(frozen=True)
class PlacedObject:
    """One memory object after placement."""

    name: str
    kind: str        # "code" | "data"
    base: int
    size: int
    region: str      # "scratchpad" | "main"
    readonly: bool = False
    element_width: int = 4

    @property
    def end(self) -> int:
        return self.base + self.size


class Image:
    """A fully linked, loadable executable."""

    def __init__(self, segments, symbols, objects, entry,
                 access_notes, loop_bounds, loop_totals=None,
                 config_name=""):
        #: list of (base_addr, bytes) to load before execution
        #: (kept base-sorted for binary-searched reads).
        self.segments = sorted(segments, key=lambda seg: seg[0])
        #: symbol name -> absolute address (functions, globals, labels).
        self.symbols = dict(symbols)
        #: list of :class:`PlacedObject` (the map file).
        self.objects = list(objects)
        #: entry point address.
        self.entry = entry
        #: instruction address -> :class:`~repro.link.objects.AccessNote`.
        self.access_notes = dict(access_notes)
        #: loop-header address -> max back edges per loop entry.
        self.loop_bounds = dict(loop_bounds)
        #: loop-header address -> max back edges per function invocation.
        self.loop_totals = dict(loop_totals or {})
        self.config_name = config_name
        self._seg_bases = [base for base, _ in self.segments]
        self._objs_by_name = {obj.name: obj for obj in self.objects}
        self._content_key = None

    def content_key(self) -> str:
        """Stable content hash of everything analyses consume.

        Two images with the same key yield identical CFGs, data-access
        resolutions and loop bounds, so it is the root of every
        content-addressed analysis cache (``config_name`` is a display
        label and deliberately excluded).
        """
        key = self._content_key
        if key is None:
            digest = hashlib.sha256()
            for base, payload in self.segments:
                digest.update(base.to_bytes(8, "little"))
                digest.update(bytes(payload))
            digest.update(repr((
                sorted(self.symbols.items()),
                [(o.name, o.kind, o.base, o.size, o.region, o.readonly,
                  o.element_width) for o in self.objects],
                self.entry,
                sorted(self.access_notes.items()),
                sorted(self.loop_bounds.items()),
                sorted(self.loop_totals.items()),
            )).encode())
            key = self._content_key = digest.hexdigest()
        return key

    # -- lookup helpers ------------------------------------------------------

    def object_named(self, name) -> PlacedObject:
        return self._objs_by_name[name]

    def object_at(self, addr):
        """The placed object containing *addr*, or None."""
        for obj in self.objects:
            if obj.base <= addr < obj.end:
                return obj
        return None

    def function_range(self, name):
        obj = self.object_named(name)
        if obj.kind != "code":
            raise ValueError(f"{name!r} is not code")
        return obj.base, obj.end

    @property
    def code_objects(self):
        return [obj for obj in self.objects if obj.kind == "code"]

    @property
    def data_objects(self):
        return [obj for obj in self.objects if obj.kind == "data"]

    def spm_bytes_used(self) -> int:
        return sum(o.size for o in self.objects if o.region == "scratchpad")

    # -- raw byte access (for decoding code and literals) ---------------------

    def read_bytes(self, addr, length) -> bytes:
        index = bisect.bisect_right(self._seg_bases, addr) - 1
        if index >= 0:
            base, payload = self.segments[index]
            if base <= addr and addr + length <= base + len(payload):
                return bytes(payload[addr - base:addr - base + length])
        raise ValueError(f"address {addr:#x} not in any image segment")

    def read_halfword(self, addr) -> int:
        return int.from_bytes(self.read_bytes(addr, 2), "little")

    def read_word(self, addr) -> int:
        return int.from_bytes(self.read_bytes(addr, 4), "little")

    # -- reporting ------------------------------------------------------------

    def map_report(self) -> str:
        """Human-readable placement map (one line per object)."""
        lines = [f"{'object':24} {'kind':5} {'region':10} "
                 f"{'base':>10} {'size':>7}"]
        for obj in sorted(self.objects, key=lambda o: o.base):
            lines.append(
                f"{obj.name:24} {obj.kind:5} {obj.region:10} "
                f"{obj.base:#10x} {obj.size:7}")
        return "\n".join(lines)
