"""repro-gen: emit, inspect and soundness-check generated workloads.

Examples::

    repro-gen --seed 7                       # print the program
    repro-gen --seeds 0:100 --out corpus/    # write corpus/gen_*.mc
    repro-gen --seeds 0:500 --check          # fuzz: full soundness tiers
    repro-gen --seed 31415 --size large --check --deep

``--check`` runs every program through compile → link → execute →
replay-differential → WCET-dominates-simulation on the default
hierarchy shapes; ``--deep`` adds the recording-engine / per-pc
miss-attribution differential and the packed-vs-dict abstract-domain
comparison.  A failing seed prints its reproduction command and the
process exits non-zero.
"""

from __future__ import annotations

import argparse
import sys

from .harness import (SoundnessFailure, check_program,
                      check_spm_placement)
from .progen import SIZE_PROFILES, generate, write_corpus


def _parse_seeds(args) -> list:
    if args.seeds:
        text = args.seeds
        try:
            first, _, last = text.partition(":")
            start, stop = int(first), int(last)
        except ValueError:
            raise SystemExit(f"bad --seeds range {text!r} "
                             "(expected START:STOP)") from None
        if stop <= start:
            raise SystemExit(f"empty --seeds range {text!r}")
        return list(range(start, stop))
    return [args.seed]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-gen",
        description="seeded mini-C workload generator (deterministic: "
                    "the same seed always yields the same bytes)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generate this single seed (default 0)")
    parser.add_argument("--seeds", metavar="START:STOP",
                        help="generate the half-open seed range instead")
    parser.add_argument("--size", choices=sorted(SIZE_PROFILES),
                        default="small",
                        help="program size profile (default: small)")
    parser.add_argument("--out", metavar="DIR",
                        help="write one .mc file per seed into DIR")
    parser.add_argument("--check", action="store_true",
                        help="run the soundness tiers on each program")
    parser.add_argument("--deep", action="store_true",
                        help="with --check: add recording-engine, "
                             "per-pc miss and abstract-domain "
                             "differentials plus an SPM placement run")
    parser.add_argument("--quiet", action="store_true",
                        help="only report failures and the final tally")
    args = parser.parse_args(argv)
    seeds = _parse_seeds(args)

    if args.out:
        for path in write_corpus(args.out, seeds, args.size):
            if not args.quiet:
                print(path)
        return 0

    if args.check:
        failures = 0
        for seed in seeds:
            program = generate(seed, args.size)
            try:
                summary = check_program(program, wcet=True,
                                        misses=args.deep,
                                        domains=args.deep)
                if args.deep:
                    check_spm_placement(program)
            except SoundnessFailure as failure:
                failures += 1
                print(f"FAIL seed {seed}: {failure}", file=sys.stderr)
                continue
            if not args.quiet:
                worst = max(summary["cycles"].values())
                print(f"ok seed {seed} ({worst} cycles worst-shape)")
        print(f"{len(seeds) - failures}/{len(seeds)} seeds passed")
        return 1 if failures else 0

    for seed in seeds:
        print(generate(seed, args.size).source, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
