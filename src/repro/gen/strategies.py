"""Hypothesis strategies for random mini-C programs (tier-1 fuzzing).

These are the shrinkable counterparts of :mod:`repro.gen.progen`: where
the seeded generator optimises for throughput and byte-reproducible
corpora, Hypothesis strategies optimise for *minimal counterexamples* —
when a property fails, shrinking hands back the smallest program that
still breaks it.  The tier-1 soundness tests draw from here; keeping
the strategies in the package (rather than inline in one test file)
lets every suite compose them.

Programs drawn from :func:`random_program` always terminate: loops are
counted canonical ``for`` loops over per-depth loop variables that the
bodies never write, so the compiler derives every bound automatically.

Requires the ``hypothesis`` package (a test-only dependency); importing
this module without it installed raises ``ImportError``, which the
fuzzing tiers treat as "skip".
"""

from hypothesis import strategies as st

#: Mutable scalar names every generated program declares.
DEFAULT_NAMES = ("va", "vb", "vc")

#: Maximum loop/if nesting depth strategies will draw.
MAX_DEPTH = 2


@st.composite
def statement(draw, depth, names):
    """One mini-C statement over *names* at nesting level *depth*."""
    kind = draw(st.sampled_from(
        ["assign", "array", "if", "loop"] if depth < MAX_DEPTH
        else ["assign", "array"]))
    if kind == "assign":
        target = draw(st.sampled_from(names))
        source = draw(st.sampled_from(names))
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        constant = draw(st.integers(0, 200))
        return f"{target} = {target} {op} ({source} + {constant});"
    if kind == "array":
        index = draw(st.integers(0, 15))
        target = draw(st.sampled_from(names))
        if draw(st.booleans()):
            return f"buffer[{index}] = {target};"
        return f"{target} = {target} + buffer[({target} & 15)];"
    if kind == "if":
        condition_var = draw(st.sampled_from(names))
        threshold = draw(st.integers(0, 100))
        then = draw(statement(depth + 1, names))
        other = draw(statement(depth + 1, names))
        return (f"if (({condition_var} & 255) < {threshold}) "
                f"{{ {then} }} else {{ {other} }}")
    # counted loop (auto-bounded by the compiler); one loop variable per
    # nesting depth so inner loops never clobber an outer counter.
    count = draw(st.integers(1, 6))
    body = draw(statement(depth + 1, names))
    return (f"for (loop_i{depth} = 0; loop_i{depth} < {count}; "
            f"loop_i{depth}++) {{ {body} }}")


@st.composite
def random_program(draw, names=DEFAULT_NAMES):
    """A complete mini-C translation unit exercising loops, branches,
    global-array traffic and arithmetic; ``main`` returns a value
    derived from every scalar, so memory-system bugs surface as exit-
    code differences."""
    names = list(names)
    seeds = [draw(st.integers(0, 10000)) for _ in names]
    body = "\n    ".join(
        draw(statement(0, names)) for _ in range(draw(st.integers(2, 6))))
    decls = "\n    ".join(
        f"int {name} = {seed};" for name, seed in zip(names, seeds))
    loop_decls = "\n    ".join(
        f"int loop_i{depth};" for depth in range(MAX_DEPTH + 1))
    result = " + ".join(names)
    return f"""
int buffer[16];
int main(void) {{
    {loop_decls}
    {decls}
    {body}
    return ({result}) & 255;
}}
"""
