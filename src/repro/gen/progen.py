"""Seeded mini-C workload generator with an exact reference evaluator.

The paper's experiments run over seven hand-ported benchmarks; the
soundness-fuzzing tier needs *thousands* of structurally diverse
programs.  This module grows the suite on demand: :func:`generate`
turns ``(seed, size)`` into a complete, self-checking mini-C program —
deterministically, so the same seed always yields the **byte-identical**
source and any failing seed reproduces from its number alone.

Every program is built as a little AST whose nodes know two things:
how to render themselves as mini-C, and how to evaluate themselves
under the exact 32-bit two's-complement semantics the compiler and the
execution engine implement (wrapping ``+ - * <<``, arithmetic ``>>``,
sign-/zero-extending short/char array elements).  Generation therefore
*predicts* the program's final checksum, console output and exit code,
and bakes the expectation into the program itself:

* the program folds every global, array and local into ``acc``, prints
  it, and exits **42** printing ``OK`` iff ``acc`` matches the
  generator's prediction — a miscompare in any layer (codegen, linker,
  engine, replay) turns into a wrong exit code, no oracle needed;
* termination is structural, never hoped for: loops are either counted
  canonical ``for`` loops (auto-bounded by the compiler) or
  ``#pragma loopbound``-annotated down-counting ``while`` loops whose
  counter the body never touches, and the call graph is acyclic
  (helper *i* only calls helpers *j > i*).  Every generated program is
  thus a valid WCET-analysis subject by construction.

Structural variety per seed: nested if/else on data, ``break`` /
``continue`` in counted loops, global scalar traffic, int/short/char
global-array reads and writes (all three access widths), a const
lookup table, helper calls that push stack frames (stack traffic), and
console output along the way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

MASK32 = 0xFFFFFFFF
INT_MAX = 0x7FFFFFFF


def wrap32(value: int) -> int:
    """Reduce *value* to the signed 32-bit integer the engine computes."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


class GenError(Exception):
    """Internal generator invariant broken (a bug in this module)."""


# -- evaluation signals -------------------------------------------------------

class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Machine:
    """Reference evaluator state: globals, arrays, frames, console."""

    #: Statement-execution fuse: generated programs run a few thousand
    #: statements; hitting this means the generator built a non-
    #: terminating program, which must never happen.
    FUEL = 2_000_000

    def __init__(self, scalars, arrays):
        self.globals = dict(scalars)
        self.arrays = {a.name: a.initial_cells() for a in arrays}
        self.frames = []
        self.console = []
        self.fuel = self.FUEL

    def tick(self):
        self.fuel -= 1
        if self.fuel <= 0:
            raise GenError("generated program exceeded the evaluation "
                           "fuse — non-termination bug in the generator")

    def load(self, name):
        frame = self.frames[-1]
        if name in frame:
            return frame[name]
        return self.globals[name]

    def store(self, name, value):
        frame = self.frames[-1]
        if name in frame:
            frame[name] = value
        elif name in self.globals:
            self.globals[name] = value
        else:
            raise GenError(f"store to undeclared name {name!r}")


# -- declarations -------------------------------------------------------------

@dataclass(frozen=True)
class ArrayDecl:
    """A global 1-D array; ``ctype`` fixes width and extension rules."""

    name: str
    ctype: str          # "int" | "short" | "char" | "const int"
    size: int           # power of two, so indices mask cleanly
    init: tuple = ()    # initializer list; empty means zero-filled

    @property
    def mask(self) -> int:
        return self.size - 1

    @property
    def writable(self) -> bool:
        return not self.ctype.startswith("const")

    def initial_cells(self):
        cells = [self._store_value(v) for v in self.init]
        cells.extend(0 for _ in range(self.size - len(cells)))
        return cells

    def _store_value(self, value):
        if self.ctype.endswith("int"):
            return wrap32(value)
        if self.ctype == "short":
            return value & 0xFFFF
        return value & 0xFF

    def load_cell(self, raw):
        if self.ctype.endswith("int"):
            return raw
        if self.ctype == "short":
            return raw - 0x10000 if raw & 0x8000 else raw
        return raw

    def render(self) -> str:
        if not self.init:
            return f"{self.ctype} {self.name}[{self.size}];"
        values = ", ".join(str(v) for v in self.init)
        return f"{self.ctype} {self.name}[{self.size}] = {{ {values} }};"


# -- expressions --------------------------------------------------------------

class Const:
    def __init__(self, value):
        self.value = value

    def render(self):
        return str(self.value)

    def eval(self, machine):
        return self.value


class Var:
    def __init__(self, name):
        self.name = name

    def render(self):
        return self.name

    def eval(self, machine):
        return machine.load(self.name)


class ArrayRead:
    """``name[(index) & mask]`` — masked, so always in bounds."""

    def __init__(self, decl: ArrayDecl, index):
        self.decl = decl
        self.index = index

    def render(self):
        return f"{self.decl.name}[{self.index.render()} & {self.decl.mask}]"

    def eval(self, machine):
        index = self.index.eval(machine) & self.decl.mask
        return self.decl.load_cell(machine.arrays[self.decl.name][index])


class Bin:
    """Wrapping arithmetic/bitwise binop; shifts take constant counts."""

    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def render(self):
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self, machine):
        left = self.left.eval(machine)
        right = self.right.eval(machine)
        op = self.op
        if op == "+":
            return wrap32(left + right)
        if op == "-":
            return wrap32(left - right)
        if op == "*":
            return wrap32(left * right)
        if op == "&":
            return left & right
        if op == "|":
            return wrap32(left | right)
        if op == "^":
            return wrap32(left ^ right)
        if op == "<<":
            return wrap32(left << right)
        if op == ">>":
            return left >> right      # arithmetic: ASR on signed int
        raise GenError(f"unknown operator {op!r}")


class Cmp:
    def __init__(self, op, left, right):
        self.op = op
        self.left = left
        self.right = right

    def render(self):
        return f"({self.left.render()} {self.op} {self.right.render()})"

    def eval(self, machine):
        left = self.left.eval(machine)
        right = self.right.eval(machine)
        return 1 if {
            "<": left < right, "<=": left <= right,
            ">": left > right, ">=": left >= right,
            "==": left == right, "!=": left != right,
        }[self.op] else 0


class CallExpr:
    def __init__(self, fn, args):
        self.fn = fn
        self.args = args

    def render(self):
        args = ", ".join(arg.render() for arg in self.args)
        return f"{self.fn.name}({args})"

    def eval(self, machine):
        values = [arg.eval(machine) for arg in self.args]
        return self.fn.call(machine, values)


# -- statements ---------------------------------------------------------------

class Assign:
    def __init__(self, name, expr):
        self.name = name
        self.expr = expr

    def emit(self, out, indent):
        out.append(f"{indent}{self.name} = {self.expr.render()};")

    def run(self, machine):
        machine.tick()
        machine.store(self.name, self.expr.eval(machine))


class ArrayWrite:
    def __init__(self, decl: ArrayDecl, index, expr):
        self.decl = decl
        self.index = index
        self.expr = expr

    def emit(self, out, indent):
        out.append(f"{indent}{self.decl.name}"
                   f"[{self.index.render()} & {self.decl.mask}]"
                   f" = {self.expr.render()};")

    def run(self, machine):
        machine.tick()
        index = self.index.eval(machine) & self.decl.mask
        value = self.expr.eval(machine)
        machine.arrays[self.decl.name][index] = \
            self.decl._store_value(value)


class PrintInt:
    def __init__(self, expr):
        self.expr = expr

    def emit(self, out, indent):
        out.append(f"{indent}__print_int({self.expr.render()});")

    def run(self, machine):
        machine.tick()
        machine.console.append(str(self.expr.eval(machine)))


class PrintChar:
    def __init__(self, code):
        self.code = code

    def emit(self, out, indent):
        out.append(f"{indent}__print_char({self.code});")

    def run(self, machine):
        machine.tick()
        machine.console.append(chr(self.code & 0xFF))


class If:
    def __init__(self, cond, then, orelse=()):
        self.cond = cond
        self.then = list(then)
        self.orelse = list(orelse)

    def emit(self, out, indent):
        out.append(f"{indent}if ({self.cond.render()}) {{")
        for stmt in self.then:
            stmt.emit(out, indent + "    ")
        if self.orelse:
            out.append(f"{indent}}} else {{")
            for stmt in self.orelse:
                stmt.emit(out, indent + "    ")
        out.append(f"{indent}}}")

    def run(self, machine):
        machine.tick()
        branch = self.then if self.cond.eval(machine) else self.orelse
        for stmt in branch:
            stmt.run(machine)


class Break:
    def emit(self, out, indent):
        out.append(f"{indent}break;")

    def run(self, machine):
        machine.tick()
        raise _Break


class Continue:
    def emit(self, out, indent):
        out.append(f"{indent}continue;")

    def run(self, machine):
        machine.tick()
        raise _Continue


class For:
    """Canonical counted loop — the compiler derives the bound itself."""

    def __init__(self, var, count, body):
        self.var = var
        self.count = count
        self.body = list(body)

    def emit(self, out, indent):
        out.append(f"{indent}for ({self.var} = 0; "
                   f"{self.var} < {self.count}; {self.var}++) {{")
        for stmt in self.body:
            stmt.emit(out, indent + "    ")
        out.append(f"{indent}}}")

    def run(self, machine):
        machine.store(self.var, 0)
        while machine.load(self.var) < self.count:
            machine.tick()
            try:
                for stmt in self.body:
                    stmt.run(machine)
            except _Break:
                return
            except _Continue:
                pass          # for-increment still runs after continue
            machine.store(self.var,
                          wrap32(machine.load(self.var) + 1))


class BoundedWhile:
    """Pragma-bounded down-counting while; init <= bound keeps it sound.

    The trailing decrement is part of the construct and the body never
    writes (or ``continue``s past) the counter, so actual iterations
    equal the counter's initial value.
    """

    def __init__(self, var, bound, init, body):
        self.var = var
        self.bound = bound
        self.init = init
        self.body = list(body)

    def emit(self, out, indent):
        out.append(f"{indent}{self.var} = {self.init};")
        out.append(f"{indent}#pragma loopbound {self.bound}")
        out.append(f"{indent}while ({self.var} > 0) {{")
        for stmt in self.body:
            stmt.emit(out, indent + "    ")
        out.append(f"{indent}    {self.var} = {self.var} - 1;")
        out.append(f"{indent}}}")

    def run(self, machine):
        machine.store(self.var, self.init)
        while machine.load(self.var) > 0:
            machine.tick()
            try:
                for stmt in self.body:
                    stmt.run(machine)
            except _Break:
                return
            machine.store(self.var, machine.load(self.var) - 1)


class Return:
    def __init__(self, expr):
        self.expr = expr

    def emit(self, out, indent):
        out.append(f"{indent}return {self.expr.render()};")

    def run(self, machine):
        machine.tick()
        raise _Return(self.expr.eval(machine))


# -- functions ----------------------------------------------------------------

class Helper:
    """``int name(int a, int b)`` with its own locals and loops."""

    def __init__(self, name, params, local_inits, extra_locals, body, ret):
        self.name = name
        self.params = params
        self.local_inits = local_inits    # [(name, const value)]
        self.extra_locals = extra_locals  # loop vars / while counters
        self.body = body
        self.ret = ret

    def call(self, machine, values):
        frame = dict(zip(self.params, values))
        frame.update(self.local_inits)
        frame.update((name, 0) for name in self.extra_locals)
        machine.frames.append(frame)
        try:
            for stmt in self.body:
                stmt.run(machine)
            result = self.ret.eval(machine)
        except _Return as signal:
            result = signal.value
        finally:
            machine.frames.pop()
        return result

    def emit(self, out):
        params = ", ".join(f"int {p}" for p in self.params)
        out.append(f"int {self.name}({params}) {{")
        for name in self.extra_locals:
            out.append(f"    int {name};")
        for name, value in self.local_inits:
            out.append(f"    int {name} = {value};")
        for stmt in self.body:
            stmt.emit(out, "    ")
        Return(self.ret).emit(out, "    ")
        out.append("}")


# -- the generator ------------------------------------------------------------

#: Size profiles: (helpers, main statements, helper statements, max loop
#: nesting, loop trip range, (int, short, char) array sizes).
SIZE_PROFILES = {
    "small": dict(helpers=(1, 2), main_stmts=(4, 8),
                  helper_stmts=(2, 4), depth=2, trips=(2, 5),
                  array_sizes=(16, 16, 16), table=8),
    "medium": dict(helpers=(2, 3), main_stmts=(6, 12),
                   helper_stmts=(3, 5), depth=3, trips=(2, 7),
                   array_sizes=(32, 16, 16), table=16),
    "large": dict(helpers=(3, 4), main_stmts=(10, 16),
                  helper_stmts=(4, 7), depth=3, trips=(3, 9),
                  array_sizes=(64, 32, 32), table=16),
}

_BINOPS = ("+", "-", "*", "&", "|", "^")
_CMPS = ("<", "<=", ">", ">=", "==", "!=")


@dataclass(frozen=True)
class GeneratedProgram:
    """A generated source plus the evaluator's predicted results."""

    seed: int
    size: str
    source: str
    expected_exit: int
    expected_console: tuple
    expected_checksum: int

    @property
    def name(self) -> str:
        return f"gen_{self.size}_{self.seed:06d}"


class _Generator:
    def __init__(self, seed, size):
        if size not in SIZE_PROFILES:
            raise ValueError(f"unknown size {size!r}; "
                             f"expected one of {sorted(SIZE_PROFILES)}")
        self.seed = seed
        self.size = size
        self.profile = SIZE_PROFILES[size]
        self.rng = random.Random(seed)
        # Per-function scope: loop variables and while down-counters the
        # current function's body has used (they become declarations).
        self.scope_loops = set()
        self.scope_whiles = []

    # -- building blocks ------------------------------------------------

    def _declare_data(self):
        rng = self.rng
        self.scalars = [(f"g{i}", rng.randrange(-500, 2000))
                        for i in range(rng.randint(2, 4))]
        ints, shorts, chars = self.profile["array_sizes"]
        self.arrays = [
            ArrayDecl("words", "int", ints),
            ArrayDecl("halves", "short", shorts),
            ArrayDecl("bytes", "char", chars),
            ArrayDecl("table", "const int", self.profile["table"],
                      tuple(rng.randrange(-300, 300)
                            for _ in range(self.profile["table"]))),
        ]
        self.const_table = self.arrays[-1]

    def expr(self, names, depth=0):
        rng = self.rng
        roll = rng.random()
        if depth >= 2 or roll < 0.25:
            if rng.random() < 0.5:
                return Const(rng.randrange(0, 256))
            return Var(rng.choice(names))
        if roll < 0.45:
            decl = rng.choice(self.arrays)
            return ArrayRead(decl, self.expr(names, depth + 1))
        if roll < 0.55:
            op = rng.choice(("<<", ">>"))
            return Bin(op, self.expr(names, depth + 1),
                       Const(rng.randrange(0, 8)))
        op = rng.choice(_BINOPS)
        return Bin(op, self.expr(names, depth + 1),
                   self.expr(names, depth + 1))

    def cond(self, names):
        rng = self.rng
        left = Bin("&", self.expr(names, 1), Const(255))
        return Cmp(rng.choice(_CMPS), left, Const(rng.randrange(0, 256)))

    def statement(self, depth, names, writable, *, in_for, helpers,
                  loop_prefix):
        rng = self.rng
        kinds = ["assign", "assign", "array"]
        if depth < self.profile["depth"]:
            kinds += ["if", "for", "while"]
        if helpers:
            kinds.append("call")
        if in_for and depth > 0:
            kinds.append("escape")
        if loop_prefix == "i":      # console output from main only
            kinds.append("print")
        kind = rng.choice(kinds)
        if kind == "assign":
            return Assign(rng.choice(writable), self.expr(names))
        if kind == "array":
            decl = rng.choice([a for a in self.arrays if a.writable])
            return ArrayWrite(decl, self.expr(names, 1),
                              self.expr(names))
        if kind == "print":
            return PrintInt(Bin("&", self.expr(names, 1), Const(255)))
        if kind == "call":
            fn = rng.choice(helpers)
            args = [self.expr(names, 1) for _ in fn.params]
            return Assign(rng.choice(writable), CallExpr(fn, args))
        if kind == "if":
            then = self.block(depth + 1, names, writable, in_for=in_for,
                              helpers=helpers, loop_prefix=loop_prefix,
                              count=rng.randint(1, 2))
            orelse = self.block(
                depth + 1, names, writable, in_for=in_for,
                helpers=helpers, loop_prefix=loop_prefix,
                count=rng.randint(0, 2))
            return If(self.cond(names), then, orelse)
        if kind == "escape":
            escape = Break() if rng.random() < 0.5 else Continue()
            return If(self.cond(names), [escape])
        trips = rng.randint(*self.profile["trips"])
        if kind == "for":
            var = f"{loop_prefix}{depth}"
            self.scope_loops.add(var)
        else:
            var = f"{loop_prefix}w{len(self.scope_whiles)}"
            self.scope_whiles.append(var)
        body = self.block(depth + 1, names + [var], writable,
                          in_for=(kind == "for"), helpers=helpers,
                          loop_prefix=loop_prefix,
                          count=rng.randint(1, 3))
        if kind == "for":
            return For(var, trips, body)
        return BoundedWhile(var, trips, rng.randint(0, trips), body)

    def block(self, depth, names, writable, *, in_for, helpers,
              loop_prefix, count):
        return [self.statement(depth, names, writable, in_for=in_for,
                               helpers=helpers, loop_prefix=loop_prefix)
                for _ in range(count)]

    def _make_helper(self, index, callable_helpers):
        rng = self.rng
        self.scope_loops, self.scope_whiles = set(), []
        params = [f"a{index}", f"b{index}"][:rng.randint(1, 2)]
        locals_ = [(f"t{index}_{i}", rng.randrange(0, 512))
                   for i in range(rng.randint(1, 2))]
        names = params + [name for name, _ in locals_] + \
            [name for name, _ in self.scalars]
        writable = [name for name, _ in locals_] + \
            [name for name, _ in self.scalars]
        body = self.block(
            1, names, writable, in_for=False, helpers=callable_helpers,
            loop_prefix=f"h{index}_", count=rng.randint(
                *self.profile["helper_stmts"]))
        ret = self.expr(names)
        extra = sorted(self.scope_loops) + self.scope_whiles
        return Helper(f"helper{index}", params, locals_, extra, body, ret)

    # -- assembly -------------------------------------------------------

    def build(self) -> GeneratedProgram:
        rng = self.rng
        self._declare_data()
        count = rng.randint(*self.profile["helpers"])
        helpers = []
        for index in reversed(range(count)):
            helpers.insert(0, self._make_helper(index, list(helpers)))
        self.scope_loops, self.scope_whiles = set(), []
        main_locals = [(f"v{i}", rng.randrange(-200, 1000))
                       for i in range(rng.randint(2, 4))]
        names = [name for name, _ in main_locals] + \
            [name for name, _ in self.scalars]
        writable = list(names)
        body = self.block(
            0, names, writable, in_for=False, helpers=helpers,
            loop_prefix="i", count=rng.randint(*self.profile["main_stmts"]))
        epilogue = self._fold_statements(main_locals)
        main_vars = sorted(self.scope_loops) + self.scope_whiles + \
            [f"fold_{a.name}" for a in self.arrays] + ["acc"]

        machine = _Machine(self.scalars, self.arrays)
        machine.frames.append(dict(main_locals) |
                              {var: 0 for var in main_vars})
        for stmt in body + epilogue:
            stmt.run(machine)
        checksum = machine.load("acc")
        console = tuple(machine.console) + (str(checksum), "O", "K")

        return GeneratedProgram(
            seed=self.seed, size=self.size,
            source=self._render(helpers, main_locals, main_vars, body,
                                epilogue, checksum),
            expected_exit=42, expected_console=console,
            expected_checksum=checksum)

    def _fold_statements(self, main_locals):
        """acc <- every array cell, scalar and local, order fixed."""
        fold = [Assign("acc", Const(self.rng.randrange(0, 1 << 16)))]
        for decl in self.arrays:
            var = f"fold_{decl.name}"
            mix = Bin("+", Bin("^", Bin("<<", Var("acc"), Const(1)),
                               ArrayRead(decl, Var(var))),
                      Const(13))
            fold.append(For(var, decl.size, [Assign("acc", mix)]))
        for name, _ in self.scalars + main_locals:
            fold.append(Assign("acc", Bin("^", Bin("*", Var("acc"),
                                                   Const(31)),
                                          Var(name))))
        fold.append(Assign("acc", Bin("&", Var("acc"), Const(INT_MAX))))
        return fold

    def _render(self, helpers, main_locals, main_vars, body, epilogue,
                checksum):
        out = [f"/* generated: seed={self.seed} size={self.size} "
               "(repro-gen) */", ""]
        for decl in self.arrays:
            out.append(decl.render())
        for name, value in self.scalars:
            out.append(f"int {name} = {value};")
        out.append("")
        for helper in helpers:
            helper.emit(out)
            out.append("")
        out.append("int main(void) {")
        for var in main_vars:
            out.append(f"    int {var};")
        for name, value in main_locals:
            out.append(f"    int {name} = {value};")
        for stmt in body:
            stmt.emit(out, "    ")
        for stmt in epilogue:
            stmt.emit(out, "    ")
        out.append("    __print_int(acc);")
        out.append(f"    if (acc == {checksum}) {{")
        out.append("        __print_char(79);")
        out.append("        __print_char(75);")
        out.append("        return 42;")
        out.append("    }")
        out.append("    return 1;")
        out.append("}")
        return "\n".join(out) + "\n"


def generate(seed: int, size: str = "small") -> GeneratedProgram:
    """The deterministic program for ``(seed, size)``."""
    return _Generator(seed, size).build()


def write_corpus(directory, seeds, size: str = "small"):
    """Write one ``.mc`` file per seed into *directory*; returns paths."""
    import os
    os.makedirs(directory, exist_ok=True)
    paths = []
    for seed in seeds:
        program = generate(seed, size)
        path = os.path.join(directory, program.name + ".mc")
        with open(path, "w") as handle:
            handle.write(program.source)
        paths.append(path)
    return paths
