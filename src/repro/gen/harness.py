"""Soundness harness: one generated program through the whole stack.

This is the machinery behind the fuzzing tiers (``pytest -m fuzz`` and
``repro-gen --check``).  For a generated program it checks, in order of
increasing depth:

1. **self-check** — the program compiles, links, runs on the execution
   engine and reaches its own embedded checksum comparison: exit code
   42 and the console the reference evaluator predicted.  Catches
   codegen/linker/engine semantic breaks;
2. **engine differentials** — trace replay reproduces direct execution
   bit for bit (cycles, instructions, exit, console, per-level stats)
   on every hierarchy shape, and with ``misses=True`` the recording
   engine agrees too, down to per-pc fetch-miss attribution
   (:func:`repro.sim.replay.replay_misses`);
3. **WCET soundness** — the static bound dominates the simulated cycle
   count on every shape (the paper's core invariant);
4. **abstract-domain differential** — with ``domains=True`` the packed
   bitset cache analysis and the dict-based reference produce identical
   per-instruction classifications.

Failures raise :class:`SoundnessFailure` whose message embeds the
``repro-gen`` command line that regenerates the exact program, so a
failing nightly seed reproduces locally from its number alone.
"""

from __future__ import annotations

from ..link import link
from ..memory import CacheConfig, SystemConfig
from ..minic import compile_source
from ..sim import Simulator, simulate
from ..sim.replay import replay, replay_misses
from ..sim.trace import record_trace
from ..wcet import analyze_wcet
from .progen import GeneratedProgram, generate

#: The default hierarchy shapes every fuzzed program is priced under —
#: small and low-associativity on purpose, so generated working sets
#: actually conflict.  (The SPM shape runs separately: it needs its own
#: placement and trace, see :func:`check_spm_placement`.)
DEFAULT_SHAPES = (
    ("uncached", lambda: SystemConfig.uncached()),
    ("l1-64", lambda: SystemConfig.cached(CacheConfig(size=64))),
    ("l1-128-2way", lambda: SystemConfig.cached(
        CacheConfig(size=128, assoc=2))),
    ("icache-64", lambda: SystemConfig.cached(
        CacheConfig(size=64, unified=False))),
    ("l1+l2", lambda: SystemConfig.two_level(
        CacheConfig(size=64), CacheConfig(size=256))),
)


class SoundnessFailure(AssertionError):
    """A generated program broke a cross-layer invariant."""


def _repro_hint(program: GeneratedProgram) -> str:
    return (f"seed={program.seed} size={program.size}; reproduce with: "
            f"repro-gen --seed {program.seed} --size {program.size}")


def _expect(condition, message):
    if not condition:
        raise SoundnessFailure(message)


def _stats_tuple(stats):
    if stats is None:
        return None
    return (stats.fetch_hits, stats.fetch_misses, stats.read_hits,
            stats.read_misses, stats.write_hits, stats.write_misses)


def _same_result(replayed, executed, context):
    _expect(replayed.cycles == executed.cycles,
            f"replay cycles {replayed.cycles} != engine "
            f"{executed.cycles} [{context}]")
    _expect(replayed.instructions == executed.instructions,
            f"replay instruction count diverged [{context}]")
    _expect(replayed.exit_code == executed.exit_code,
            f"replay exit code diverged [{context}]")
    _expect(replayed.console == executed.console,
            f"replay console diverged [{context}]")
    _expect(set(replayed.level_stats) == set(executed.level_stats),
            f"replay level names diverged [{context}]")
    for name in executed.level_stats:
        _expect(_stats_tuple(replayed.level_stats[name]) ==
                _stats_tuple(executed.level_stats[name]),
                f"replay {name} stats diverged [{context}]")


def check_program(program: GeneratedProgram, shapes=DEFAULT_SHAPES, *,
                  wcet=True, misses=False, domains=False) -> dict:
    """Run *program* through the tiers; returns a small summary dict."""
    hint = _repro_hint(program)
    compiled = compile_source(program.source)
    image = link(compiled.program)
    trace = record_trace(image, 0)
    _expect(trace.exit_code == program.expected_exit,
            f"self-check failed: exit {trace.exit_code}, console tail "
            f"{list(trace.console)[-3:]} [{hint}]")
    _expect(tuple(trace.console) == program.expected_console,
            f"console diverged from the reference evaluator [{hint}]")
    cycles = {}
    for name, factory in shapes:
        config = factory()
        context = f"shape={name} {hint}"
        executed = simulate(image, config)
        _expect(executed.exit_code == program.expected_exit,
                f"memory system changed computed values [{context}]")
        replayed = replay(trace, config)
        _same_result(replayed, executed, context)
        if misses:
            recorded = Simulator(image, config).run(record_misses=True)
            _expect(recorded.cycles == executed.cycles,
                    f"recording engine cycles diverged [{context}]")
            fetch, main = replay_misses(trace, config)
            _expect(fetch == dict(recorded.fetch_misses),
                    f"replay-served fetch_misses diverged [{context}]")
            _expect(main == dict(recorded.fetch_main_misses),
                    f"replay-served fetch_main_misses diverged "
                    f"[{context}]")
        if wcet:
            bound = analyze_wcet(image, config)
            _expect(bound.wcet >= executed.cycles,
                    f"UNSOUND: WCET {bound.wcet} < simulated "
                    f"{executed.cycles} [{context}]")
        if domains and config.cache is not None:
            _check_domains(image, config, context)
        cycles[name] = executed.cycles
    return {"seed": program.seed, "size": program.size,
            "exit": program.expected_exit, "cycles": cycles}


def check_seed(seed: int, size: str = "small", shapes=DEFAULT_SHAPES,
               **kwargs) -> dict:
    """Generate-and-check in one call (the fuzz tier's inner loop)."""
    return check_program(generate(seed, size), shapes, **kwargs)


def check_spm_placement(program: GeneratedProgram,
                        spm_size: int = 256) -> dict:
    """Greedy SPM placement: values preserved, never slower, bounded."""
    hint = _repro_hint(program)
    compiled = compile_source(program.source)
    baseline = link(compiled.program)
    reference = simulate(baseline, SystemConfig.uncached())
    chosen, used = [], 0
    for name, _kind, size in sorted(compiled.program.memory_objects(),
                                    key=lambda o: (o[2], o[0])):
        aligned = (size + 3) & ~3
        if used + aligned <= spm_size:
            chosen.append(name)
            used += aligned
    image = link(compiled.program, spm_size=spm_size, spm_objects=chosen)
    config = SystemConfig.scratchpad(spm_size)
    placed = simulate(image, config)
    context = f"spm={spm_size} {hint}"
    _expect(placed.exit_code == program.expected_exit,
            f"SPM placement changed computed values [{context}]")
    _expect(placed.console == reference.console,
            f"SPM placement changed console output [{context}]")
    _expect(placed.cycles <= reference.cycles,
            f"SPM made the program slower ({placed.cycles} > "
            f"{reference.cycles}) [{context}]")
    bound = analyze_wcet(image, config)
    _expect(bound.wcet >= placed.cycles,
            f"UNSOUND: WCET {bound.wcet} < simulated {placed.cycles} "
            f"[{context}]")
    trace = record_trace(image, spm_size)
    _same_result(replay(trace, config), placed, context)
    return {"seed": program.seed, "spm": spm_size,
            "cycles": placed.cycles, "baseline": reference.cycles}


def _check_domains(image, config, context):
    """Packed bitset vs dict abstract domains: identical classes."""
    from ..wcet import build_all_cfgs
    from ..wcet.cacheanalysis import analyze_hierarchy
    from ..wcet.stackdepth import stack_region
    cfgs = build_all_cfgs(image)
    entry_by_addr = {cfg.entry: name for name, cfg in cfgs.items()}
    rng = stack_region(cfgs, "_start", entry_by_addr)
    packed, plain = (
        analyze_hierarchy(image, cfgs, config, rng, "_start",
                          domain=domain, reuse=False)
        for domain in ("packed", "dict"))
    for level_packed, level_dict in zip(packed.levels, plain.levels):
        for ours, reference in (
                (level_packed.iresult, level_dict.iresult),
                (level_packed.dresult, level_dict.dresult)):
            _expect((ours is None) == (reference is None),
                    f"domain result presence diverged [{context}]")
            if ours is None:
                continue
            _expect(set(ours.classes) == set(reference.classes),
                    f"domain classified address sets diverged "
                    f"[{context}]")
            for addr, entry in ours.classes.items():
                _expect(vars(entry) == vars(reference.classes[addr]),
                        f"packed vs dict domain diverged at "
                        f"{addr:#x} [{context}]")
