"""Workload generation: seeded mini-C programs and fuzzing harnesses.

Grows the benchmark suite beyond the paper's seven hand-ported programs:

* :mod:`repro.gen.progen` — deterministic seeded generator with an
  exact reference evaluator (self-checking programs, byte-identical
  per seed);
* :mod:`repro.gen.strategies` — Hypothesis strategies for shrinkable
  tier-1 property tests (needs the ``hypothesis`` package);
* :mod:`repro.gen.harness` — the tiered soundness checks the fuzz
  suites and ``repro-gen --check`` run.
"""

from .progen import (
    GeneratedProgram,
    GenError,
    SIZE_PROFILES,
    generate,
    wrap32,
    write_corpus,
)
from .harness import (
    DEFAULT_SHAPES,
    SoundnessFailure,
    check_program,
    check_seed,
    check_spm_placement,
)

__all__ = [
    "GeneratedProgram", "GenError", "SIZE_PROFILES", "generate",
    "wrap32", "write_corpus",
    "DEFAULT_SHAPES", "SoundnessFailure", "check_program", "check_seed",
    "check_spm_placement",
]
