"""External trace ingestion: foreign address streams become Traces.

The replay and sweep kernels (:mod:`repro.sim.replay`) only need a
packed ``addr << 3 | tag`` access stream — nothing about them is tied to
our ISA.  This module opens that end of the pipeline: it parses textual
address traces into :class:`~repro.sim.trace.Trace` objects so
real-world workloads (Pin-collected streams, PredicMem23-style memory
traces) can be priced under every memory configuration the repo models,
including single-pass cache-size sweeps.

Three input shapes are recognised (``fmt="auto"`` sniffs the first
non-blank line):

``repro`` — the native exchange format :func:`dump_trace` writes::

    # repro-trace 3
    # base_cycles 8261
    # instructions 2104
    # exit_code 42
    # spm_size 0
    # spm_counts 0 0 0 0 0 0 0 0
    # console "17"
    F 0x40000000 x24 s2
    R4 0x40001000
    W2 0x40001004 x3

  One record per access *run*: ``F`` instruction fetch, ``C``
  continuation fetch (second halfword of a 32-bit instruction),
  ``R<w>``/``W<w>`` data read/write of width ``w`` in {1, 2, 4} bytes.
  An optional ``x<count>`` repeats the access *count* times and an
  optional ``s2`` strides the address by 2 bytes per repeat (version 3,
  the trace's line-granular run-length encoding; straight-line fetch
  runs dominate real streams).  Version-1 files — one plain record per
  access — are still read.  Metadata headers carry everything else a
  :class:`Trace` holds, so a dump → ingest round trip reproduces the
  recorded trace bit for bit and replays identically to the original.

``pin`` — Pin ``pinatrace``-style lines::

    0x7f06c0d8a123: R 0x7fff5a8c0a98
    0x7f06c0d8a125: W 0x7fff5a8c0a90

  Each line is a data access (width 4 unless a trailing size column
  says otherwise).  Whenever the instruction pointer changes from the
  previous line, one instruction fetch at the new ip is synthesised in
  front of the access, approximating the fetch stream the data stream
  rode on.

``predicmem`` — PredicMem23-style CSV, ``ip,addr`` (or ``;``-separated)
  per line: a memory read at ``addr`` by the instruction at ``ip``,
  with the same ip-change fetch synthesis as ``pin``.

Foreign traces have no architectural results: ``base_cycles`` is 0,
``exit_code`` 0, the console empty, and ``instructions`` is the number
of (synthesised) fetches, falling back to the record count for purely
data streams.  Malformed input — unknown kinds, bad numbers, bad
widths, truncated or unrecognisable files — raises
:class:`TraceFormatError` naming the offending line.
"""

from __future__ import annotations

import gzip
import json
from array import array

from .trace import READ_TAGS, TAG_FETCH, TAG_FETCH_CONT, Trace, WRITE_TAGS

#: Version written by :func:`dump_trace`.
TEXT_VERSION = 3

#: Versions :func:`parse_trace` accepts (3 added the run records).
_READ_VERSIONS = ("1", "3")

_KIND_TAGS = {
    "F": TAG_FETCH,
    "C": TAG_FETCH_CONT,
    "R1": READ_TAGS[1], "R2": READ_TAGS[2], "R4": READ_TAGS[4],
    "W1": WRITE_TAGS[1], "W2": WRITE_TAGS[2], "W4": WRITE_TAGS[4],
}
_TAG_KINDS = {tag: kind for kind, tag in _KIND_TAGS.items()}

#: addr << 3 must fit the unsigned 64-bit ops array.
_MAX_ADDR = (1 << 61) - 1


class TraceFormatError(ValueError):
    """An ingested trace file could not be understood."""


def _parse_addr(text, lineno):
    try:
        addr = int(text, 0)
    except ValueError:
        raise TraceFormatError(
            f"line {lineno}: bad address {text!r}") from None
    if not 0 <= addr <= _MAX_ADDR:
        raise TraceFormatError(
            f"line {lineno}: address {text} out of range")
    return addr


def _parse_width(text, lineno):
    try:
        width = int(text, 0)
    except ValueError:
        raise TraceFormatError(
            f"line {lineno}: bad access size {text!r}") from None
    if width not in (1, 2, 4):
        raise TraceFormatError(
            f"line {lineno}: unsupported access size {width} "
            "(expected 1, 2 or 4)")
    return width


def _parse_run(extras, lineno):
    """``(count, stride?)`` from a record's optional run fields."""
    count, stride = 1, False
    for field in extras:
        if field.startswith("x"):
            try:
                count = int(field[1:])
            except ValueError:
                count = 0
            if count < 1:
                raise TraceFormatError(
                    f"line {lineno}: bad run count {field!r}")
        elif field == "s2":
            stride = True
        else:
            raise TraceFormatError(
                f"line {lineno}: unknown run field {field!r} "
                "(expected x<count> or s2)")
    return count, stride


def _finish(ops, *, base_cycles=0, instructions=None, exit_code=0,
            console=(), spm_counts=(0,) * 8, spm_size=0):
    op_counts = [0] * 8
    for value in ops:
        op_counts[value & 7] += 1
    if instructions is None:
        instructions = op_counts[TAG_FETCH] or len(ops)
    return Trace(ops=ops, op_counts=tuple(op_counts),
                 spm_counts=tuple(spm_counts), base_cycles=base_cycles,
                 instructions=instructions, exit_code=exit_code,
                 console=tuple(console), spm_size=spm_size)


# -- the native exchange format ----------------------------------------------

def _parse_repro(lines):
    meta = {"base_cycles": 0, "instructions": None, "exit_code": 0,
            "spm_size": 0}
    spm_counts = [0] * 8
    console = []
    ops = array("Q")
    saw_header = False
    for lineno, raw in lines:
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line[1:].strip().split(None, 1)
            if not parts:
                continue
            key, value = parts[0], (parts[1] if len(parts) > 1 else "")
            if key == "repro-trace":
                if value.split() and value.split()[0] not in _READ_VERSIONS:
                    raise TraceFormatError(
                        f"line {lineno}: unsupported trace text version "
                        f"{value!r} (this reader speaks "
                        f"{', '.join(_READ_VERSIONS)})")
                saw_header = True
            elif key in ("base_cycles", "instructions", "exit_code",
                         "spm_size"):
                try:
                    meta[key] = int(value)
                except ValueError:
                    raise TraceFormatError(
                        f"line {lineno}: bad {key} value "
                        f"{value!r}") from None
            elif key == "spm_counts":
                fields = value.split()
                if len(fields) != 8:
                    raise TraceFormatError(
                        f"line {lineno}: spm_counts needs 8 fields, "
                        f"got {len(fields)}")
                try:
                    spm_counts = [int(field) for field in fields]
                except ValueError:
                    raise TraceFormatError(
                        f"line {lineno}: bad spm_counts "
                        f"{value!r}") from None
            elif key == "console":
                try:
                    console.append(json.loads(value))
                except ValueError:
                    raise TraceFormatError(
                        f"line {lineno}: bad console entry "
                        f"{value!r}") from None
            # Unknown comment keys are ignored (forward compatibility).
            continue
        if not saw_header:
            raise TraceFormatError(
                f"line {lineno}: record before the '# repro-trace' header")
        fields = line.split()
        if not 2 <= len(fields) <= 4:
            raise TraceFormatError(
                f"line {lineno}: expected '<kind> <addr> [x<count>] "
                f"[s2]', got {line!r}")
        tag = _KIND_TAGS.get(fields[0])
        if tag is None:
            raise TraceFormatError(
                f"line {lineno}: unknown access kind {fields[0]!r}")
        value = (_parse_addr(fields[1], lineno) << 3) | tag
        count, stride = _parse_run(fields[2:], lineno)
        if count == 1:
            ops.append(value)
        elif stride:
            if (value >> 3) + 2 * (count - 1) > _MAX_ADDR:
                raise TraceFormatError(
                    f"line {lineno}: strided run ends out of range")
            ops.extend(range(value, value + count * 16, 16))
        else:
            ops.extend([value] * count)
    if not saw_header:
        raise TraceFormatError("missing '# repro-trace' header")
    return _finish(ops, base_cycles=meta["base_cycles"],
                   instructions=meta["instructions"],
                   exit_code=meta["exit_code"], console=console,
                   spm_counts=spm_counts, spm_size=meta["spm_size"])


# -- foreign formats ----------------------------------------------------------

def _parse_pin(lines):
    """``<ip>: <R|W> <addr> [size]`` pinatrace-style records."""
    ops = array("Q")
    fetches = 0
    last_ip = None
    for lineno, raw in lines:
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("//"):
            continue
        head, sep, rest = line.partition(":")
        if not sep:
            raise TraceFormatError(
                f"line {lineno}: expected '<ip>: <R|W> <addr>', "
                f"got {line!r}")
        ip = _parse_addr(head.strip(), lineno)
        fields = rest.split()
        if len(fields) not in (2, 3):
            raise TraceFormatError(
                f"line {lineno}: expected '<R|W> <addr> [size]', "
                f"got {rest.strip()!r}")
        kind = fields[0].upper()
        if kind not in ("R", "W"):
            raise TraceFormatError(
                f"line {lineno}: unknown access kind {fields[0]!r} "
                "(expected R or W)")
        addr = _parse_addr(fields[1], lineno)
        width = _parse_width(fields[2], lineno) if len(fields) == 3 else 4
        if ip != last_ip:
            ops.append((ip << 3) | TAG_FETCH)
            fetches += 1
            last_ip = ip
        tags = READ_TAGS if kind == "R" else WRITE_TAGS
        ops.append((addr << 3) | tags[width])
    return _finish(ops, instructions=fetches or None)


def _parse_predicmem(lines):
    """``ip,addr`` CSV records (PredicMem23-style memory-access streams)."""
    ops = array("Q")
    fetches = 0
    last_ip = None
    for lineno, raw in lines:
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("//"):
            continue
        fields = [f for f in line.replace(";", ",").split(",") if f.strip()]
        if len(fields) != 2:
            raise TraceFormatError(
                f"line {lineno}: expected '<ip>,<addr>', got {line!r}")
        ip = _parse_addr(fields[0].strip(), lineno)
        addr = _parse_addr(fields[1].strip(), lineno)
        if ip != last_ip:
            ops.append((ip << 3) | TAG_FETCH)
            fetches += 1
            last_ip = ip
        ops.append((addr << 3) | READ_TAGS[4])
    return _finish(ops, instructions=fetches or None)


_PARSERS = {"repro": _parse_repro, "pin": _parse_pin,
            "predicmem": _parse_predicmem}


def _sniff(first_line: str) -> str:
    line = first_line.strip()
    if line.startswith("#"):
        if line[1:].strip().startswith("repro-trace"):
            return "repro"
        raise TraceFormatError(
            "cannot auto-detect trace format from leading comment "
            f"{line!r}; pass fmt= explicitly")
    if ":" in line:
        return "pin"
    if "," in line or ";" in line:
        return "predicmem"
    raise TraceFormatError(
        f"cannot auto-detect trace format from first line {line!r}; "
        "expected a '# repro-trace' header, '<ip>: <R|W> <addr>' or "
        "'<ip>,<addr>' records")


def parse_trace(lines, fmt: str = "auto") -> Trace:
    """Parse an iterable of text lines into a :class:`Trace`."""
    if fmt not in ("auto",) and fmt not in _PARSERS:
        raise TraceFormatError(
            f"unknown trace format {fmt!r}; "
            f"expected one of {sorted(_PARSERS)} or 'auto'")
    numbered = []
    for lineno, raw in enumerate(lines, start=1):
        numbered.append((lineno, raw))
    stripped = [(n, line) for n, line in numbered if line.strip()]
    if not stripped:
        raise TraceFormatError("empty trace input")
    if fmt == "auto":
        fmt = _sniff(stripped[0][1])
    return _PARSERS[fmt](numbered)


def load_trace(path, fmt: str = "auto") -> Trace:
    """Read *path* (plain text, or gzip when it ends in ``.gz``)."""
    opener = gzip.open if str(path).endswith(".gz") else open
    try:
        with opener(path, "rt") as handle:
            return parse_trace(handle, fmt)
    except (OSError, UnicodeDecodeError, EOFError) as error:
        raise TraceFormatError(f"cannot read trace {path}: {error}") \
            from error


def dump_trace(trace: Trace, handle) -> None:
    """Write *trace* in the native text format to a file object.

    Everything a :class:`Trace` holds is preserved, so
    ``parse_trace(...)`` of the output reconstructs an identical trace
    (the round-trip property the ingestion tests pin down).  Records
    use the version-3 run form: one line per run of the trace's
    run-length encoding.
    """
    write = handle.write
    write(f"# repro-trace {TEXT_VERSION}\n")
    write(f"# base_cycles {trace.base_cycles}\n")
    write(f"# instructions {trace.instructions}\n")
    write(f"# exit_code {trace.exit_code}\n")
    write(f"# spm_size {trace.spm_size}\n")
    write("# spm_counts " + " ".join(
        str(count) for count in trace.spm_counts) + "\n")
    for entry in trace.console:
        write(f"# console {json.dumps(entry)}\n")
    kinds = _TAG_KINDS
    for value, count, stride in trace.iter_runs():
        head = f"{kinds[value & 7]} {value >> 3:#x}"
        if count == 1:
            write(head + "\n")
        elif stride:
            write(f"{head} x{count} s2\n")
        else:
            write(f"{head} x{count}\n")


def save_trace(trace: Trace, path) -> None:
    """Write *trace* to *path* (gzip-compressed when it ends in ``.gz``)."""
    opener = gzip.open if str(path).endswith(".gz") else open
    with opener(path, "wt") as handle:
        dump_trace(trace, handle)
