"""Instruction-set simulation (the ARMulator role in the paper's Figure 1)."""

from .simulator import MemoryFault, SimError, SimResult, Simulator, simulate
from .profile import ObjectProfile, ProgramProfile, build_profile

__all__ = [
    "MemoryFault", "SimError", "SimResult", "Simulator", "simulate",
    "ObjectProfile", "ProgramProfile", "build_profile",
]
