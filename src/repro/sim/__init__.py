"""Instruction-set simulation (the ARMulator role in the paper's Figure 1).

Two complementary paths produce bit-identical results:

* **execute** — the compiled flat-array engine (:mod:`repro.sim.engine`)
  runs the program under one memory configuration;
* **replay** — the engine records the config-independent access trace
  once per image (:mod:`repro.sim.trace`) and the replay kernels
  (:mod:`repro.sim.replay`) re-price it under any number of
  configurations, including whole size sweeps in a single pass.
"""

from .simulator import MemoryFault, SimError, SimResult, Simulator, simulate
from .profile import ObjectProfile, ProgramProfile, build_profile
from .kernels import active_kernel, have_numpy, set_kernel
from .replay import (
    grid_geometry,
    replay,
    replay_grid,
    replay_misses,
    replay_sweep,
    sweep_geometry,
)
from .trace import (
    Trace,
    clear_trace_caches,
    record_trace,
    set_trace_cache_dir,
    trace_counters,
    trace_for,
)
from .ingest import TraceFormatError, dump_trace, load_trace, parse_trace

__all__ = [
    "MemoryFault", "SimError", "SimResult", "Simulator", "simulate",
    "ObjectProfile", "ProgramProfile", "build_profile",
    "active_kernel", "have_numpy", "set_kernel",
    "grid_geometry", "replay", "replay_grid", "replay_misses",
    "replay_sweep", "sweep_geometry",
    "Trace", "clear_trace_caches", "record_trace", "set_trace_cache_dir",
    "trace_counters", "trace_for",
    "TraceFormatError", "dump_trace", "load_trace", "parse_trace",
]
