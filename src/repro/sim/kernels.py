"""Vectorised (numpy) replay kernels behind a runtime-selected backend.

The scalar kernels in :mod:`repro.sim.replay` walk the packed
``addr << 3 | tag`` stream one access at a time.  For direct-mapped LRU
pipelines — the paper's shapes, and the hot rows of
``BENCH_simulator.json`` — the same counters can be computed from whole-
trace vector operations instead:

* the stream is viewed in bulk as a ``uint64`` array (zero-copy over the
  trace's ``array('Q')`` buffer) and split once into tag / address /
  block-id vectors;
* residency in a direct-mapped cache follows from the *Mattson carry*:
  an access hits iff the most recent **allocating** access to its set
  named the same block.  That previous-allocating-access relation is a
  stable sort by set index plus a forward-fill of allocating positions —
  no sequential tag array at all (:func:`_dm_hits`); set indices are
  narrowed to ``uint16`` so the stable sort takes numpy's 2-pass radix
  path;
* multi-level pipelines chain the same kernel with per-level pending
  masks: fetches/reads that hit stop descending, writes (write-through,
  no allocate) probe every data-path level unconditionally;
* the same-block shortcut the scalar sweep kernel uses becomes a
  vectorised prefilter: runs of consecutive same-block accesses are
  guaranteed hits at every geometry and drop out before the per-set
  grouping, which is what makes size sweeps cheap;
* everything about a probe stream that does not depend on the set
  count — kind masks, block ids, the shortcut survivors —
  is reduced once per ``(trace, line size, stream)`` and memoised on
  the trace (:func:`stream_prep`), so replaying the same trace under
  many configurations (the workflow sweeps, the benches) pays only the
  per-set grouping per point.

Backend selection is automatic (numpy when importable) with two
overrides, checked in order: :func:`set_kernel` (the CLI's ``--kernel``)
and the ``REPRO_REPLAY_KERNEL`` environment variable (``scalar`` |
``numpy`` | ``auto``).  Without numpy the scalar kernels serve
everything, bit-identically — the differential tests in
``tests/test_kernels.py`` pin the two backends against each other over
every committed hierarchy shape.
"""

from __future__ import annotations

import os
from array import array

try:  # optional dependency: everything falls back to the scalar kernels
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the numpy-less CI job
    _np = None

#: Valid kernel names for the override knobs.
KERNEL_CHOICES = ("auto", "scalar", "numpy")

#: Runtime override installed by :func:`set_kernel` (None = not set).
_OVERRIDE = None


def have_numpy() -> bool:
    """True when the numpy backend can serve at all."""
    return _np is not None


def set_kernel(name):
    """Install (or with ``None``/``"auto"`` clear) the kernel override.

    Takes precedence over ``REPRO_REPLAY_KERNEL``.  Requesting ``numpy``
    without numpy installed is an error — silent fallback is reserved
    for ``auto``.
    """
    global _OVERRIDE
    if name is None or name == "auto":
        _OVERRIDE = None
        return
    if name not in ("scalar", "numpy"):
        raise ValueError(
            f"unknown replay kernel {name!r}; expected one of "
            f"{KERNEL_CHOICES}")
    if name == "numpy" and _np is None:
        raise RuntimeError(
            "replay kernel 'numpy' requested but numpy is not installed")
    _OVERRIDE = name


def active_kernel() -> str:
    """The backend replay dispatches to right now: scalar or numpy."""
    if _OVERRIDE is not None:
        return _OVERRIDE
    env = os.environ.get("REPRO_REPLAY_KERNEL", "auto")
    if env == "scalar":
        return "scalar"
    if env == "numpy":
        if _np is None:
            raise RuntimeError(
                "REPRO_REPLAY_KERNEL=numpy but numpy is not installed "
                "(use 'auto' for graceful fallback)")
        return "numpy"
    if env not in ("", "auto"):
        raise RuntimeError(
            f"bad REPRO_REPLAY_KERNEL value {env!r}; expected one of "
            f"{KERNEL_CHOICES}")
    return "numpy" if _np is not None else "scalar"


# -- bulk views of the packed stream -----------------------------------------

def ops_view(ops):
    """Zero-copy ``uint64`` view of a trace's packed ``array('Q')``."""
    return _np.frombuffer(ops, dtype=_np.uint64)


def split_stream(values):
    """``(tags, addrs)`` as int64 vectors from packed uint64 values."""
    tags = (values & _np.uint64(7)).astype(_np.int64)
    addrs = (values >> _np.uint64(3)).astype(_np.int64)
    return tags, addrs


# -- the direct-mapped carry kernel ------------------------------------------

def _dm_hits(blocks, sets, alloc):
    """Hit mask of a direct-mapped probe stream, in stream order.

    An access hits iff the most recent *allocating* access to the same
    set named the same block (writes probe with ``alloc`` False: they
    neither allocate nor, at associativity 1, move anything; ``alloc``
    None means every access allocates).  Computed by stably sorting on
    the set index and forward-filling the last allocating position; a
    carried position from before the set's first access (i.e. from
    another set) is ruled out by the set-equality check against the
    carried position itself.
    """
    n = blocks.size
    if n == 0:
        return _np.zeros(0, dtype=bool)
    order = _np.argsort(sets, kind="stable")
    b = blocks[order]
    s = sets[order]
    hit_sorted = _np.empty(n, dtype=bool)
    hit_sorted[0] = False
    if alloc is None:
        # Every access allocates: the predecessor within the group is
        # simply the previous sorted element.
        _np.equal(s[1:], s[:-1], out=hit_sorted[1:])
        hit_sorted[1:] &= b[1:] == b[:-1]
    else:
        idx = _np.arange(n, dtype=_np.int32)
        fill = _np.maximum.accumulate(_np.where(alloc[order], idx, -1))
        raw = fill[:-1]
        prev = _np.maximum(raw, 0)
        hit_sorted[1:] = (raw >= 0) & (s[prev] == s[1:]) & (b[prev] == b[1:])
    hits = _np.empty(n, dtype=bool)
    hits[order] = hit_sorted
    return hits


def _set_index(rb, nsets):
    """Set indices of the rest blocks, narrowed for the radix sort."""
    if nsets & (nsets - 1) == 0:
        sets = rb & (nsets - 1)
    else:
        sets = rb % nsets
    if nsets <= 1 << 16:
        return sets.astype(_np.uint16)
    return sets


def _split(values, memo):
    """``(addrs, is_fetch, is_read, is_write)``, memoised per trace."""
    got = memo.get("split") if memo is not None else None
    if got is None:
        tags = (values & _np.uint64(7)).astype(_np.int64)
        addrs = (values >> _np.uint64(3)).astype(_np.int64)
        got = (addrs,
               (tags == 0) | (tags == 7),
               (tags >= 1) & (tags <= 3),
               (tags >= 4) & (tags < 7))
        if memo is not None:
            memo["split"] = got
    return got


def stream_prep(values, line, kind, memo=None):
    """Set-count-independent reduction of one probe stream, memoised.

    *kind* picks which accesses probe the cache: ``"unified"``
    (everything), ``"fetch"`` (instruction side only — every probe
    allocates) or ``"data"`` (reads + writes).  The returned dict
    carries the stream's block ids, allocation mask, the same-block
    shortcut (guaranteed hits at any geometry) with per-kind hit
    counters, and the shortcut survivors (``rest``) that still need the
    per-set grouping — everything replays over the same trace can
    share, whatever the set count.
    """
    key = ("prep", line, kind)
    got = memo.get(key) if memo is not None else None
    if got is not None:
        return got
    addrs, is_fetch, is_read, is_write = _split(values, memo)
    shift = line.bit_length() - 1
    if kind == "unified":
        sel = None
        blocks = addrs >> shift
        alloc = ~is_write
        kind_masks = (is_fetch, is_read, is_write)
    elif kind == "fetch":
        sel = _np.flatnonzero(is_fetch)
        blocks = addrs[sel] >> shift
        alloc = None
        kind_masks = (True, None, None)
    else:  # "data"
        sel = _np.flatnonzero(is_read | is_write)
        blocks = addrs[sel] >> shift
        w = is_write[sel]
        alloc = ~w
        kind_masks = (None, ~w, w)
    n = blocks.size
    if n == 0:
        short = _np.zeros(0, dtype=bool)
    elif alloc is None:
        short = _np.empty(n, dtype=bool)
        short[0] = False
        _np.equal(blocks[1:], blocks[:-1], out=short[1:])
    else:
        idx = _np.arange(n, dtype=_np.int64)
        fill = _np.maximum.accumulate(_np.where(alloc, idx, -1))
        prev = _np.empty(n, dtype=_np.int64)
        prev[0] = -1
        prev[1:] = fill[:-1]
        short = (prev >= 0) & (blocks[_np.maximum(prev, 0)] == blocks)
    rest = _np.flatnonzero(~short)
    rb = blocks[rest]
    if rb.size and int(rb.max()) < (1 << 31):
        rb = rb.astype(_np.int32)  # cheaper gathers in the radix walk
    totals = []
    short_hits = []
    rest_masks = []
    for mask in kind_masks:
        if mask is None:
            totals.append(0)
            short_hits.append(0)
            rest_masks.append(None)
        elif mask is True:  # the whole stream is this kind
            totals.append(n)
            short_hits.append(int(_np.count_nonzero(short)))
            rest_masks.append(True)
        else:
            totals.append(int(_np.count_nonzero(mask)))
            short_hits.append(int(_np.count_nonzero(short & mask)))
            rest_masks.append(mask[rest])
    prep = {
        "sel": sel,
        "alloc": alloc,
        "short": short,
        "rest": rest,
        "rb": rb,
        "ra": None if alloc is None else alloc[rest],
        "totals": tuple(totals),
        "short_hits": tuple(short_hits),
        "rest_masks": tuple(rest_masks),
    }
    if memo is not None:
        memo[key] = prep
    return prep


def prep_counts(prep, nsets, need_hits=False):
    """``(counts, hits)`` of one DM geometry from a prepared stream.

    Only the per-set grouping of the shortcut survivors runs here; the
    6-entry fast-counter list merges the shortcut's per-kind hits with
    the grouped ones.  *hits* (the full per-probe mask, for pending
    updates in level chains) is built only when *need_hits* is set.
    """
    rb = prep["rb"]
    hits_rest = _dm_hits(rb, _set_index(rb, nsets), prep["ra"])
    counts = [0, 0, 0, 0, 0, 0]
    for pos, base in enumerate((0, 2, 4)):
        total = prep["totals"][pos]
        if not total:
            continue
        mask = prep["rest_masks"][pos]
        kind_hits = prep["short_hits"][pos] + int(_np.count_nonzero(
            hits_rest if mask is True else hits_rest & mask))
        counts[base] = kind_hits
        counts[base + 1] = total - kind_hits
    if not need_hits:
        return counts, None
    hits = prep["short"].copy()
    hits[prep["rest"]] = hits_rest
    return counts, hits


def dm_probe_counts(blocks, nsets, alloc, kind_masks):
    """Counters + hit mask of one DM cache over an ad-hoc probe stream.

    The un-memoised path for chain levels whose probe stream depends on
    shallower hits.  *kind_masks* is ``(fetch_mask, read_mask,
    write_mask)`` over the stream (None = that kind never probes).
    The same-block shortcut is applied first; only the survivors pay
    the per-set grouping sort of :func:`_dm_hits`.  Returns
    ``(counts, hits)``.
    """
    n = blocks.size
    counts = [0, 0, 0, 0, 0, 0]
    if n == 0:
        return counts, _np.zeros(0, dtype=bool)
    idx = _np.arange(n, dtype=_np.int64)
    fill = _np.maximum.accumulate(_np.where(alloc, idx, -1))
    prev = _np.empty(n, dtype=_np.int64)
    prev[0] = -1
    prev[1:] = fill[:-1]
    short = (prev >= 0) & (blocks[_np.maximum(prev, 0)] == blocks)
    hits = short.copy()
    rest = _np.flatnonzero(~short)
    if rest.size:
        rb = blocks[rest]
        hits[rest] = _dm_hits(rb, _set_index(rb, nsets), alloc[rest])
    for base, mask in zip((0, 2, 4), kind_masks):
        if mask is None:
            continue
        total = int(_np.count_nonzero(mask))
        if not total:
            continue
        kind_hits = int(_np.count_nonzero(hits & mask))
        counts[base] = kind_hits
        counts[base + 1] = total - kind_hits
    return counts, hits


def dm_chain_counts(values, caches, memo=None):
    """Per-cache fast counters of a direct-mapped level pipeline.

    *caches* is a sequence of ``(line_size, num_sets, on_fetch,
    on_data)`` in physical (outermost-first) order.  Fetches and reads
    descend only while they miss; writes probe every data-path cache
    regardless (write-through keeps deeper tags informed).  The first
    cache on each path sees a config-independent probe stream and is
    served from the memoised :func:`stream_prep`; deeper levels build
    their streams from the pending masks.  Returns one 6-entry counter
    list per cache, bit-identical to the scalar touch closures.
    """
    addrs, is_fetch, is_read, is_write = _split(values, memo)
    last = len(caches) - 1
    fetch_virgin = read_virgin = True
    fetch_pending = read_pending = None
    out = []
    for pos, (line, nsets, on_fetch, on_data) in enumerate(caches):
        need_hits = pos != last
        virgin = (not on_fetch or fetch_virgin) \
            and (not on_data or read_virgin)
        if virgin:
            kind = ("unified" if on_fetch and on_data
                    else "fetch" if on_fetch else "data")
            prep = stream_prep(values, line, kind, memo)
            counts, hits = prep_counts(prep, nsets, need_hits=need_hits)
            out.append(counts)
            if need_hits:
                sel = prep["sel"]
                if fetch_pending is None:
                    fetch_pending = is_fetch.copy()
                if read_pending is None:
                    read_pending = is_read.copy()
                if sel is None:
                    if on_fetch:
                        fetch_pending &= ~hits
                    if on_data:
                        read_pending &= ~hits
                else:
                    if on_fetch:
                        fetch_pending[sel] = ~hits
                    if on_data:
                        read_pending[sel] &= ~hits
        else:
            if fetch_pending is None:
                fetch_pending = is_fetch.copy()
            if read_pending is None:
                read_pending = is_read.copy()
            probe = None
            if on_fetch:
                probe = fetch_pending.copy()
            if on_data:
                dprobe = read_pending | is_write
                probe = dprobe if probe is None else (probe | dprobe)
            idxs = _np.flatnonzero(probe)
            if not idxs.size:
                out.append([0, 0, 0, 0, 0, 0])
                continue
            blocks = addrs[idxs] >> (line.bit_length() - 1)
            alloc = ~is_write[idxs]
            kind_masks = (
                fetch_pending[idxs] if on_fetch else None,
                read_pending[idxs] if on_data else None,
                is_write[idxs] if on_data else None,
            )
            counts, hits = dm_probe_counts(blocks, nsets, alloc,
                                           kind_masks)
            out.append(counts)
            if need_hits:
                if on_fetch:
                    fetch_pending[idxs[hits & kind_masks[0]]] = False
                if on_data:
                    read_pending[idxs[hits & kind_masks[1]]] = False
        if on_fetch:
            fetch_virgin = False
        if on_data:
            read_virgin = False
    return out


def dm_sweep_counts(values, line, unified, nsets_list, memo=None):
    """One 6-entry counter list per set count, in one pass.

    The multi-size generalisation: the stream is reduced once (and
    memoised across calls) by :func:`stream_prep`; only the shortcut
    survivors pay a per-``nsets`` grouping.  Matches the scalar
    ``_sweep_walk`` tables bit for bit, writes included (they probe
    without allocating, exactly the write-recency contract the
    regression tests pin down).

    When the requested set counts form a divisibility chain (the usual
    power-of-two sweep), direct-mapped inclusion — a hit at ``k`` sets
    stays a hit at any multiple of ``k``, because the same-set window
    between an access and its previous same-block allocation only
    shrinks as sets split — lets each level's hits be deleted from the
    stream before the next level runs: their counts are carried
    forward and every successive grouping sorts a smaller array.
    Deleting a hit is sound because the access it matched (same block,
    same set at every finer geometry) remains the most recent
    allocation for anything that would have matched the deleted one.
    """
    prep = stream_prep(values, line, "unified" if unified else "fetch",
                       memo)
    uniq = sorted(set(nsets_list))
    chain = all(b % a == 0 for a, b in zip(uniq, uniq[1:]))
    if not chain or len(uniq) < 2:
        return [prep_counts(prep, nsets)[0] for nsets in nsets_list]
    totals = prep["totals"]
    short_hits = prep["short_hits"]
    b = prep["rb"]
    a = prep["ra"]
    masks = list(prep["rest_masks"])
    carry = [0, 0, 0]
    by_nsets = {}
    for nsets in uniq:
        hits = _dm_hits(b, _set_index(b, nsets), a)
        nhits = int(_np.count_nonzero(hits))
        counts = [0, 0, 0, 0, 0, 0]
        for ki, base in enumerate((0, 2, 4)):
            if not totals[ki]:
                continue
            m = masks[ki]
            kh = carry[ki] + (nhits if m is True
                              else int(_np.count_nonzero(hits & m)))
            counts[base] = short_hits[ki] + kh
            counts[base + 1] = totals[ki] - counts[base]
        by_nsets[nsets] = counts
        if nsets != uniq[-1] and nhits:
            keep = ~hits
            for ki in range(3):
                m = masks[ki]
                if m is True:
                    carry[ki] += nhits
                elif m is not None:
                    carry[ki] += int(_np.count_nonzero(hits & m))
                    masks[ki] = m[keep]
            b = b[keep]
            if a is not None:
                a = a[keep]
    return [list(by_nsets[nsets]) for nsets in nsets_list]


# -- run-length expansion -----------------------------------------------------

def expand_runs(base, heads, packed):
    """Decode the trace RLE form back into a flat ``array('Q')``.

    *heads* holds each run's ``int32`` delta from the previous run's
    first packed op (*base* anchors the first), *packed* holds
    ``count << 1 | (stride != 0)`` as ``uint32`` with a non-zero stride
    meaning the address advances 2 bytes per repeat (16 in packed
    units).
    """
    h = _np.frombuffer(heads, dtype=_np.int32).astype(_np.int64)
    p = _np.frombuffer(packed, dtype=_np.uint32).astype(_np.int64)
    firsts = (_np.cumsum(h) + base).astype(_np.uint64)
    counts = p >> 1
    strides = _np.where((p & 1).astype(bool), 16, 0).astype(_np.uint64)
    total = int(counts.sum())
    starts = _np.cumsum(counts) - counts
    offsets = (_np.arange(total, dtype=_np.int64)
               - _np.repeat(starts, counts)).astype(_np.uint64)
    ops = _np.repeat(firsts, counts) \
        + _np.repeat(strides, counts) * offsets
    return array("Q", ops.tobytes())
