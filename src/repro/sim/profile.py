"""Aggregation of raw simulation profiles to per-object access counts.

The paper's knapsack benefit function needs, per memory object, how often
it is accessed during a typical run: instruction fetches per function and
data accesses per global.  The simulator records address-level counts; this
module folds them onto the placed objects of the profiled image.

Profiles are keyed by object *name*, so a profile taken on one layout (for
example the uncached baseline) remains valid for any other placement of the
same program — just as the paper profiles once and then explores many
scratchpad capacities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..link.image import Image
from .simulator import SimResult


@dataclass
class ObjectProfile:
    """Access statistics for one memory object."""

    name: str
    kind: str                 # "code" | "data"
    size: int
    #: instruction fetches (code) or load/store accesses (data).
    accesses: int = 0
    #: access breakdown by width in bytes (data objects).
    by_width: dict = field(default_factory=dict)


class ProgramProfile:
    """Per-object access counts for one program run."""

    def __init__(self, objects):
        self.objects = {p.name: p for p in objects}

    def __getitem__(self, name) -> ObjectProfile:
        return self.objects[name]

    def __contains__(self, name):
        return name in self.objects

    def __iter__(self):
        return iter(self.objects.values())

    def total_accesses(self) -> int:
        return sum(p.accesses for p in self.objects.values())


def build_profile(image: Image, result: SimResult) -> ProgramProfile:
    """Fold a profiled :class:`SimResult` onto *image*'s objects."""
    if not result.fetch_counts and not result.data_counts:
        raise ValueError("simulation was not run with profile=True")

    profiles = [
        ObjectProfile(name=obj.name, kind=obj.kind, size=obj.size)
        for obj in image.objects
    ]
    by_name = {p.name: p for p in profiles}

    # Sort object extents once; both count dicts are then folded by scan.
    extents = sorted(
        ((obj.base, obj.end, obj.name) for obj in image.objects))

    def owner(addr):
        # Linear-probe cache: accesses cluster heavily by object.
        for base, end, name in extents:
            if base <= addr < end:
                return name
        return None

    for addr, count in result.fetch_counts.items():
        name = owner(addr)
        if name is not None:
            by_name[name].accesses += count

    for addr, count in result.data_counts.items():
        name = owner(addr)
        if name is not None:
            prof = by_name[name]
            prof.accesses += count
    return ProgramProfile(profiles)
