"""Flat-array threaded-code execution engine for the T16 simulator.

:class:`~repro.sim.simulator.Simulator` keeps two interpreters over one
machine model:

* the **recording** loop in ``simulator.py`` — an instruction dispatch
  over decoded :class:`~repro.isa.instruction.Instr` objects that can
  count per-address fetches, data accesses and misses (``profile=True``
  / ``record_misses=True`` runs);
* this module's **fast engine**, used for every plain timing run.

The fast engine pre-compiles each decoded instruction into a specialized
zero-argument *step closure* at predecode time (threaded-code style).
Everything knowable at compile time is folded into the closure as a
constant: the fall-through pc, immediate operands, the MOVI flag
results, PC-relative literal addresses, the instruction's own icache set
index and block tag.  Step closures are stored in two flat arrays (one
for scratchpad-resident code at the bottom of the address space, one
for main-memory code starting at :data:`~repro.memory.regions.
MAIN_BASE`), so dispatch is a list index, not a dict probe.

Cycle accounting goes through a one-element list (``box``) shared by all
closures; memory costs come from the hierarchy's fast path
(:meth:`~repro.memory.hierarchy.MemoryHierarchy.fetch_fast_factory` /
:meth:`~repro.memory.hierarchy.MemoryHierarchy.data_fast_ops`), which
returns plain ints from precomputed SPM/main cost tables and flat-list
cache sets.  Results — cycles, instruction counts, console output, exit
codes, per-level cache hit/miss counters — are bit-identical to the
recording loop (asserted by ``tests/test_sim_fastpath.py`` over every
benchmark and hierarchy shape).

Flags live in a four-element list ``fl`` with a truthiness encoding
private to the engine: N and V hold ``result & 0x80000000`` (so either
0 or the sign bit — comparable with ``==`` for GE/LT), Z and C hold
0/1 ints or bools (C is used arithmetically by ADC/SBC, where Python's
``True == 1`` keeps the maths exact).
"""

from __future__ import annotations

from struct import Struct

from ..isa.opcodes import Cond, Op
from ..memory.regions import MAIN_BASE, STACK_TOP
from ..memory.timing import BRANCH_REFILL_CYCLES, instruction_extra_cycles

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000

_U32 = Struct("<I")
_U16 = Struct("<H")
_S16 = Struct("<h")


class EngineError(Exception):
    """Raised when the engine cannot compile an instruction."""


def _cond_test(cond, fl):
    """Zero-arg truth test over the engine's flag encoding, or ``None``
    for an always-taken condition."""
    if cond is Cond.EQ:
        return lambda: fl[1]
    if cond is Cond.NE:
        return lambda: not fl[1]
    if cond is Cond.HS:
        return lambda: fl[2]
    if cond is Cond.LO:
        return lambda: not fl[2]
    if cond is Cond.MI:
        return lambda: fl[0]
    if cond is Cond.PL:
        return lambda: not fl[0]
    if cond is Cond.VS:
        return lambda: fl[3]
    if cond is Cond.VC:
        return lambda: not fl[3]
    if cond is Cond.HI:
        return lambda: fl[2] and not fl[1]
    if cond is Cond.LS:
        return lambda: not fl[2] or fl[1]
    if cond is Cond.GE:
        return lambda: fl[0] == fl[3]
    if cond is Cond.LT:
        return lambda: fl[0] != fl[3]
    if cond is Cond.GT:
        return lambda: not fl[1] and fl[0] == fl[3]
    if cond is Cond.LE:
        return lambda: fl[1] or fl[0] != fl[3]
    return None  # AL


class CompiledProgram:
    """The step-closure arrays plus the state cells they share."""

    __slots__ = ("spm_steps", "main_steps", "box", "console", "exit_box",
                 "flags", "sim_error")

    def __init__(self, spm_steps, main_steps, box, console, exit_box,
                 flags, sim_error):
        self.spm_steps = spm_steps
        self.main_steps = main_steps
        self.box = box
        self.console = console
        self.exit_box = exit_box
        self.flags = flags
        self.sim_error = sim_error

    def run(self, pc, max_steps):
        """Execute from *pc*; returns ``(cycles, instructions, exit)``."""
        spm_steps = self.spm_steps
        main_steps = self.main_steps
        spm_top = len(spm_steps)
        main_top = len(main_steps)
        box = self.box
        box[0] = 0
        del self.console[:]
        self.exit_box[0] = None
        main_base = MAIN_BASE
        steps = 0
        while steps < max_steps:
            if pc >= main_base:
                index = pc - main_base
                step = main_steps[index] if index < main_top else None
            else:
                step = spm_steps[pc] if pc < spm_top else None
            if step is None:
                raise self.sim_error(f"pc escaped code objects: {pc:#x}")
            steps += 1
            nxt = step()
            if nxt is None:
                return box[0], steps, self.exit_box[0]
            pc = nxt
        raise self.sim_error(
            f"exceeded {max_steps} steps (runaway program?)")


def compile_program(code, ram, hierarchy, regs, spm_limit, sim_error,
                    mem_fault):
    """Compile decoded instructions into a :class:`CompiledProgram`.

    *code* maps instruction address -> Instr; *ram*, *regs* and the
    hierarchy's tag arrays are shared with the owning Simulator, so
    engine runs and direct state inspection stay coherent.
    """
    box = [0]
    console = []
    exit_box = [None]
    fl = [0, 0, 0, 0]  # n, z, c, v in the engine encoding
    make_fetch = hierarchy.fetch_fast_factory()
    dread, dwrite = hierarchy.data_fast_ops()
    refill = BRANCH_REFILL_CYCLES
    mul_extra = instruction_extra_cycles(Op.MUL)
    swi_extra = instruction_extra_cycles(Op.SWI)
    u32, p32 = _U32.unpack_from, _U32.pack_into
    u16, p16 = _U16.unpack_from, _U16.pack_into
    s16 = _S16.unpack_from
    main_base, stack_top = MAIN_BASE, STACK_TOP

    # -- shared data-access helpers (check, cycles, bytes) -------------------

    def load4(addr):
        if addr % 4:
            raise mem_fault(f"unaligned 4-byte access at {addr:#x}")
        if addr >= spm_limit and (addr < main_base
                                  or addr + 4 > stack_top):
            raise mem_fault(f"access to unmapped address {addr:#x}")
        box[0] += dread(addr, 4)
        return u32(ram, addr)[0]

    def load2(addr):
        if addr % 2:
            raise mem_fault(f"unaligned 2-byte access at {addr:#x}")
        if addr >= spm_limit and (addr < main_base
                                  or addr + 2 > stack_top):
            raise mem_fault(f"access to unmapped address {addr:#x}")
        box[0] += dread(addr, 2)
        return u16(ram, addr)[0]

    def load2s(addr):
        if addr % 2:
            raise mem_fault(f"unaligned 2-byte access at {addr:#x}")
        if addr >= spm_limit and (addr < main_base
                                  or addr + 2 > stack_top):
            raise mem_fault(f"access to unmapped address {addr:#x}")
        box[0] += dread(addr, 2)
        return s16(ram, addr)[0]

    def load1(addr):
        if addr >= spm_limit and (addr < main_base
                                  or addr + 1 > stack_top):
            raise mem_fault(f"access to unmapped address {addr:#x}")
        box[0] += dread(addr, 1)
        return ram[addr]

    def load1s(addr):
        value = load1(addr)
        return value - 0x100 if value & 0x80 else value

    def store4(addr, value):
        if addr % 4:
            raise mem_fault(f"unaligned 4-byte access at {addr:#x}")
        if addr >= spm_limit and (addr < main_base
                                  or addr + 4 > stack_top):
            raise mem_fault(f"access to unmapped address {addr:#x}")
        p32(ram, addr, value & _MASK)
        box[0] += dwrite(addr, 4)

    def store2(addr, value):
        if addr % 2:
            raise mem_fault(f"unaligned 2-byte access at {addr:#x}")
        if addr >= spm_limit and (addr < main_base
                                  or addr + 2 > stack_top):
            raise mem_fault(f"access to unmapped address {addr:#x}")
        p16(ram, addr, value & 0xFFFF)
        box[0] += dwrite(addr, 2)

    def store1(addr, value):
        if addr >= spm_limit and (addr < main_base
                                  or addr + 1 > stack_top):
            raise mem_fault(f"access to unmapped address {addr:#x}")
        ram[addr] = value & 0xFF
        box[0] += dwrite(addr, 1)

    # -- per-instruction compilation ----------------------------------------

    def build(addr, instr):  # noqa: C901 - one dispatch, many tiny bodies
        op = instr.op
        nxt = addr + instr.size
        fetch = make_fetch(addr)
        rd, rn, rm, imm = instr.rd, instr.rn, instr.rm, instr.imm

        # --- moves / immediates ---
        if op is Op.MOVI:
            n_c, z_c = imm & _SIGN, imm == 0

            def step():
                box[0] += fetch()
                regs[rd] = imm
                fl[0] = n_c
                fl[1] = z_c
                return nxt
            return step
        if op is Op.CMPI:
            def step():
                box[0] += fetch()
                a = regs[rd]
                total = a - imm
                r = total & _MASK
                fl[2] = total >= 0
                fl[3] = ((a ^ imm) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.ADDI or op is Op.ADD3:
            src = rd if op is Op.ADDI else rn

            def step():
                box[0] += fetch()
                a = regs[src]
                total = a + imm
                r = total & _MASK
                fl[2] = total > _MASK
                fl[3] = (~(a ^ imm) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                regs[rd] = r
                return nxt
            return step
        if op is Op.SUBI or op is Op.SUB3:
            src = rd if op is Op.SUBI else rn

            def step():
                box[0] += fetch()
                a = regs[src]
                total = a - imm
                r = total & _MASK
                fl[2] = total >= 0
                fl[3] = ((a ^ imm) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                regs[rd] = r
                return nxt
            return step
        if op is Op.ADDR:
            def step():
                box[0] += fetch()
                a = regs[rn]
                b = regs[rm]
                total = a + b
                r = total & _MASK
                fl[2] = total > _MASK
                fl[3] = (~(a ^ b) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                regs[rd] = r
                return nxt
            return step
        if op is Op.SUBR:
            def step():
                box[0] += fetch()
                a = regs[rn]
                b = regs[rm]
                total = a - b
                r = total & _MASK
                fl[2] = total >= 0
                fl[3] = ((a ^ b) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                regs[rd] = r
                return nxt
            return step
        if op is Op.MOVR:
            def step():
                box[0] += fetch()
                r = regs[rm]
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step

        # --- immediate shifts (shift amount is a decode constant) ---
        if op is Op.LSLI:
            if imm == 0:
                def step():
                    box[0] += fetch()
                    r = regs[rm]
                    regs[rd] = r
                    fl[0] = r & _SIGN
                    fl[1] = r == 0
                    return nxt
                return step
            carry_shift = 32 - imm

            def step():
                box[0] += fetch()
                v = regs[rm]
                fl[2] = (v >> carry_shift) & 1
                r = (v << imm) & _MASK
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.LSRI:
            if imm == 0:
                def step():
                    box[0] += fetch()
                    r = regs[rm]
                    regs[rd] = r
                    fl[0] = r & _SIGN
                    fl[1] = r == 0
                    return nxt
                return step
            carry_shift = imm - 1

            def step():
                box[0] += fetch()
                v = regs[rm]
                fl[2] = (v >> carry_shift) & 1
                r = v >> imm
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.ASRI:
            if imm == 0:
                def step():
                    box[0] += fetch()
                    v = regs[rm]
                    r = v & _MASK
                    regs[rd] = r
                    fl[0] = r & _SIGN
                    fl[1] = r == 0
                    return nxt
                return step
            carry_shift = imm - 1

            def step():
                box[0] += fetch()
                v = regs[rm]
                signed = v - 0x100000000 if v & _SIGN else v
                fl[2] = (signed >> carry_shift) & 1
                r = (signed >> imm) & _MASK
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step

        # --- two-address ALU group ---
        if op in _LOGICAL:
            combine = _LOGICAL[op]

            def step():
                box[0] += fetch()
                r = combine(regs[rd], regs[rm])
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.TST:
            def step():
                box[0] += fetch()
                r = regs[rd] & regs[rm]
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.MVN:
            def step():
                box[0] += fetch()
                r = ~regs[rm] & _MASK
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.NEG:
            def step():
                box[0] += fetch()
                b = regs[rm]
                total = -b
                r = total & _MASK
                fl[2] = total >= 0
                fl[3] = (b & r) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                regs[rd] = r
                return nxt
            return step
        if op is Op.CMP:
            def step():
                box[0] += fetch()
                a = regs[rd]
                b = regs[rm]
                total = a - b
                r = total & _MASK
                fl[2] = total >= 0
                fl[3] = ((a ^ b) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.CMN:
            def step():
                box[0] += fetch()
                a = regs[rd]
                b = regs[rm]
                total = a + b
                r = total & _MASK
                fl[2] = total > _MASK
                fl[3] = (~(a ^ b) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.ADC:
            def step():
                box[0] += fetch()
                a = regs[rd]
                b = regs[rm]
                total = a + b + (1 if fl[2] else 0)
                r = total & _MASK
                fl[2] = total > _MASK
                fl[3] = (~(a ^ b) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                regs[rd] = r
                return nxt
            return step
        if op is Op.SBC:
            def step():
                box[0] += fetch()
                a = regs[rd]
                b = regs[rm]
                total = a - b - (0 if fl[2] else 1)
                r = total & _MASK
                fl[2] = total >= 0
                fl[3] = ((a ^ b) & (a ^ r)) & _SIGN
                fl[0] = r & _SIGN
                fl[1] = r == 0
                regs[rd] = r
                return nxt
            return step
        if op is Op.MUL:
            def step():
                box[0] += fetch() + mul_extra
                r = (regs[rd] * regs[rm]) & _MASK
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step

        # --- register shifts (runtime amounts) ---
        if op is Op.LSL:
            def step():
                box[0] += fetch()
                amount = regs[rm] & 0xFF
                v = regs[rd]
                if amount == 0:
                    fl[0] = v & _SIGN
                    fl[1] = v == 0
                    return nxt
                if amount <= 32:
                    fl[2] = (v >> (32 - amount)) & 1
                    r = (v << amount) & _MASK
                else:
                    fl[2] = 0
                    r = 0
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.LSR:
            def step():
                box[0] += fetch()
                amount = regs[rm] & 0xFF
                v = regs[rd]
                if amount == 0:
                    fl[0] = v & _SIGN
                    fl[1] = v == 0
                    return nxt
                if amount <= 32:
                    fl[2] = (v >> (amount - 1)) & 1
                    r = v >> amount
                else:
                    fl[2] = 0
                    r = 0
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.ASR:
            def step():
                box[0] += fetch()
                amount = regs[rm] & 0xFF
                v = regs[rd]
                if amount == 0:
                    fl[0] = v & _SIGN
                    fl[1] = v == 0
                    return nxt
                signed = v - 0x100000000 if v & _SIGN else v
                if amount >= 32:
                    amount = 32
                fl[2] = (signed >> (amount - 1)) & 1
                r = (signed >> amount) & _MASK
                regs[rd] = r
                fl[0] = r & _SIGN
                fl[1] = r == 0
                return nxt
            return step
        if op is Op.ROR:
            def step():
                box[0] += fetch()
                amount = (regs[rm] & 0xFF) % 32
                v = regs[rd]
                if amount:
                    v = ((v >> amount) | (v << (32 - amount))) & _MASK
                    fl[2] = (v >> 31) & 1
                regs[rd] = v
                fl[0] = v & _SIGN
                fl[1] = v == 0
                return nxt
            return step

        # --- pc-relative (the address is a decode constant) ---
        if op is Op.LDRPC:
            pool = ((addr + 4) & ~3) + imm

            def step():
                box[0] += fetch()
                regs[rd] = load4(pool)
                return nxt
            return step
        if op is Op.ADDPC:
            value = (((addr + 4) & ~3) + imm) & _MASK

            def step():
                box[0] += fetch()
                regs[rd] = value
                return nxt
            return step

        # --- sp-relative ---
        if op is Op.LDRSP:
            def step():
                box[0] += fetch()
                regs[rd] = load4(regs[13] + imm)
                return nxt
            return step
        if op is Op.STRSP:
            def step():
                box[0] += fetch()
                store4(regs[13] + imm, regs[rd])
                return nxt
            return step
        if op is Op.ADDSPI:
            def step():
                box[0] += fetch()
                regs[rd] = (regs[13] + imm) & _MASK
                return nxt
            return step
        if op is Op.SPADJ:
            def step():
                box[0] += fetch()
                regs[13] = (regs[13] + imm) & _MASK
                return nxt
            return step

        # --- immediate-offset loads/stores ---
        if op in _LOAD_I:
            load = {4: load4, 2: load2, 1: load1}[_LOAD_I[op]]

            def step():
                box[0] += fetch()
                regs[rd] = load(regs[rn] + imm)
                return nxt
            return step
        if op in _STORE_I:
            store = {4: store4, 2: store2, 1: store1}[_STORE_I[op]]

            def step():
                box[0] += fetch()
                store(regs[rn] + imm, regs[rd])
                return nxt
            return step

        # --- register-offset loads/stores ---
        if op in _LOAD_R:
            load = {4: load4, 2: load2, 1: load1}[_LOAD_R[op]]

            def step():
                box[0] += fetch()
                regs[rd] = load((regs[rn] + regs[rm]) & _MASK)
                return nxt
            return step
        if op in _STORE_R:
            store = {4: store4, 2: store2, 1: store1}[_STORE_R[op]]

            def step():
                box[0] += fetch()
                store((regs[rn] + regs[rm]) & _MASK, regs[rd])
                return nxt
            return step
        if op is Op.LDRSH_R:
            def step():
                box[0] += fetch()
                regs[rd] = load2s((regs[rn] + regs[rm]) & _MASK) & _MASK
                return nxt
            return step
        if op is Op.LDRSB_R:
            def step():
                box[0] += fetch()
                regs[rd] = load1s((regs[rn] + regs[rm]) & _MASK) & _MASK
                return nxt
            return step

        # --- stack block transfers ---
        if op is Op.PUSH:
            reglist = instr.reglist
            with_link = instr.with_link
            frame = 4 * (len(reglist) + (1 if with_link else 0))

            def step():
                box[0] += fetch()
                sp = regs[13] - frame
                regs[13] = sp
                for reg in reglist:
                    store4(sp, regs[reg])
                    sp += 4
                if with_link:
                    store4(sp, regs[14])
                return nxt
            return step
        if op is Op.POP:
            reglist = instr.reglist
            with_link = instr.with_link

            def step():
                box[0] += fetch()
                sp = regs[13]
                for reg in reglist:
                    regs[reg] = load4(sp)
                    sp += 4
                if with_link:
                    target = load4(sp) & ~1
                    sp += 4
                    box[0] += refill
                    regs[13] = sp
                    return target
                regs[13] = sp
                return nxt
            return step

        # --- control flow ---
        if op is Op.B:
            target = instr.target

            def step():
                box[0] += fetch() + refill
                return target
            return step
        if op is Op.BCC:
            target = instr.target
            test = _cond_test(instr.cond, fl)
            if test is None:  # AL behaves like B
                def step():
                    box[0] += fetch() + refill
                    return target
                return step

            def step():
                cost = fetch()
                if test():
                    box[0] += cost + refill
                    return target
                box[0] += cost
                return nxt
            return step
        if op is Op.BL:
            target = instr.target
            ret = addr + 4
            fetch2 = make_fetch(addr + 2)

            def step():
                box[0] += fetch() + fetch2() + refill
                regs[14] = ret
                return target
            return step
        if op is Op.BX:
            def step():
                box[0] += fetch() + refill
                return regs[rm] & ~1
            return step

        # --- system ---
        if op is Op.SWI:
            if imm == 0:
                def step():
                    box[0] += fetch() + swi_extra
                    exit_box[0] = regs[0]
                    return None
                return step
            if imm == 1:
                def step():
                    box[0] += fetch() + swi_extra
                    value = regs[0]
                    if value & _SIGN:
                        value -= 0x100000000
                    console.append(str(value))
                    return nxt
                return step
            if imm == 2:
                def step():
                    box[0] += fetch() + swi_extra
                    console.append(chr(regs[0] & 0xFF))
                    return nxt
                return step

            def step():
                box[0] += fetch() + swi_extra
                raise sim_error(f"unknown swi #{imm} at {addr:#x}")
            return step
        if op is Op.NOP:
            def step():
                box[0] += fetch()
                return nxt
            return step

        raise EngineError(f"cannot compile op {op!r} at {addr:#x}")

    spm_top = 0
    main_top = 0
    for addr in code:
        if addr < MAIN_BASE:
            spm_top = max(spm_top, addr + 4)
        else:
            main_top = max(main_top, addr - MAIN_BASE + 4)
    spm_steps = [None] * spm_top
    main_steps = [None] * main_top
    for addr, instr in code.items():
        step = build(addr, instr)
        if addr < MAIN_BASE:
            spm_steps[addr] = step
        else:
            main_steps[addr - MAIN_BASE] = step

    return CompiledProgram(spm_steps, main_steps, box, console, exit_box,
                           fl, sim_error)


_LOGICAL = {
    Op.AND: lambda a, b: a & b,
    Op.EOR: lambda a, b: a ^ b,
    Op.ORR: lambda a, b: a | b,
    Op.BIC: lambda a, b: a & ~b & _MASK,
}

_LOAD_I = {Op.LDRWI: 4, Op.LDRHI: 2, Op.LDRBI: 1}
_STORE_I = {Op.STRWI: 4, Op.STRHI: 2, Op.STRBI: 1}
_LOAD_R = {Op.LDRW_R: 4, Op.LDRH_R: 2, Op.LDRB_R: 1}
_STORE_R = {Op.STRW_R: 4, Op.STRH_R: 2, Op.STRB_R: 1}
