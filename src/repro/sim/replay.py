"""Trace replay kernels: re-price a recorded stream under any config.

Given a :class:`~repro.sim.trace.Trace` (the image's dynamic access
stream, recorded once by the execution engine) and a compatible
:class:`~repro.memory.hierarchy.SystemConfig`, :func:`replay` produces a
:class:`~repro.sim.simulator.SimResult` bit-identical to re-executing
the program on that config — same cycles, instruction count, console,
exit code, and per-level hit/miss statistics — without touching
registers, RAM or step closures.  Replay only walks tag arrays, and
only for the accesses that can actually change state:

* SPM-resident accesses and data writes have config-fixed costs
  (write-through stores pay main memory regardless of hit/miss), so
  they are priced from the trace's aggregate per-tag counts in O(1) —
  writes are walked only when a data-path cache needs their LRU
  refresh/statistics;
* on fetch-only pipelines (instruction caches) the data stream is
  skipped entirely;
* pipelines with no caches at all reduce to pure arithmetic over a
  memoized per-config pricing plan — no tag arrays, no hierarchy.

Each replay is served by one of two interchangeable backends
(:mod:`repro.sim.kernels` picks, ``REPRO_REPLAY_KERNEL`` /
``--kernel`` override): the scalar walks below, or numpy-vectorised
passes for direct-mapped LRU pipelines.  Both are bit-identical by
contract and by differential test.

:func:`replay_sweep` goes further for the paper's bread-and-butter
sweep: same-geometry direct-mapped LRU caches of different sizes
(``cache_sweep``, figs. 3-6, the cache-config ablation).  For LRU the
set contents of a cache are exactly the most recently used blocks
mapping to each set — Mattson et al.'s stack property, which for the
direct-mapped case degenerates to "resident iff most recent allocation
in the set".  One pass over the trace therefore evaluates *every* size
at once: per access, each candidate size checks/updates one last-block
cell, and a most-recent-block shortcut skips the (dominant) runs of
consecutive same-line accesses that hit at every size.  Writes never
allocate, so the shared recency state stays exact across all sizes.

:func:`replay_grid` generalises the sweep to full per-set Mattson stack
distances: one pass prices an entire (size × associativity) LRU grid at
fixed line size.  Three exactness regimes share the pass:

* associativity-1 points reuse the sweep tables (write probes are
  statistics-only there, so sharing is exact);
* when no write ever reaches the cache (instruction-cache grids, or
  write-free traces), all deeper points share per-set LRU stacks
  trimmed to the deepest associativity: a hit at associativity A is a
  stack distance < A, read off a depth histogram;
* unified grids over traces *with* writes get exact per-point LRU
  lists walked together in the same pass — the write-recency subtlety
  the sweep regression tests pin down (a write hit refreshes LRU order
  conditionally on residency, which is associativity-dependent and
  provably cannot share one stack).
"""

from __future__ import annotations

from ..memory.cache import CacheStats, ReplacementPolicy
from ..memory.hierarchy import MemoryHierarchy, SystemConfig
from ..memory.levels import level_labels, path_geometry, serve_costs
from ..memory.regions import RegionKind
from ..sim.simulator import SimResult, SimError
from . import kernels
from .trace import COUNTERS, TAG_WIDTH, Trace


def _check_budget(trace: Trace, max_steps: int):
    if trace.instructions > max_steps:
        # The engine would have given up mid-run; replays agree.
        raise SimError(f"exceeded {max_steps} steps (runaway program?)")


def _check_spm(trace: Trace, config: SystemConfig):
    if config.spm_size != trace.spm_size:
        raise ValueError(
            f"trace was recorded with a {trace.spm_size}-byte SPM split; "
            f"config {config.name!r} has {config.spm_size} bytes — "
            "re-record against the matching image")


# -- per-config pricing plans -------------------------------------------------

class _ReplayPlan:
    """Immutable pricing tables of one ``(levels, timing)`` point.

    Everything a replay needs that is *not* per-access state: physical
    cache descriptors in level order, serve-cost tables per path depth,
    and per-tag SPM/main cycle costs.  Memoized process-wide
    (:func:`_plan_for`), so repeated replays of the same config — the
    planner's singles, the sweep/grid pricing step, uncached baselines
    — skip hierarchy construction entirely.
    """

    __slots__ = ("names", "caches", "fetch_order", "data_order",
                 "fcosts", "dcosts", "spm_tag_cycles", "main_tag_cycles",
                 "dm_chain", "kernel_caches")

    def __init__(self, config: SystemConfig):
        timing = config.timing
        names = []
        caches = []  # (CacheConfig, on_fetch, on_data)
        fetch_order = []
        data_order = []
        for level in config.cache_level_specs:
            labels = iter(level_labels(level))
            if level.shared:
                fetch_order.append(len(caches))
                data_order.append(len(caches))
                names.append(next(labels))
                caches.append((level.icache, True, True))
                continue
            if level.icache is not None:
                fetch_order.append(len(caches))
                names.append(next(labels))
                caches.append((level.icache, True, False))
            if level.dcache is not None:
                data_order.append(len(caches))
                names.append(next(labels))
                caches.append((level.dcache, False, True))
        self.names = tuple(names)
        self.caches = tuple(caches)
        self.fetch_order = tuple(fetch_order)
        self.data_order = tuple(data_order)
        self.fcosts = tuple(serve_costs(
            path_geometry(config.fetch_path(), "i"), timing))
        self.dcosts = tuple(serve_costs(
            path_geometry(config.data_path(), "d"), timing))
        self.spm_tag_cycles = tuple(
            timing.cycles(RegionKind.SPM, TAG_WIDTH[tag])
            for tag in range(8))
        self.main_tag_cycles = tuple(
            timing.cycles(RegionKind.MAIN, TAG_WIDTH[tag])
            for tag in range(8))
        self.dm_chain = all(spec.assoc == 1 for spec, _f, _d in caches)
        self.kernel_caches = tuple(
            (spec.line_size, spec.num_sets, on_fetch, on_data)
            for spec, on_fetch, on_data in caches)


_PLANS = {}
_PLANS_BY_ID = {}


def _plan_for(config: SystemConfig) -> _ReplayPlan:
    # Fast path: the same config object replayed again (sweeps, grids,
    # benches) resolves by identity, skipping the key flattening.
    cached = _PLANS_BY_ID.get(id(config))
    if cached is not None and cached[0] is config:
        return cached[1]
    # AccessTiming holds dict fields (unhashable), so the memo key
    # flattens it; levels tuples are frozen dataclasses and hash fine.
    timing = config.timing
    key = (config.levels,
           tuple(sorted(timing.main.items())),
           tuple(sorted(timing.spm.items())))
    plan = _PLANS.get(key)
    if plan is None:
        plan = _PLANS[key] = _ReplayPlan(config)
    _PLANS_BY_ID[id(config)] = (config, plan)
    return plan


def _fixed_cycles(trace: Trace, plan: _ReplayPlan,
                  fetches_fixed: bool, reads_fixed: bool) -> int:
    """Cycles of every access whose cost the config pins up front.

    Always: SPM-resident accesses and the write-through store costs.
    Additionally the whole fetch (data-read) stream when no cache sits
    on that path, where each access pays plain main-memory cost.
    Memoised on the trace per (plan, path-fixedness) — plans are
    interned for the process lifetime, so their ids are stable keys.
    """
    memo = trace._memo
    memo_key = ("fixed", id(plan), fetches_fixed, reads_fixed)
    cached = memo.get(memo_key)
    if cached is not None:
        return cached
    spm_out = plan.spm_tag_cycles
    main_out = plan.main_tag_cycles
    total = 0
    for tag, count in enumerate(trace.spm_counts):
        if count:
            total += count * spm_out[tag]
    counts = trace.op_counts
    for tag in (4, 5, 6):  # writes: main cost at any depth
        if counts[tag]:
            total += counts[tag] * main_out[tag]
    if fetches_fixed and (counts[0] or counts[7]):
        total += (counts[0] + counts[7]) * main_out[0]
    if reads_fixed:
        for tag in (1, 2, 3):
            if counts[tag]:
                total += counts[tag] * main_out[tag]
    memo[memo_key] = total
    return total


def _result(trace: Trace, hierarchy: MemoryHierarchy,
            cycles: int) -> SimResult:
    hierarchy.flush_fast_stats()
    return SimResult(
        cycles=cycles,
        instructions=trace.instructions,
        exit_code=trace.exit_code,
        console=list(trace.console),
        cache_stats=hierarchy.cache_stats,
        level_stats=hierarchy.level_stats,
    )


def _plan_result(trace: Trace, plan: _ReplayPlan, cycles: int,
                 counts_per_cache) -> SimResult:
    """Build a SimResult from counters alone (no tag arrays needed)."""
    level_stats = {}
    first = None
    for name, counts in zip(plan.names, counts_per_cache):
        stats = CacheStats(*counts)
        level_stats[name] = stats
        if first is None:
            first = stats
    return SimResult(
        cycles=cycles,
        instructions=trace.instructions,
        exit_code=trace.exit_code,
        console=list(trace.console),
        cache_stats=first,
        level_stats=level_stats,
    )


def _priced_counts(trace: Trace, plan: _ReplayPlan, counts_per_cache,
                   fetches_fixed: bool = False,
                   reads_fixed: bool = False) -> int:
    """Total cycles from per-cache counters and the plan's cost tables."""
    cycles = trace.base_cycles + _fixed_cycles(
        trace, plan, fetches_fixed=fetches_fixed, reads_fixed=reads_fixed)
    op_counts = trace.op_counts
    if plan.fetch_order and not fetches_fixed:
        total = op_counts[0] + op_counts[7]
        served = 0
        for depth, index in enumerate(plan.fetch_order):
            hits = counts_per_cache[index][0]
            cycles += hits * plan.fcosts[depth]
            served += hits
        cycles += (total - served) * plan.fcosts[len(plan.fetch_order)]
    if plan.data_order and not reads_fixed:
        total = op_counts[1] + op_counts[2] + op_counts[3]
        served = 0
        for depth, index in enumerate(plan.data_order):
            hits = counts_per_cache[index][2]
            cycles += hits * plan.dcosts[depth]
            served += hits
        cycles += (total - served) * plan.dcosts[len(plan.data_order)]
    return cycles


def replay(trace: Trace, config: SystemConfig,
           max_steps: int = 50_000_000) -> SimResult:
    """Re-price *trace* under *config*; bit-identical to execution."""
    _check_budget(trace, max_steps)
    _check_spm(trace, config)
    plan = _plan_for(config)
    COUNTERS["replay_runs"] += 1
    if not plan.caches:
        # No tag state anywhere: pure arithmetic over the plan tables.
        COUNTERS["replay_scalar"] += 1
        cycles = trace.base_cycles + _fixed_cycles(
            trace, plan, fetches_fixed=True, reads_fixed=True)
        return _plan_result(trace, plan, cycles, ())
    if plan.dm_chain and kernels.active_kernel() == "numpy":
        COUNTERS["replay_numpy"] += 1
        counts = kernels.dm_chain_counts(
            kernels.ops_view(trace.ops), plan.kernel_caches,
            memo=trace._memo)
        cycles = _priced_counts(trace, plan, counts,
                                fetches_fixed=not plan.fetch_order,
                                reads_fixed=not plan.data_order)
        return _plan_result(trace, plan, cycles, counts)
    COUNTERS["replay_scalar"] += 1
    hierarchy = MemoryHierarchy(config)
    fchain = hierarchy._fetch_chain
    dchain = hierarchy._data_chain
    cycles = trace.base_cycles + _fixed_cycles(
        trace, plan, fetches_fixed=not fchain,
        reads_fixed=not dchain)
    if fchain == dchain and len(fchain) == 1 \
            and fchain[0].config.assoc == 1:
        cycles += _walk_unified_dm(trace, hierarchy)
    elif len(fchain) == 1 and not dchain \
            and fchain[0].config.assoc == 1:
        cycles += _walk_fetch_dm(trace, hierarchy)
    elif fchain or dchain:
        cycles += _walk_generic(trace, hierarchy)
    return _result(trace, hierarchy, cycles)


def _walk_unified_dm(trace: Trace, hierarchy: MemoryHierarchy) -> int:
    """One shared direct-mapped cache on both paths (the paper's shape)."""
    cache = hierarchy._fetch_chain[0]
    sets = cache.sets
    counts = cache.fast_counts
    line = cache.config.line_size
    nsets = cache.config.num_sets
    f_hit, f_miss = (out.cycles for out in hierarchy._fetch_out)
    r_hit, r_miss = (out.cycles for out in hierarchy._data_out)
    cycles = 0
    for value in trace.ops:
        tag = value & 7
        block = (value >> 3) // line
        ways = sets[block % nsets]
        if tag == 0 or tag == 7:
            if ways and ways[0] == block:
                counts[0] += 1
                cycles += f_hit
            else:
                if ways:
                    ways[0] = block
                else:
                    ways.append(block)
                counts[1] += 1
                cycles += f_miss
        elif tag < 4:
            if ways and ways[0] == block:
                counts[2] += 1
                cycles += r_hit
            else:
                if ways:
                    ways[0] = block
                else:
                    ways.append(block)
                counts[3] += 1
                cycles += r_miss
        else:  # write-through, no allocate: stats only
            if ways and ways[0] == block:
                counts[4] += 1
            else:
                counts[5] += 1
    return cycles


def _walk_fetch_dm(trace: Trace, hierarchy: MemoryHierarchy) -> int:
    """A single direct-mapped instruction cache; data bypasses."""
    cache = hierarchy._fetch_chain[0]
    sets = cache.sets
    counts = cache.fast_counts
    line = cache.config.line_size
    nsets = cache.config.num_sets
    f_hit, f_miss = (out.cycles for out in hierarchy._fetch_out)
    cycles = 0
    for value in trace.ops:
        tag = value & 7
        if tag and tag != 7:
            continue
        block = (value >> 3) // line
        ways = sets[block % nsets]
        if ways and ways[0] == block:
            counts[0] += 1
            cycles += f_hit
        else:
            if ways:
                ways[0] = block
            else:
                ways.append(block)
            counts[1] += 1
            cycles += f_miss
    return cycles


def _walk_generic(trace: Trace, hierarchy: MemoryHierarchy) -> int:
    """Any level pipeline: per-level touch closures, outermost-in."""
    fts = tuple(
        (hierarchy._make_touch(c, 0), c.config.line_size,
         c.config.num_sets) for c in hierarchy._fetch_chain)
    dts = tuple(
        (hierarchy._make_touch(c, 2), c.config.line_size,
         c.config.num_sets) for c in hierarchy._data_chain)
    wts = tuple(
        (hierarchy._make_write_touch(c), c.config.line_size,
         c.config.num_sets) for c in hierarchy._data_chain)
    fcosts = [out.cycles for out in hierarchy._fetch_out]
    dcosts = [out.cycles for out in hierarchy._data_out]
    cycles = 0
    for value in trace.ops:
        tag = value & 7
        addr = value >> 3
        if tag == 0 or tag == 7:
            if not fts:
                continue  # priced by _fixed_cycles
            depth = 0
            for touch, line, nsets in fts:
                block = addr // line
                if touch(block, block % nsets):
                    break
                depth += 1
            cycles += fcosts[depth]
        elif tag < 4:
            if not dts:
                continue
            depth = 0
            for touch, line, nsets in dts:
                block = addr // line
                if touch(block, block % nsets):
                    break
                depth += 1
            cycles += dcosts[depth]
        else:
            for touch, line, nsets in wts:
                block = addr // line
                touch(block, block % nsets)
    return cycles


def replay_misses(trace: Trace, config: SystemConfig,
                  max_steps: int = 50_000_000):
    """Per-pc fetch-miss counters served from the trace, no re-execution.

    Returns ``(fetch_misses, fetch_main_misses)`` — instruction address
    -> miss count dicts matching the recording engine's attribution
    exactly (``simulate(..., record_misses=True)``): both halfword
    fetches of a 32-bit instruction attribute to the instruction's pc
    (continuation entries carry :data:`~repro.sim.trace.TAG_FETCH_CONT`
    and name ``pc + 2``), and one execution of an instruction counts at
    most once per counter however many of its halfwords missed.

    The walk touches the full fetch *and* data pipelines: on unified
    levels, data traffic moves the very tags fetch misses depend on.
    """
    _check_budget(trace, max_steps)
    _check_spm(trace, config)
    hierarchy = MemoryHierarchy(config)
    fts = tuple(
        (hierarchy._make_touch(c, 0), c.config.line_size,
         c.config.num_sets) for c in hierarchy._fetch_chain)
    dts = tuple(
        (hierarchy._make_touch(c, 2), c.config.line_size,
         c.config.num_sets) for c in hierarchy._data_chain)
    wts = tuple(
        (hierarchy._make_write_touch(c), c.config.line_size,
         c.config.num_sets) for c in hierarchy._data_chain)
    main_depth = len(fts)
    fetch_misses = {}
    fetch_main_misses = {}
    counted = counted_main = True  # until the first tag-0 fetch
    pc = None
    for value in trace.ops:
        tag = value & 7
        addr = value >> 3
        if tag == 0 or tag == 7:
            if tag == 0:
                pc = addr
                counted = counted_main = False
            if not fts:
                continue  # no fetch caches: misses cannot happen
            depth = 0
            for touch, line, nsets in fts:
                block = addr // line
                if touch(block, block % nsets):
                    break
                depth += 1
            if depth:
                if not counted:
                    counted = True
                    fetch_misses[pc] = fetch_misses.get(pc, 0) + 1
                if depth == main_depth and not counted_main:
                    counted_main = True
                    fetch_main_misses[pc] = \
                        fetch_main_misses.get(pc, 0) + 1
        elif tag < 4:
            for touch, line, nsets in dts:
                block = addr // line
                if touch(block, block % nsets):
                    break
        else:
            for touch, line, nsets in wts:
                block = addr // line
                touch(block, block % nsets)
    COUNTERS["miss_replays"] += 1
    return fetch_misses, fetch_main_misses


# -- single-pass size sweeps -------------------------------------------------

def grid_geometry(config: SystemConfig):
    """The shared-geometry key of *config* for grid evaluation.

    Grid-able configs have exactly one cache level that serves fetches
    (unified or instruction-only), LRU replacement at any
    associativity, optionally behind a scratchpad.  Configs with equal
    keys (and equal SPM splits) may be evaluated together by
    :func:`replay_grid` in one pass.  Returns None when the config
    needs a plain per-config replay.
    """
    caches = config.cache_level_specs
    if len(caches) != 1:
        return None
    level = caches[0]
    if level.icache is None:
        return None
    if level.dcache is not None and not level.shared:
        return None
    if level.icache.replacement != ReplacementPolicy.LRU:
        return None
    # Per-config costs (hit_cycles, timing) are priced after the walk,
    # so only what shapes the shared walk itself keys the group.
    return (level.icache.line_size, level.shared, config.spm_size)


def sweep_geometry(config: SystemConfig):
    """The shared-geometry key of *config*, or None if not sweepable.

    Sweepable configs are the direct-mapped subset of
    :func:`grid_geometry` (where direct-mapped content is just "last
    allocated block per set" — the degenerate Mattson stack).  Configs
    with equal keys (and equal SPM splits) may be evaluated together by
    :func:`replay_sweep` in one pass.
    """
    key = grid_geometry(config)
    if key is None:
        return None
    if config.cache_level_specs[0].icache.assoc != 1:
        return None
    return key


def replay_sweep(trace: Trace, configs,
                 max_steps: int = 50_000_000):
    """Evaluate every same-geometry config in **one** pass over *trace*.

    All *configs* must share one :func:`sweep_geometry` key; returns one
    :class:`~repro.sim.simulator.SimResult` per config, in order, each
    bit-identical to :func:`replay` (asserted by the differential and
    property tests).
    """
    configs = list(configs)
    if not configs:
        return []
    _check_budget(trace, max_steps)
    keys = {sweep_geometry(config) for config in configs}
    if len(keys) != 1 or None in keys:
        raise ValueError("replay_sweep needs same-geometry direct-mapped "
                         f"LRU configs, got keys {keys}")
    for config in configs:
        _check_spm(trace, config)
    line, unified, _spm = next(iter(keys))

    if len(configs) == 1:
        # Degenerate sweep: the specialized single-config paths are
        # cheaper than the multi-table kernels.
        results = [replay(trace, configs[0], max_steps)]
        COUNTERS["replay_runs"] -= 1
    else:
        plans = [_plan_for(config) for config in configs]
        nsets_list = [plan.caches[0][0].num_sets for plan in plans]
        if kernels.active_kernel() == "numpy":
            COUNTERS["sweep_numpy"] += 1
            counts_list = kernels.dm_sweep_counts(
                kernels.ops_view(trace.ops), line, unified, nsets_list,
                memo=trace._memo)
        else:
            COUNTERS["sweep_scalar"] += 1
            tables = [([-1] * nsets, nsets, [0] * 6)
                      for nsets in nsets_list]
            _sweep_walk(trace.ops, tables, line, unified)
            counts_list = [counts for _last, _nsets, counts in tables]
        results = [
            _plan_result(trace, plan,
                         _sweep_cycles(trace, plan, counts, unified),
                         (counts,))
            for plan, counts in zip(plans, counts_list)]
    COUNTERS["sweep_passes"] += 1
    COUNTERS["sweep_points"] += len(configs)
    return results


def _sweep_cycles(trace: Trace, plan: _ReplayPlan, counts,
                  unified: bool) -> int:
    """Price one single-cache config from its sweep/grid counters."""
    cycles = trace.base_cycles + _fixed_cycles(
        trace, plan, fetches_fixed=False, reads_fixed=not unified)
    cycles += counts[0] * plan.fcosts[0] + counts[1] * plan.fcosts[1]
    if unified:
        cycles += counts[2] * plan.dcosts[0] + counts[3] * plan.dcosts[1]
    return cycles


def _sweep_walk(ops, tables, line, unified):
    """The single-pass multi-size kernel over the packed stream.

    ``prev`` is the block of the most recent *allocating* access
    (fetch/read).  Immediately after it, that block is the MRU line of
    its set in every candidate size, so a repeat access hits everywhere
    and no table needs touching — the case that dominates straight-line
    fetch runs.  Writes never allocate, so they check residency without
    perturbing the shared recency state.
    """
    prev = -1
    for value in ops:
        tag = value & 7
        if tag == 7:
            tag = 0  # continuation fetches price like plain fetches
        if tag and not unified:
            continue  # instruction cache: data bypasses every size
        block = (value >> 3) // line
        if tag == 0:
            if block == prev:
                for _last, _nsets, counts in tables:
                    counts[0] += 1
            else:
                prev = block
                for last, nsets, counts in tables:
                    index = block % nsets
                    if last[index] == block:
                        counts[0] += 1
                    else:
                        last[index] = block
                        counts[1] += 1
        elif tag < 4:
            if block == prev:
                for _last, _nsets, counts in tables:
                    counts[2] += 1
            else:
                prev = block
                for last, nsets, counts in tables:
                    index = block % nsets
                    if last[index] == block:
                        counts[2] += 1
                    else:
                        last[index] = block
                        counts[3] += 1
        else:
            if block == prev:
                for _last, _nsets, counts in tables:
                    counts[4] += 1
            else:
                for last, nsets, counts in tables:
                    if last[block % nsets] == block:
                        counts[4] += 1
                    else:
                        counts[5] += 1


# -- single-pass geometry grids ----------------------------------------------

def replay_grid(trace: Trace, configs,
                max_steps: int = 50_000_000):
    """Evaluate a (size × associativity) LRU grid in one trace pass.

    All *configs* must share one :func:`grid_geometry` key (same line
    size, same unified/instruction side, same SPM split — sizes and
    associativities free).  Returns one SimResult per config, in order,
    bit-identical to :func:`replay` per point.
    """
    configs = list(configs)
    if not configs:
        return []
    _check_budget(trace, max_steps)
    keys = {grid_geometry(config) for config in configs}
    if len(keys) != 1 or None in keys:
        raise ValueError("replay_grid needs same-geometry LRU configs, "
                         f"got keys {keys}")
    for config in configs:
        _check_spm(trace, config)
    line, unified, _spm = next(iter(keys))

    plans = [_plan_for(config) for config in configs]
    specs = [plan.caches[0][0] for plan in plans]
    counts_for = [None] * len(configs)
    use_numpy = kernels.active_kernel() == "numpy"

    dm_positions = [i for i, spec in enumerate(specs) if spec.assoc == 1]
    lru_positions = [i for i, spec in enumerate(specs) if spec.assoc > 1]

    if dm_positions:
        nsets_list = [specs[i].num_sets for i in dm_positions]
        if use_numpy:
            dm_counts = kernels.dm_sweep_counts(
                kernels.ops_view(trace.ops), line, unified, nsets_list,
                memo=trace._memo)
        else:
            tables = [([-1] * nsets, nsets, [0] * 6)
                      for nsets in nsets_list]
            _sweep_walk(trace.ops, tables, line, unified)
            dm_counts = [counts for _last, _nsets, counts in tables]
        for position, counts in zip(dm_positions, dm_counts):
            counts_for[position] = counts
    if lru_positions:
        points = [(specs[i].assoc, specs[i].num_sets)
                  for i in lru_positions]
        if unified and any(trace.op_counts[4:7]):
            # Write hits refresh LRU order conditionally on residency,
            # which depends on the associativity — no shared stack is
            # exact here, so these points get their own LRU lists,
            # still walked together in the one pass.
            lru_counts = _grid_exact_walk(trace.ops, line, points)
        else:
            lru_counts = _grid_stack_walk(trace.ops, line, unified,
                                          points)
        for position, counts in zip(lru_positions, lru_counts):
            counts_for[position] = counts
    results = [
        _plan_result(trace, plan,
                     _sweep_cycles(trace, plan, counts, unified),
                     (counts,))
        for plan, counts in zip(plans, counts_for)]
    COUNTERS["grid_passes"] += 1
    COUNTERS["grid_points"] += len(configs)
    COUNTERS["grid_numpy" if use_numpy else "grid_scalar"] += 1
    return results


def _grid_stack_walk(ops, line, unified, points):
    """Shared per-set Mattson stacks for write-free LRU grid points.

    *points* is a list of ``(assoc, nsets)``; no write probe ever
    reaches the cache (instruction-cache side, or a write-free trace),
    so every access refreshes LRU order unconditionally and one stack
    per set serves every associativity: an access at stack distance
    ``d`` hits every point with ``assoc > d``.  Stacks are trimmed to
    the deepest associativity per set count — depths beyond it price
    identically to a miss everywhere, and trimming bounds the
    ``list.index`` search.
    """
    groups = {}  # nsets -> positions into points
    for position, (_assoc, nsets) in enumerate(points):
        groups.setdefault(nsets, []).append(position)
    walkers = []
    for nsets, members in groups.items():
        deepest = max(points[i][0] for i in members)
        walkers.append((nsets, deepest, [[] for _ in range(nsets)],
                        [0] * (deepest + 1), [0] * (deepest + 1)))
    prev = -1
    for value in ops:
        tag = value & 7
        if tag == 7:
            tag = 0
        if tag and not unified:
            continue
        block = (value >> 3) // line
        read = tag != 0
        if block == prev:
            for _nsets, _deepest, _stacks, fetch_hist, read_hist \
                    in walkers:
                (read_hist if read else fetch_hist)[0] += 1
            continue
        prev = block
        for nsets, deepest, stacks, fetch_hist, read_hist in walkers:
            stack = stacks[block % nsets]
            try:
                depth = stack.index(block)
                del stack[depth]
            except ValueError:
                depth = deepest
                if len(stack) >= deepest:
                    stack.pop()
            stack.insert(0, block)
            (read_hist if read else fetch_hist)[depth] += 1
    counts_for = [None] * len(points)
    for (nsets, _deepest, _stacks, fetch_hist, read_hist), members \
            in zip(walkers, groups.values()):
        total_fetch = sum(fetch_hist)
        total_read = sum(read_hist)
        for position in members:
            assoc = points[position][0]
            fetch_hits = sum(fetch_hist[:assoc])
            read_hits = sum(read_hist[:assoc])
            counts_for[position] = [fetch_hits, total_fetch - fetch_hits,
                                    read_hits, total_read - read_hits,
                                    0, 0]
    return counts_for


def _grid_exact_walk(ops, line, points):
    """Exact per-point LRU lists for unified grids with write traffic.

    Matches the hierarchy's touch closures bit for bit: fetch/read hits
    and write hits refresh LRU order, misses allocate (fetch/read) or
    do nothing (write-through, no allocate).
    """
    states = [([[] for _ in range(nsets)], nsets, assoc, [0] * 6)
              for assoc, nsets in points]
    for value in ops:
        tag = value & 7
        block = (value >> 3) // line
        if tag == 0 or tag == 7:
            base = 0
        elif tag < 4:
            base = 2
        else:
            base = -1  # write: refresh residents, never allocate
        if base < 0:
            for sets, nsets, _assoc, counts in states:
                ways = sets[block % nsets]
                if block in ways:
                    if ways[0] != block:
                        ways.remove(block)
                        ways.insert(0, block)
                    counts[4] += 1
                else:
                    counts[5] += 1
        else:
            for sets, nsets, assoc, counts in states:
                ways = sets[block % nsets]
                if block in ways:
                    if ways[0] != block:
                        ways.remove(block)
                        ways.insert(0, block)
                    counts[base] += 1
                else:
                    if len(ways) < assoc:
                        ways.insert(0, block)
                    else:
                        ways.pop()
                        ways.insert(0, block)
                    counts[base + 1] += 1
    return [counts for _sets, _nsets, _assoc, counts in states]
