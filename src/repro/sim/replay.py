"""Trace replay kernels: re-price a recorded stream under any config.

Given a :class:`~repro.sim.trace.Trace` (the image's dynamic access
stream, recorded once by the execution engine) and a compatible
:class:`~repro.memory.hierarchy.SystemConfig`, :func:`replay` produces a
:class:`~repro.sim.simulator.SimResult` bit-identical to re-executing
the program on that config — same cycles, instruction count, console,
exit code, and per-level hit/miss statistics — without touching
registers, RAM or step closures.  Replay only walks tag arrays, and
only for the accesses that can actually change state:

* SPM-resident accesses and data writes have config-fixed costs
  (write-through stores pay main memory regardless of hit/miss), so
  they are priced from the trace's aggregate per-tag counts in O(1) —
  writes are walked only when a data-path cache needs their LRU
  refresh/statistics;
* on fetch-only pipelines (instruction caches) the data stream is
  skipped entirely;
* pipelines with no caches at all reduce to pure arithmetic.

:func:`replay_sweep` goes further for the paper's bread-and-butter
sweep: same-geometry direct-mapped LRU caches of different sizes
(``cache_sweep``, figs. 3-6, the cache-config ablation).  For LRU the
set contents of a cache are exactly the most recently used blocks
mapping to each set — Mattson et al.'s stack property, which for the
direct-mapped case degenerates to "resident iff most recent allocation
in the set".  One pass over the trace therefore evaluates *every* size
at once: per access, each candidate size checks/updates one last-block
cell, and a most-recent-block shortcut skips the (dominant) runs of
consecutive same-line accesses that hit at every size.  Writes never
allocate, so the shared recency state stays exact across all sizes.
"""

from __future__ import annotations

from ..memory.cache import ReplacementPolicy
from ..memory.hierarchy import MemoryHierarchy, SystemConfig
from ..sim.simulator import SimResult, SimError
from .trace import COUNTERS, TAG_WIDTH, Trace


def _check_budget(trace: Trace, max_steps: int):
    if trace.instructions > max_steps:
        # The engine would have given up mid-run; replays agree.
        raise SimError(f"exceeded {max_steps} steps (runaway program?)")


def _check_spm(trace: Trace, config: SystemConfig):
    if config.spm_size != trace.spm_size:
        raise ValueError(
            f"trace was recorded with a {trace.spm_size}-byte SPM split; "
            f"config {config.name!r} has {config.spm_size} bytes — "
            "re-record against the matching image")


def _fixed_cycles(trace: Trace, hierarchy: MemoryHierarchy,
                  fetches_fixed: bool, reads_fixed: bool) -> int:
    """Cycles of every access whose cost the config pins up front.

    Always: SPM-resident accesses and the write-through store costs.
    Additionally the whole fetch (data-read) stream when no cache sits
    on that path, where each access pays plain main-memory cost.
    """
    spm_out = hierarchy._spm_out
    main_out = hierarchy._main_out
    total = 0
    for tag, count in enumerate(trace.spm_counts):
        if count:
            total += count * spm_out[TAG_WIDTH[tag]].cycles
    counts = trace.op_counts
    for tag in (4, 5, 6):  # writes: main cost at any depth
        if counts[tag]:
            total += counts[tag] * main_out[TAG_WIDTH[tag]].cycles
    if fetches_fixed and (counts[0] or counts[7]):
        total += (counts[0] + counts[7]) * main_out[2].cycles
    if reads_fixed:
        for tag in (1, 2, 3):
            if counts[tag]:
                total += counts[tag] * main_out[TAG_WIDTH[tag]].cycles
    return total


def _result(trace: Trace, hierarchy: MemoryHierarchy,
            cycles: int) -> SimResult:
    hierarchy.flush_fast_stats()
    return SimResult(
        cycles=cycles,
        instructions=trace.instructions,
        exit_code=trace.exit_code,
        console=list(trace.console),
        cache_stats=hierarchy.cache_stats,
        level_stats=hierarchy.level_stats,
    )


def replay(trace: Trace, config: SystemConfig,
           max_steps: int = 50_000_000) -> SimResult:
    """Re-price *trace* under *config*; bit-identical to execution."""
    _check_budget(trace, max_steps)
    _check_spm(trace, config)
    hierarchy = MemoryHierarchy(config)
    fchain = hierarchy._fetch_chain
    dchain = hierarchy._data_chain
    cycles = trace.base_cycles + _fixed_cycles(
        trace, hierarchy, fetches_fixed=not fchain,
        reads_fixed=not dchain)
    if fchain == dchain and len(fchain) == 1 \
            and fchain[0].config.assoc == 1:
        cycles += _walk_unified_dm(trace, hierarchy)
    elif len(fchain) == 1 and not dchain \
            and fchain[0].config.assoc == 1:
        cycles += _walk_fetch_dm(trace, hierarchy)
    elif fchain or dchain:
        cycles += _walk_generic(trace, hierarchy)
    COUNTERS["replay_runs"] += 1
    return _result(trace, hierarchy, cycles)


def _walk_unified_dm(trace: Trace, hierarchy: MemoryHierarchy) -> int:
    """One shared direct-mapped cache on both paths (the paper's shape)."""
    cache = hierarchy._fetch_chain[0]
    sets = cache.sets
    counts = cache.fast_counts
    line = cache.config.line_size
    nsets = cache.config.num_sets
    f_hit, f_miss = (out.cycles for out in hierarchy._fetch_out)
    r_hit, r_miss = (out.cycles for out in hierarchy._data_out)
    cycles = 0
    for value in trace.ops:
        tag = value & 7
        block = (value >> 3) // line
        ways = sets[block % nsets]
        if tag == 0 or tag == 7:
            if ways and ways[0] == block:
                counts[0] += 1
                cycles += f_hit
            else:
                if ways:
                    ways[0] = block
                else:
                    ways.append(block)
                counts[1] += 1
                cycles += f_miss
        elif tag < 4:
            if ways and ways[0] == block:
                counts[2] += 1
                cycles += r_hit
            else:
                if ways:
                    ways[0] = block
                else:
                    ways.append(block)
                counts[3] += 1
                cycles += r_miss
        else:  # write-through, no allocate: stats only
            if ways and ways[0] == block:
                counts[4] += 1
            else:
                counts[5] += 1
    return cycles


def _walk_fetch_dm(trace: Trace, hierarchy: MemoryHierarchy) -> int:
    """A single direct-mapped instruction cache; data bypasses."""
    cache = hierarchy._fetch_chain[0]
    sets = cache.sets
    counts = cache.fast_counts
    line = cache.config.line_size
    nsets = cache.config.num_sets
    f_hit, f_miss = (out.cycles for out in hierarchy._fetch_out)
    cycles = 0
    for value in trace.ops:
        tag = value & 7
        if tag and tag != 7:
            continue
        block = (value >> 3) // line
        ways = sets[block % nsets]
        if ways and ways[0] == block:
            counts[0] += 1
            cycles += f_hit
        else:
            if ways:
                ways[0] = block
            else:
                ways.append(block)
            counts[1] += 1
            cycles += f_miss
    return cycles


def _walk_generic(trace: Trace, hierarchy: MemoryHierarchy) -> int:
    """Any level pipeline: per-level touch closures, outermost-in."""
    fts = tuple(
        (hierarchy._make_touch(c, 0), c.config.line_size,
         c.config.num_sets) for c in hierarchy._fetch_chain)
    dts = tuple(
        (hierarchy._make_touch(c, 2), c.config.line_size,
         c.config.num_sets) for c in hierarchy._data_chain)
    wts = tuple(
        (hierarchy._make_write_touch(c), c.config.line_size,
         c.config.num_sets) for c in hierarchy._data_chain)
    fcosts = [out.cycles for out in hierarchy._fetch_out]
    dcosts = [out.cycles for out in hierarchy._data_out]
    cycles = 0
    for value in trace.ops:
        tag = value & 7
        addr = value >> 3
        if tag == 0 or tag == 7:
            if not fts:
                continue  # priced by _fixed_cycles
            depth = 0
            for touch, line, nsets in fts:
                block = addr // line
                if touch(block, block % nsets):
                    break
                depth += 1
            cycles += fcosts[depth]
        elif tag < 4:
            if not dts:
                continue
            depth = 0
            for touch, line, nsets in dts:
                block = addr // line
                if touch(block, block % nsets):
                    break
                depth += 1
            cycles += dcosts[depth]
        else:
            for touch, line, nsets in wts:
                block = addr // line
                touch(block, block % nsets)
    return cycles


def replay_misses(trace: Trace, config: SystemConfig,
                  max_steps: int = 50_000_000):
    """Per-pc fetch-miss counters served from the trace, no re-execution.

    Returns ``(fetch_misses, fetch_main_misses)`` — instruction address
    -> miss count dicts matching the recording engine's attribution
    exactly (``simulate(..., record_misses=True)``): both halfword
    fetches of a 32-bit instruction attribute to the instruction's pc
    (continuation entries carry :data:`~repro.sim.trace.TAG_FETCH_CONT`
    and name ``pc + 2``), and one execution of an instruction counts at
    most once per counter however many of its halfwords missed.

    The walk touches the full fetch *and* data pipelines: on unified
    levels, data traffic moves the very tags fetch misses depend on.
    """
    _check_budget(trace, max_steps)
    _check_spm(trace, config)
    hierarchy = MemoryHierarchy(config)
    fts = tuple(
        (hierarchy._make_touch(c, 0), c.config.line_size,
         c.config.num_sets) for c in hierarchy._fetch_chain)
    dts = tuple(
        (hierarchy._make_touch(c, 2), c.config.line_size,
         c.config.num_sets) for c in hierarchy._data_chain)
    wts = tuple(
        (hierarchy._make_write_touch(c), c.config.line_size,
         c.config.num_sets) for c in hierarchy._data_chain)
    main_depth = len(fts)
    fetch_misses = {}
    fetch_main_misses = {}
    counted = counted_main = True  # until the first tag-0 fetch
    pc = None
    for value in trace.ops:
        tag = value & 7
        addr = value >> 3
        if tag == 0 or tag == 7:
            if tag == 0:
                pc = addr
                counted = counted_main = False
            if not fts:
                continue  # no fetch caches: misses cannot happen
            depth = 0
            for touch, line, nsets in fts:
                block = addr // line
                if touch(block, block % nsets):
                    break
                depth += 1
            if depth:
                if not counted:
                    counted = True
                    fetch_misses[pc] = fetch_misses.get(pc, 0) + 1
                if depth == main_depth and not counted_main:
                    counted_main = True
                    fetch_main_misses[pc] = \
                        fetch_main_misses.get(pc, 0) + 1
        elif tag < 4:
            for touch, line, nsets in dts:
                block = addr // line
                if touch(block, block % nsets):
                    break
        else:
            for touch, line, nsets in wts:
                block = addr // line
                touch(block, block % nsets)
    COUNTERS["miss_replays"] += 1
    return fetch_misses, fetch_main_misses


# -- single-pass size sweeps -------------------------------------------------

def sweep_geometry(config: SystemConfig):
    """The shared-geometry key of *config*, or None if not sweepable.

    Sweepable configs have exactly one cache level that serves fetches,
    direct-mapped with LRU (where direct-mapped content is just "last
    allocated block per set" — the degenerate Mattson stack), optionally
    behind a scratchpad.  Configs with equal keys (and equal SPM splits)
    may be evaluated together by :func:`replay_sweep` in one pass.
    """
    caches = config.cache_level_specs
    if len(caches) != 1:
        return None
    level = caches[0]
    if level.icache is None:
        return None
    if level.dcache is not None and not level.shared:
        return None
    spec = level.icache
    if spec.assoc != 1 or spec.replacement != ReplacementPolicy.LRU:
        return None
    # Per-config costs (hit_cycles, timing) are priced after the walk,
    # so only what shapes the shared walk itself keys the group.
    return (spec.line_size, level.shared, config.spm_size)


def replay_sweep(trace: Trace, configs,
                 max_steps: int = 50_000_000):
    """Evaluate every same-geometry config in **one** pass over *trace*.

    All *configs* must share one :func:`sweep_geometry` key; returns one
    :class:`~repro.sim.simulator.SimResult` per config, in order, each
    bit-identical to :func:`replay` (asserted by the differential and
    property tests).
    """
    configs = list(configs)
    if not configs:
        return []
    _check_budget(trace, max_steps)
    keys = {sweep_geometry(config) for config in configs}
    if len(keys) != 1 or None in keys:
        raise ValueError("replay_sweep needs same-geometry direct-mapped "
                         f"LRU configs, got keys {keys}")
    for config in configs:
        _check_spm(trace, config)
    line, unified, _spm = next(iter(keys))

    hierarchies = [MemoryHierarchy(config) for config in configs]
    tables = []
    for hierarchy in hierarchies:
        cache = hierarchy._fetch_chain[0]
        tables.append(([-1] * cache.config.num_sets,
                       cache.config.num_sets, [0] * 6))

    if len(tables) == 1:
        # Degenerate sweep: the specialized single-config walks are
        # cheaper than the multi-table loop.
        results = [replay(trace, configs[0], max_steps)]
        COUNTERS["replay_runs"] -= 1
    else:
        _sweep_walk(trace.ops, tables, line, unified)
        results = []
        for config, hierarchy, (_last, _nsets, counts) in zip(
                configs, hierarchies, tables):
            cache = hierarchy._fetch_chain[0]
            fast = cache.fast_counts
            for i in range(6):
                fast[i] = counts[i]
            f_hit, f_miss = (out.cycles for out in hierarchy._fetch_out)
            cycles = trace.base_cycles + _fixed_cycles(
                trace, hierarchy, fetches_fixed=False,
                reads_fixed=not unified)
            cycles += counts[0] * f_hit + counts[1] * f_miss
            if unified:
                r_hit, r_miss = (out.cycles
                                 for out in hierarchy._data_out)
                cycles += counts[2] * r_hit + counts[3] * r_miss
            results.append(_result(trace, hierarchy, cycles))
    COUNTERS["sweep_passes"] += 1
    COUNTERS["sweep_points"] += len(configs)
    return results


def _sweep_walk(ops, tables, line, unified):
    """The single-pass multi-size kernel over the packed stream.

    ``prev`` is the block of the most recent *allocating* access
    (fetch/read).  Immediately after it, that block is the MRU line of
    its set in every candidate size, so a repeat access hits everywhere
    and no table needs touching — the case that dominates straight-line
    fetch runs.  Writes never allocate, so they check residency without
    perturbing the shared recency state.
    """
    prev = -1
    for value in ops:
        tag = value & 7
        if tag == 7:
            tag = 0  # continuation fetches price like plain fetches
        if tag and not unified:
            continue  # instruction cache: data bypasses every size
        block = (value >> 3) // line
        if tag == 0:
            if block == prev:
                for _last, _nsets, counts in tables:
                    counts[0] += 1
            else:
                prev = block
                for last, nsets, counts in tables:
                    index = block % nsets
                    if last[index] == block:
                        counts[0] += 1
                    else:
                        last[index] = block
                        counts[1] += 1
        elif tag < 4:
            if block == prev:
                for _last, _nsets, counts in tables:
                    counts[2] += 1
            else:
                prev = block
                for last, nsets, counts in tables:
                    index = block % nsets
                    if last[index] == block:
                        counts[2] += 1
                    else:
                        last[index] = block
                        counts[3] += 1
        else:
            if block == prev:
                for _last, _nsets, counts in tables:
                    counts[4] += 1
            else:
                for last, nsets, counts in tables:
                    if last[block % nsets] == block:
                        counts[4] += 1
                    else:
                        counts[5] += 1
