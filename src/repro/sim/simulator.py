"""Cycle-accurate T16 instruction-set simulator (the ARMulator role).

The simulator executes a linked :class:`~repro.link.image.Image` on a
chosen :class:`~repro.memory.hierarchy.SystemConfig` and reports the cycle
count under the shared timing model (:mod:`repro.memory.timing`):

* each instruction pays its 16-bit fetch at the pc (SPM / cache / main);
* loads and stores pay the data access at the operand width;
* PUSH/POP pay one 32-bit stack access per transferred register;
* taken branches pay the pipeline refill; MUL and SWI pay execute extras.

System calls (``swi``):

====== ==========================================
number behaviour
====== ==========================================
0      exit; r0 is the program's exit status
1      print r0 as a signed decimal (console)
2      print chr(r0 & 0xff) (console)
====== ==========================================

With ``profile=True`` the simulator counts fetches per instruction address
and data accesses per data address; :mod:`repro.sim.profile` aggregates
these to per-object counts, which drive the energy-based knapsack exactly
like the paper's profiling step does.

Two engines execute the same machine model:

* plain timing runs go through the **fast engine**
  (:mod:`repro.sim.engine`): per-instruction step closures compiled at
  predecode time, dispatched from a flat array, with plain-int memory
  costs from the hierarchy's fast path;
* ``profile=True`` / ``record_misses=True`` runs use the **recording
  loop** in this module, which allocates per-access outcome objects and
  per-address counters.

Both report bit-identical cycles, instruction counts, console output and
cache statistics (``tests/test_sim_fastpath.py`` asserts this for every
benchmark and hierarchy shape).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..isa.encoding import IllegalInstruction, decode
from ..isa.opcodes import Cond, Op
from ..memory.hierarchy import MemoryHierarchy, SystemConfig
from ..memory.regions import MAIN_BASE, STACK_TOP
from ..memory.timing import (
    BRANCH_REFILL_CYCLES,
    instruction_extra_cycles,
)
from ..link.image import Image
from .engine import compile_program

_MASK = 0xFFFFFFFF
_SIGN = 0x80000000


class SimError(Exception):
    """Simulation failed (fault, illegal instruction, runaway)."""


class MemoryFault(SimError):
    """Unaligned or unmapped memory access."""


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    cycles: int
    instructions: int
    exit_code: int
    console: list = field(default_factory=list)
    cache_stats: object = None
    #: level name -> CacheStats for every cache in the hierarchy.
    level_stats: dict = field(default_factory=dict)
    #: instruction address -> fetch count (profile runs only).
    fetch_counts: dict = field(default_factory=dict)
    #: data address -> access count (profile runs only).
    data_counts: dict = field(default_factory=dict)
    #: instruction address -> fetch miss count (cache configs only).
    fetch_misses: dict = field(default_factory=dict)
    #: instruction address -> fetches that missed *every* cache level
    #: and were served by main memory (cache configs only).
    fetch_main_misses: dict = field(default_factory=dict)
    #: instruction address -> data-read miss count (cache configs only).
    read_misses: dict = field(default_factory=dict)


class Simulator:
    """Executes one image on one memory hierarchy."""

    def __init__(self, image: Image, config: SystemConfig):
        self.image = image
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        self.ram = bytearray(STACK_TOP)
        for base, payload in image.segments:
            self.ram[base:base + len(payload)] = payload
        self.code = self._predecode()
        self._spm_limit = config.spm_size
        self.regs = [0] * 16
        self.n = self.z = self.c = self.v = 0
        self._engine = None  # compiled lazily on the first fast run

    # -- setup ---------------------------------------------------------------

    def _predecode(self):
        """Decode all code objects once; execution then never re-decodes.

        Valid because T16 programs are not self-modifying (all placement is
        fixed at link time — the very property the paper leans on).
        """
        code = {}
        for obj in self.image.code_objects:
            addr = obj.base
            while addr < obj.end:
                halfword = int.from_bytes(self.ram[addr:addr + 2], "little")
                nxt = None
                if addr + 4 <= obj.end:
                    nxt = int.from_bytes(self.ram[addr + 2:addr + 4],
                                         "little")
                try:
                    instr = decode(halfword, addr, nxt)
                except IllegalInstruction:
                    # Literal pool data inside the code object; skip a
                    # halfword.  Execution flow never reaches pools.
                    addr += 2
                    continue
                code[addr] = instr
                addr += instr.size
        return code

    # -- memory ---------------------------------------------------------------

    def _check(self, addr, width):
        if addr % width:
            raise MemoryFault(f"unaligned {width}-byte access at {addr:#x}")
        if addr < self._spm_limit:
            return
        if MAIN_BASE <= addr and addr + width <= STACK_TOP:
            return
        raise MemoryFault(f"access to unmapped address {addr:#x}")

    def read_mem(self, addr, width, signed=False):
        self._check(addr, width)
        value = int.from_bytes(self.ram[addr:addr + width], "little",
                               signed=signed)
        return value

    def write_mem(self, addr, width, value):
        self._check(addr, width)
        self.ram[addr:addr + width] = (value & ((1 << (8 * width)) - 1)
                                       ).to_bytes(width, "little")

    # -- flag helpers ----------------------------------------------------------

    def _set_nz(self, result):
        self.n = 1 if result & _SIGN else 0
        self.z = 1 if result == 0 else 0
        return result

    def _add_flags(self, a, b, carry_in=0):
        total = a + b + carry_in
        result = total & _MASK
        self.c = 1 if total > _MASK else 0
        self.v = 1 if (~(a ^ b) & (a ^ result)) & _SIGN else 0
        return self._set_nz(result)

    def _sub_flags(self, a, b, carry_in=1):
        # ARM subtract: result = a - b - (1 - carry_in)
        total = a - b - (1 - carry_in)
        result = total & _MASK
        self.c = 1 if total >= 0 else 0
        self.v = 1 if ((a ^ b) & (a ^ result)) & _SIGN else 0
        return self._set_nz(result)

    def _cond_true(self, cond):
        return _COND_DISPATCH[cond](self.n, self.z, self.c, self.v)

    # -- run -------------------------------------------------------------------

    def run(self, max_steps=50_000_000, profile=False,
            record_misses=False) -> SimResult:
        """Run from the image entry point until ``swi #0``.

        Plain timing runs execute on the compiled fast engine;
        ``profile=True`` / ``record_misses=True`` runs take the
        recording loop, which keeps per-address counters.
        """
        if profile or record_misses:
            return self._run_recording(max_steps, profile, record_misses)
        return self._run_fast(max_steps)

    def _run_fast(self, max_steps) -> SimResult:
        if self._engine is None:
            self._engine = compile_program(
                self.code, self.ram, self.hierarchy, self.regs,
                self._spm_limit, SimError, MemoryFault)
        regs = self.regs
        regs[13] = STACK_TOP
        regs[14] = 0
        engine = self._engine
        # Flags cross the engine boundary in both directions (the engine
        # uses a truthiness encoding internally; see engine docstring).
        flags = engine.flags
        flags[0] = _SIGN if self.n else 0
        flags[1] = self.z
        flags[2] = self.c
        flags[3] = _SIGN if self.v else 0
        cycles, steps, exit_code = engine.run(self.image.entry, max_steps)
        self.n = 1 if flags[0] else 0
        self.z = 1 if flags[1] else 0
        self.c = 1 if flags[2] else 0
        self.v = 1 if flags[3] else 0
        hierarchy = self.hierarchy
        hierarchy.flush_fast_stats()
        return SimResult(
            cycles=cycles,
            instructions=steps,
            exit_code=exit_code,
            console=list(engine.console),
            cache_stats=hierarchy.cache_stats,
            level_stats=hierarchy.level_stats,
        )

    def _run_recording(self, max_steps, profile, record_misses) -> SimResult:
        regs = self.regs
        regs[13] = STACK_TOP
        regs[14] = 0
        pc = self.image.entry
        code = self.code
        hierarchy = self.hierarchy
        console = []
        cycles = 0
        steps = 0
        exit_code = None
        fetch_counts = Counter()
        data_counts = Counter()
        fetch_misses = Counter()
        fetch_main_misses = Counter()
        read_misses = Counter()

        def data_read(instr_pc, addr, width, signed=False):
            nonlocal cycles
            value = self.read_mem(addr, width, signed)
            outcome = hierarchy.read(addr, width)
            cycles += outcome.cycles
            if profile:
                data_counts[addr] += 1
            if record_misses and outcome.missed:
                read_misses[instr_pc] += 1
            return value

        def data_write(addr, width, value):
            nonlocal cycles
            self.write_mem(addr, width, value)
            cycles += hierarchy.write(addr, width).cycles
            if profile:
                data_counts[addr] += 1

        while steps < max_steps:
            instr = code.get(pc)
            if instr is None:
                raise SimError(f"pc escaped code objects: {pc:#x}")
            fetch = hierarchy.fetch(pc)
            fetch_missed = fetch.missed
            from_main = fetch_missed and fetch.served_by == "main"
            cycles += fetch.cycles
            if instr.size == 4:  # BL is two halfword fetches
                second = hierarchy.fetch(pc + 2)
                fetch_missed = fetch_missed or second.missed
                from_main = from_main or (
                    second.missed and second.served_by == "main")
                cycles += second.cycles
            if profile:
                fetch_counts[pc] += 1
            if record_misses and fetch_missed:
                fetch_misses[pc] += 1
                if from_main:
                    fetch_main_misses[pc] += 1
            steps += 1
            op = instr.op
            next_pc = pc + instr.size

            if op is Op.MOVI:
                regs[instr.rd] = self._set_nz(instr.imm)
            elif op is Op.CMPI:
                self._sub_flags(regs[instr.rd], instr.imm)
            elif op is Op.ADDI:
                regs[instr.rd] = self._add_flags(regs[instr.rd], instr.imm)
            elif op is Op.SUBI:
                regs[instr.rd] = self._sub_flags(regs[instr.rd], instr.imm)
            elif op is Op.ADDR:
                regs[instr.rd] = self._add_flags(regs[instr.rn],
                                                 regs[instr.rm])
            elif op is Op.SUBR:
                regs[instr.rd] = self._sub_flags(regs[instr.rn],
                                                 regs[instr.rm])
            elif op is Op.ADD3:
                regs[instr.rd] = self._add_flags(regs[instr.rn], instr.imm)
            elif op is Op.SUB3:
                regs[instr.rd] = self._sub_flags(regs[instr.rn], instr.imm)
            elif op is Op.LSLI:
                value = regs[instr.rm]
                amount = instr.imm
                if amount:
                    self.c = (value >> (32 - amount)) & 1
                regs[instr.rd] = self._set_nz((value << amount) & _MASK)
            elif op is Op.LSRI:
                value = regs[instr.rm]
                amount = instr.imm
                if amount:
                    self.c = (value >> (amount - 1)) & 1
                regs[instr.rd] = self._set_nz(value >> amount)
            elif op is Op.ASRI:
                value = regs[instr.rm]
                amount = instr.imm
                signed = value - (1 << 32) if value & _SIGN else value
                if amount:
                    self.c = (signed >> (amount - 1)) & 1
                regs[instr.rd] = self._set_nz((signed >> amount) & _MASK)
            elif op is Op.MOVR:
                regs[instr.rd] = self._set_nz(regs[instr.rm])
            elif op in _ALU_HANDLERS:
                _ALU_HANDLERS[op](self, instr)
            elif op is Op.LDRPC:
                base = (pc + 4) & ~3
                regs[instr.rd] = data_read(pc, base + instr.imm, 4)
            elif op is Op.ADDPC:
                regs[instr.rd] = (((pc + 4) & ~3) + instr.imm) & _MASK
            elif op is Op.LDRSP:
                regs[instr.rd] = data_read(pc, regs[13] + instr.imm, 4)
            elif op is Op.STRSP:
                data_write(regs[13] + instr.imm, 4, regs[instr.rd])
            elif op is Op.ADDSPI:
                regs[instr.rd] = (regs[13] + instr.imm) & _MASK
            elif op is Op.SPADJ:
                regs[13] = (regs[13] + instr.imm) & _MASK
            elif op is Op.LDRWI:
                regs[instr.rd] = data_read(pc, regs[instr.rn] + instr.imm, 4)
            elif op is Op.STRWI:
                data_write(regs[instr.rn] + instr.imm, 4, regs[instr.rd])
            elif op is Op.LDRHI:
                regs[instr.rd] = data_read(pc, regs[instr.rn] + instr.imm, 2)
            elif op is Op.STRHI:
                data_write(regs[instr.rn] + instr.imm, 2, regs[instr.rd])
            elif op is Op.LDRBI:
                regs[instr.rd] = data_read(pc, regs[instr.rn] + instr.imm, 1)
            elif op is Op.STRBI:
                data_write(regs[instr.rn] + instr.imm, 1, regs[instr.rd])
            elif op is Op.LDRW_R:
                regs[instr.rd] = data_read(
                    pc, (regs[instr.rn] + regs[instr.rm]) & _MASK, 4)
            elif op is Op.STRW_R:
                data_write((regs[instr.rn] + regs[instr.rm]) & _MASK, 4,
                           regs[instr.rd])
            elif op is Op.LDRH_R:
                regs[instr.rd] = data_read(
                    pc, (regs[instr.rn] + regs[instr.rm]) & _MASK, 2)
            elif op is Op.STRH_R:
                data_write((regs[instr.rn] + regs[instr.rm]) & _MASK, 2,
                           regs[instr.rd])
            elif op is Op.LDRB_R:
                regs[instr.rd] = data_read(
                    pc, (regs[instr.rn] + regs[instr.rm]) & _MASK, 1)
            elif op is Op.STRB_R:
                data_write((regs[instr.rn] + regs[instr.rm]) & _MASK, 1,
                           regs[instr.rd])
            elif op is Op.LDRSH_R:
                regs[instr.rd] = data_read(
                    pc, (regs[instr.rn] + regs[instr.rm]) & _MASK, 2,
                    signed=True) & _MASK
            elif op is Op.LDRSB_R:
                regs[instr.rd] = data_read(
                    pc, (regs[instr.rn] + regs[instr.rm]) & _MASK, 1,
                    signed=True) & _MASK
            elif op is Op.PUSH:
                count = len(instr.reglist) + (1 if instr.with_link else 0)
                sp = regs[13] - 4 * count
                regs[13] = sp
                addr = sp
                for reg in instr.reglist:
                    data_write(addr, 4, regs[reg])
                    addr += 4
                if instr.with_link:
                    data_write(addr, 4, regs[14])
            elif op is Op.POP:
                addr = regs[13]
                for reg in instr.reglist:
                    regs[reg] = data_read(pc, addr, 4)
                    addr += 4
                if instr.with_link:
                    next_pc = data_read(pc, addr, 4) & ~1
                    addr += 4
                    cycles += BRANCH_REFILL_CYCLES
                regs[13] = addr
            elif op is Op.B:
                next_pc = instr.target
                cycles += BRANCH_REFILL_CYCLES
            elif op is Op.BCC:
                if self._cond_true(instr.cond):
                    next_pc = instr.target
                    cycles += BRANCH_REFILL_CYCLES
            elif op is Op.BL:
                regs[14] = pc + 4
                next_pc = instr.target
                cycles += BRANCH_REFILL_CYCLES
            elif op is Op.BX:
                next_pc = regs[instr.rm] & ~1
                cycles += BRANCH_REFILL_CYCLES
            elif op is Op.SWI:
                cycles += instruction_extra_cycles(op)
                number = instr.imm
                if number == 0:
                    exit_code = regs[0]
                    break
                if number == 1:
                    value = regs[0]
                    if value & _SIGN:
                        value -= 1 << 32
                    console.append(str(value))
                elif number == 2:
                    console.append(chr(regs[0] & 0xFF))
                else:
                    raise SimError(f"unknown swi #{number} at {pc:#x}")
            elif op is Op.NOP:
                pass
            else:
                raise SimError(f"unhandled op {op!r} at {pc:#x}")

            if op is Op.MUL:
                cycles += instruction_extra_cycles(op)
            pc = next_pc
        else:
            raise SimError(f"exceeded {max_steps} steps (runaway program?)")

        return SimResult(
            cycles=cycles,
            instructions=steps,
            exit_code=exit_code,
            console=console,
            cache_stats=hierarchy.cache_stats,
            level_stats=hierarchy.level_stats,
            fetch_counts=fetch_counts,
            data_counts=data_counts,
            fetch_misses=fetch_misses,
            fetch_main_misses=fetch_main_misses,
            read_misses=read_misses,
        )


# -- two-address ALU handlers (module-level for a flat dispatch dict) ---------

def _h_and(sim, instr):
    sim.regs[instr.rd] = sim._set_nz(sim.regs[instr.rd] & sim.regs[instr.rm])


def _h_eor(sim, instr):
    sim.regs[instr.rd] = sim._set_nz(sim.regs[instr.rd] ^ sim.regs[instr.rm])


def _h_orr(sim, instr):
    sim.regs[instr.rd] = sim._set_nz(sim.regs[instr.rd] | sim.regs[instr.rm])


def _h_bic(sim, instr):
    sim.regs[instr.rd] = sim._set_nz(
        sim.regs[instr.rd] & ~sim.regs[instr.rm] & _MASK)


def _h_mvn(sim, instr):
    sim.regs[instr.rd] = sim._set_nz(~sim.regs[instr.rm] & _MASK)


def _h_tst(sim, instr):
    sim._set_nz(sim.regs[instr.rd] & sim.regs[instr.rm])


def _h_neg(sim, instr):
    sim.regs[instr.rd] = sim._sub_flags(0, sim.regs[instr.rm])


def _h_cmp(sim, instr):
    sim._sub_flags(sim.regs[instr.rd], sim.regs[instr.rm])


def _h_cmn(sim, instr):
    sim._add_flags(sim.regs[instr.rd], sim.regs[instr.rm])


def _h_adc(sim, instr):
    sim.regs[instr.rd] = sim._add_flags(
        sim.regs[instr.rd], sim.regs[instr.rm], sim.c)


def _h_sbc(sim, instr):
    sim.regs[instr.rd] = sim._sub_flags(
        sim.regs[instr.rd], sim.regs[instr.rm], sim.c)


def _h_mul(sim, instr):
    sim.regs[instr.rd] = sim._set_nz(
        (sim.regs[instr.rd] * sim.regs[instr.rm]) & _MASK)


def _shift_amount(sim, instr):
    return sim.regs[instr.rm] & 0xFF


def _h_lsl(sim, instr):
    amount = _shift_amount(sim, instr)
    value = sim.regs[instr.rd]
    if amount == 0:
        sim._set_nz(value)
        return
    if amount <= 32:
        sim.c = (value >> (32 - amount)) & 1
        result = (value << amount) & _MASK
    else:
        sim.c = 0
        result = 0
    sim.regs[instr.rd] = sim._set_nz(result)


def _h_lsr(sim, instr):
    amount = _shift_amount(sim, instr)
    value = sim.regs[instr.rd]
    if amount == 0:
        sim._set_nz(value)
        return
    if amount <= 32:
        sim.c = (value >> (amount - 1)) & 1
        result = value >> amount
    else:
        sim.c = 0
        result = 0
    sim.regs[instr.rd] = sim._set_nz(result)


def _h_asr(sim, instr):
    amount = _shift_amount(sim, instr)
    value = sim.regs[instr.rd]
    signed = value - (1 << 32) if value & _SIGN else value
    if amount == 0:
        sim._set_nz(value)
        return
    if amount >= 32:
        amount = 32
    sim.c = (signed >> (amount - 1)) & 1
    sim.regs[instr.rd] = sim._set_nz((signed >> amount) & _MASK)


def _h_ror(sim, instr):
    amount = _shift_amount(sim, instr) % 32
    value = sim.regs[instr.rd]
    if amount:
        value = ((value >> amount) | (value << (32 - amount))) & _MASK
        sim.c = (value >> 31) & 1
    sim.regs[instr.rd] = sim._set_nz(value)


_ALU_HANDLERS = {
    Op.AND: _h_and, Op.EOR: _h_eor, Op.ORR: _h_orr, Op.BIC: _h_bic,
    Op.MVN: _h_mvn, Op.TST: _h_tst, Op.NEG: _h_neg, Op.CMP: _h_cmp,
    Op.CMN: _h_cmn, Op.ADC: _h_adc, Op.SBC: _h_sbc, Op.MUL: _h_mul,
    Op.LSL: _h_lsl, Op.LSR: _h_lsr, Op.ASR: _h_asr, Op.ROR: _h_ror,
}


#: Condition -> predicate over (n, z, c, v); AL is unconditionally true.
_COND_DISPATCH = {
    Cond.EQ: lambda n, z, c, v: z == 1,
    Cond.NE: lambda n, z, c, v: z == 0,
    Cond.HS: lambda n, z, c, v: c == 1,
    Cond.LO: lambda n, z, c, v: c == 0,
    Cond.MI: lambda n, z, c, v: n == 1,
    Cond.PL: lambda n, z, c, v: n == 0,
    Cond.VS: lambda n, z, c, v: v == 1,
    Cond.VC: lambda n, z, c, v: v == 0,
    Cond.HI: lambda n, z, c, v: c == 1 and z == 0,
    Cond.LS: lambda n, z, c, v: c == 0 or z == 1,
    Cond.GE: lambda n, z, c, v: n == v,
    Cond.LT: lambda n, z, c, v: n != v,
    Cond.GT: lambda n, z, c, v: z == 0 and n == v,
    Cond.LE: lambda n, z, c, v: z == 1 or n != v,
    Cond.AL: lambda n, z, c, v: True,
}


def simulate(image: Image, config: SystemConfig, **kwargs) -> SimResult:
    """Convenience wrapper: build a Simulator and run it."""
    return Simulator(image, config).run(**kwargs)
