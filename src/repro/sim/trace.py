"""Recorded dynamic access traces: execute once, replay per config.

The paper's ARMulator setup has a property this module turns into a
performance lever: the modelled core has no timing-dependent behaviour,
so the dynamic instruction/access stream of an executable is *identical*
under every memory configuration — SPM, cache shapes, deeper pipelines —
that is compatible with the image's placement.  Memory timing decides
how many cycles each access costs, never which access happens next.

A :class:`Trace` is therefore recorded **once per image** by the flat-
array execution engine (:mod:`repro.sim.engine` stays the ground truth
— the recorder is the same compiled program, just with a cost tap that
appends to the trace instead of probing tag arrays) and then served to
:mod:`repro.sim.replay`, which re-prices it under any number of
:class:`~repro.memory.hierarchy.SystemConfig` shapes at tag-array speed,
bit-identical to re-executing.

Contents, packed for tight replay loops:

* ``ops`` — the interleaved fetch/read/write stream of every access that
  reaches the cache pipeline, one ``array('Q')`` word per access:
  ``addr << 3 | tag`` with the tag encoding kind and width (fetches are
  always 2 bytes wide, so one tag suffices for them).  The second
  halfword of a 32-bit instruction (BL) carries its own tag
  (:data:`TAG_FETCH_CONT`), so every fetch entry names the pc of the
  instruction it belongs to — ``addr`` for plain fetches, ``addr - 2``
  for continuations — and replay kernels can attribute misses per
  instruction exactly like the recording engine does
  (:func:`~repro.sim.replay.replay_misses`);
* ``op_counts`` / ``spm_counts`` — per-tag totals of the main-memory
  stream and of the SPM-resident accesses.  SPM hits bypass every cache
  level and cost a fixed per-width amount, so they never need to be
  walked — aggregate counts price them in O(1) (and keep hybrid traces
  small);
* ``base_cycles`` — the config-independent cycle component: branch
  refills plus the MUL/SWI execute extras;
* ``instructions``, ``exit_code``, ``console`` — the architectural
  results every replay re-reports.

Traces are content-addressed via :meth:`~repro.link.image.Image.
content_key` through an in-process table plus an optional shared on-disk
layer (:func:`set_trace_cache_dir`), mirroring the PR-4 analysis reuse
cache; ``repro-cc trace --profile`` dumps the counters.
"""

from __future__ import annotations

from array import array

from ..memory.hierarchy import SystemConfig
from ..memory.regions import STACK_TOP
from ..store import STORE_COUNTER_KEYS, ArtifactStore, LRUCache, env_capacity
from .engine import compile_program
from .simulator import MemoryFault, SimError, Simulator

#: Access-kind tags in the packed ``ops`` stream (low 3 bits).
TAG_FETCH = 0
READ_TAGS = {1: 1, 2: 2, 4: 3}
WRITE_TAGS = {1: 4, 2: 5, 4: 6}
#: Fetch of the second halfword of a 32-bit instruction; the owning
#: instruction's pc is ``addr - 2``.  Priced exactly like TAG_FETCH.
TAG_FETCH_CONT = 7

#: Tags priced as instruction fetches (16-bit wide).
FETCH_TAGS = (TAG_FETCH, TAG_FETCH_CONT)

#: tag -> access width in bytes (fetches are 16-bit).
TAG_WIDTH = (2, 1, 2, 4, 1, 2, 4, 2)

#: Bump when the trace layout or recording semantics change: stale
#: on-disk entries then miss instead of corrupting replays.
#: trace-2: continuation fetches carry TAG_FETCH_CONT and the per-tag
#: count tuples grew to 8 entries.
#: trace-3: traces pickle in run-length-encoded form (same-line runs
#: and stride-2 fetch/data runs collapse to one record each).
_TRACE_VERSION = "trace-3"

COUNTERS = {
    "trace_hits": 0,
    "trace_misses": 0,
    "trace_disk_hits": 0,
    "trace_records": 0,
    "replay_runs": 0,
    "miss_replays": 0,
    "sweep_passes": 0,
    "sweep_points": 0,
    "grid_passes": 0,
    "grid_points": 0,
    # Which backend served each replay/sweep/grid pass
    # (:mod:`repro.sim.kernels` selection; `repro-cc trace --profile`).
    "replay_scalar": 0,
    "replay_numpy": 0,
    "sweep_scalar": 0,
    "sweep_numpy": 0,
    "grid_scalar": 0,
    "grid_numpy": 0,
    # Bounded-memory in-process layers (PR 8): evictions from the
    # trace LRU and from the per-trace kernel memos.
    "trace_evictions": 0,
    "memo_evictions": 0,
}


def _count_trace_eviction():
    COUNTERS["trace_evictions"] += 1


def _count_memo_eviction():
    COUNTERS["memo_evictions"] += 1


#: In-process trace table: bounded LRU (traces are the largest objects
#: the process holds on to; REPRO_TRACE_CACHE_CAP / 0 = unbounded).
_TRACE_CACHE = LRUCache(env_capacity("REPRO_TRACE_CACHE_CAP", 64),
                        on_evict=_count_trace_eviction)

#: Shared on-disk layer (:class:`repro.store.ArtifactStore`), or None.
_TRACE_STORE = None

#: Per-trace replay-kernel memo bound (entries are stream reductions
#: comparable in size to the trace itself; REPRO_STREAM_MEMO_CAP).
_MEMO_CAP = env_capacity("REPRO_STREAM_MEMO_CAP", 16)


def _new_memo():
    return LRUCache(_MEMO_CAP, on_evict=_count_memo_eviction)


class Trace:
    """One image's dynamic access stream plus its fixed cycle base.

    The stream has two interchangeable storage forms: the flat packed
    ``ops`` array the replay kernels walk, and a line-granular
    run-length encoding (:meth:`runs`) where consecutive accesses with
    the same tag and either an identical address or a +2-byte stride
    (straight-line fetch runs, halfword array sweeps) collapse into one
    ``(first_value, count, stride)`` record.  A run is stored in 8
    bytes — an ``int32`` delta from the previous run's first value plus
    a ``uint32`` ``count << 1 | stride`` word — so the encoding never
    exceeds the flat stream and shrinks it whenever any run is longer
    than one.  The encoding is lossless; :meth:`compact` drops the flat
    form (the ``ops`` property re-expands lazily, numpy-accelerated
    when available), and pickling stores the compact form — that is
    what shrinks the on-disk trace cache and worker-to-worker
    transfers.  Foreign ingested streams whose deltas overflow 32 bits
    stay flat (:meth:`runs` returns None).

    ``_memo`` caches config-independent stream reductions computed by
    the vectorised replay kernels (:mod:`repro.sim.kernels`): block-id
    vectors, kind masks, same-block-shortcut survivors.  It is private
    to the kernels, never pickled, and rebuilt on demand.
    """

    __slots__ = ("_ops", "_runs", "_memo", "op_counts", "spm_counts",
                 "base_cycles", "instructions", "exit_code", "console",
                 "spm_size")

    def __init__(self, ops, op_counts, spm_counts, base_cycles,
                 instructions, exit_code, console, spm_size):
        self._ops = ops
        self._runs = None
        self._memo = _new_memo()
        self.op_counts = op_counts
        self.spm_counts = spm_counts
        self.base_cycles = base_cycles
        self.instructions = instructions
        self.exit_code = exit_code
        self.console = console
        self.spm_size = spm_size

    @property
    def ops(self):
        """The flat packed stream, re-expanded from runs if compacted."""
        ops = self._ops
        if ops is None:
            ops = self._ops = _expand_runs(*self._runs)
        return ops

    def runs(self):
        """``(base, heads, packed)`` run arrays; encoded on first use.

        ``base`` is the first run's absolute packed value; ``heads[i]``
        is run *i*'s ``int32`` delta from run *i-1*'s first value
        (``heads[0]`` is 0); ``packed[i]`` is ``count << 1 | (1 if the
        address strides by 2 per repeat)``.  Returns None when the
        stream does not encode (a foreign trace whose deltas overflow
        32 bits) — the flat form is kept then.
        """
        if self._runs is None:
            self._runs = _compress_ops(self._ops) or _NO_RUNS
        return None if self._runs is _NO_RUNS else self._runs

    def iter_runs(self):
        """Yield ``(first_value, count, stride_flag)`` per run.

        Unencodable streams fall back to one singleton run per op.
        """
        runs = self.runs()
        if runs is None:
            for value in self.ops:
                yield value, 1, 0
            return
        base, heads, packed = runs
        value = base
        for head, record in zip(heads, packed):
            value += head
            yield value, record >> 1, record & 1

    def compact(self) -> "Trace":
        """Keep only the run-length form; ``ops`` re-expands lazily."""
        if self.runs() is not None:
            self._ops = None
        return self

    def __getstate__(self):
        rest = (self.op_counts, self.spm_counts, self.base_cycles,
                self.instructions, self.exit_code, self.console,
                self.spm_size)
        runs = self.runs()
        if runs is None:
            return ("flat", self._ops) + rest
        return ("runs",) + runs + rest

    def __setstate__(self, state):
        if state[0] == "runs":
            self._ops = None
            self._runs = state[1:4]
            rest = state[4:]
        else:
            self._ops = state[1]
            self._runs = _NO_RUNS
            rest = state[2:]
        (self.op_counts, self.spm_counts, self.base_cycles,
         self.instructions, self.exit_code, self.console,
         self.spm_size) = rest
        self._memo = _new_memo()

    @property
    def accesses(self) -> int:
        """Total dynamic accesses, SPM-resident ones included."""
        return sum(self.op_counts) + sum(self.spm_counts)

    def counts_by_kind(self):
        """``(fetches, reads, writes)`` over the whole stream."""
        totals = [a + b for a, b in zip(self.op_counts, self.spm_counts)]
        return (totals[0] + totals[7], sum(totals[1:4]), sum(totals[4:7]))


#: Address stride of a packed run record, in ``addr << 3`` units: a
#: +2-byte stride (consecutive halfword fetches, halfword array walks)
#: is +16 on the packed value, tag bits untouched.
_RUN_STRIDE = 16

#: Sentinel stored in ``Trace._runs`` when the stream does not encode.
_NO_RUNS = object()

_HEAD_MIN = -(1 << 31)
_HEAD_MAX = (1 << 31) - 1


def _compress_ops(ops):
    """Greedy lossless RLE into ``(base, heads, packed)`` delta arrays.

    8 bytes per run: the ``int32`` delta of the run's first value from
    the previous run's first value, and ``count << 1 | stride`` as
    ``uint32``.  Returns None when a delta or count overflows 32 bits
    (only possible for ingested foreign streams) — callers keep the
    flat form then.
    """
    heads = array("i")
    packed = array("I")
    if heads.itemsize != 4 or packed.itemsize != 4:  # pragma: no cover
        return None
    n = len(ops)
    if not n:
        return 0, heads, packed
    base = ops[0]
    prev = base
    i = 0
    while i < n:
        first = ops[i]
        k = i + 1
        step = 0
        if k < n:
            delta = ops[k] - first
            if delta == 0 or delta == _RUN_STRIDE:
                step = delta
                expect = first + 2 * step
                k += 1
                while k < n and ops[k] == expect:
                    expect += step
                    k += 1
        head = first - prev
        if not (_HEAD_MIN <= head <= _HEAD_MAX and k - i <= _HEAD_MAX):
            return None
        heads.append(head)
        packed.append(((k - i) << 1) | (1 if step else 0))
        prev = first
        i = k
    return base, heads, packed


def _expand_runs(base, heads, packed):
    """Decode :func:`_compress_ops` output back into a flat stream."""
    from . import kernels
    if kernels.have_numpy():
        return kernels.expand_runs(base, heads, packed)
    ops = array("Q")
    extend = ops.extend
    append = ops.append
    first = base
    for head, record in zip(heads, packed):
        first += head
        count = record >> 1
        if record & 1:
            extend(range(first, first + count * _RUN_STRIDE,
                         _RUN_STRIDE))
        elif count == 1:
            append(first)
        else:
            extend([first] * count)
    return ops


class _TraceTap:
    """Hierarchy stand-in for the engine: records accesses at zero cost.

    Exposes the same two factories the engine compiles against
    (:meth:`fetch_fast_factory` / :meth:`data_fast_ops`); every closure
    appends the access to the packed stream (or bumps the SPM-resident
    counter) and returns 0 cycles, so the engine's cycle box accumulates
    exactly the config-independent base: refills and execute extras.
    """

    def __init__(self, spm_end: int, cont_addrs=frozenset()):
        self.spm_end = spm_end
        self.cont_addrs = cont_addrs
        self.ops = array("Q")
        self.spm_counts = [0] * 8

    def fetch_fast_factory(self):
        spm_end = self.spm_end
        cont_addrs = self.cont_addrs
        append = self.ops.append
        spm_counts = self.spm_counts

        def make(addr):
            tag = TAG_FETCH_CONT if addr in cont_addrs else TAG_FETCH
            if 0 <= addr < spm_end:
                def fetch():
                    spm_counts[tag] += 1
                    return 0
                return fetch
            packed = (addr << 3) | tag

            def fetch():
                append(packed)
                return 0
            return fetch
        return make

    def data_fast_ops(self):
        spm_end = self.spm_end
        append = self.ops.append
        spm_counts = self.spm_counts
        read_tags, write_tags = READ_TAGS, WRITE_TAGS

        def dread(addr, width):
            if 0 <= addr < spm_end:
                spm_counts[read_tags[width]] += 1
            else:
                append((addr << 3) | read_tags[width])
            return 0

        def dwrite(addr, width):
            if 0 <= addr < spm_end:
                spm_counts[write_tags[width]] += 1
            else:
                append((addr << 3) | write_tags[width])
            return 0

        return dread, dwrite


def record_trace(image, spm_size: int = None,
                 max_steps: int = 50_000_000) -> Trace:
    """Execute *image* once on the engine and record its access stream.

    *spm_size* is the scratchpad capacity the image was linked against
    (``None`` derives it from the image's own placement); it fixes the
    SPM/main address split, which every compatible replay config shares
    by construction — cache shapes behind that split are free to vary.
    """
    if spm_size is None:
        spm_size = _image_spm_size(image)
    config = (SystemConfig.scratchpad(spm_size) if spm_size
              else SystemConfig.uncached())
    sim = Simulator(image, config)
    cont_addrs = frozenset(addr + 2 for addr, instr in sim.code.items()
                           if instr.size == 4)
    tap = _TraceTap(spm_size, cont_addrs)
    program = compile_program(sim.code, sim.ram, tap, sim.regs,
                              sim._spm_limit, SimError, MemoryFault)
    regs = sim.regs
    regs[13] = STACK_TOP
    regs[14] = 0
    base_cycles, steps, exit_code = program.run(image.entry, max_steps)
    op_counts = [0] * 8
    for value in tap.ops:
        op_counts[value & 7] += 1
    COUNTERS["trace_records"] += 1
    return Trace(ops=tap.ops, op_counts=tuple(op_counts),
                 spm_counts=tuple(tap.spm_counts),
                 base_cycles=base_cycles, instructions=steps,
                 exit_code=exit_code, console=tuple(program.console),
                 spm_size=spm_size)


def _image_spm_size(image) -> int:
    """Smallest SPM capacity covering the image's scratchpad objects."""
    return max((obj.end for obj in image.objects
                if obj.region == "scratchpad"), default=0)


# -- the content-addressed trace cache --------------------------------------

def set_trace_cache_dir(path, max_bytes=None):
    """Enable (or with None disable) the shared on-disk trace layer.

    The layer is a checksummed, corruption-quarantining
    :class:`repro.store.ArtifactStore`; *max_bytes* optionally caps it
    with mtime-LRU garbage collection.
    """
    global _TRACE_STORE
    _TRACE_STORE = (None if path is None else
                    ArtifactStore(path, suffix=".trace.pkl",
                                  max_bytes=max_bytes))


def set_trace_store(store):
    """Install a prebuilt store object as the on-disk trace layer.

    The cluster tier passes a
    :class:`repro.store.ShardedArtifactStore` here; anything with the
    ``load`` / ``store`` / ``counters`` surface works.  ``None``
    disables the layer, same as ``set_trace_cache_dir(None)``.
    """
    global _TRACE_STORE
    _TRACE_STORE = store


def trace_cache_dir():
    return None if _TRACE_STORE is None else _TRACE_STORE.root


def trace_store():
    """The on-disk :class:`~repro.store.ArtifactStore`, or None."""
    return _TRACE_STORE


def set_trace_cache_capacity(capacity):
    """Bound (or with None unbound) the in-process trace table."""
    _TRACE_CACHE.set_capacity(capacity)


def set_stream_memo_capacity(capacity):
    """Per-trace kernel-memo bound for traces created afterwards."""
    global _MEMO_CAP
    _MEMO_CAP = capacity


def clear_trace_caches():
    """Drop every in-memory trace (the disk layer is untouched)."""
    _TRACE_CACHE.clear()


def trace_counters() -> dict:
    """The in-process counters plus the disk store's, one flat dict."""
    merged = dict(COUNTERS)
    store_counts = (_TRACE_STORE.counters if _TRACE_STORE is not None
                    else dict.fromkeys(STORE_COUNTER_KEYS, 0))
    for key in STORE_COUNTER_KEYS:
        merged[f"trace_store_{key}"] = store_counts[key]
    return merged


def trace_for(image, spm_size: int = None,
              max_steps: int = 50_000_000) -> Trace:
    """The recorded trace for *image*, recording on first use.

    Keyed by the image content hash (plus the SPM split), so relinking
    the same program — or any placement change at all — invalidates
    automatically.  A trace recorded under a larger step budget is valid
    under a smaller one only if the run fit; :func:`~repro.sim.replay.
    replay` re-checks ``instructions <= max_steps`` and raises the same
    runaway error the engine would.
    """
    if spm_size is None:
        spm_size = _image_spm_size(image)
    key = (_TRACE_VERSION, image.content_key(), spm_size)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        COUNTERS["trace_hits"] += 1
        return trace
    if _TRACE_STORE is not None:
        # The store verifies the envelope checksum before unpickling;
        # corrupt entries are quarantined and counted, never served.
        trace = _TRACE_STORE.load(key)
        if trace is not None:
            _TRACE_CACHE[key] = trace
            COUNTERS["trace_hits"] += 1
            COUNTERS["trace_disk_hits"] += 1
            return trace
    COUNTERS["trace_misses"] += 1
    trace = record_trace(image, spm_size, max_steps)
    _TRACE_CACHE[key] = trace
    if _TRACE_STORE is not None:
        _TRACE_STORE.store(key, trace)
    return trace
