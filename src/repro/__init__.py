"""repro — reproduction of Wehmeyer & Marwedel, DATE 2005.

"Influence of Memory Hierarchies on Predictability for Time Constrained
Embedded Software": scratchpad memories vs. caches under WCET analysis.

The package provides the full tool stack the paper's workflow (Figure 1)
relies on, implemented from scratch:

* :mod:`repro.isa` — T16, a THUMB-like 16-bit target ISA
* :mod:`repro.minic` — a mini-C compiler targeting T16
* :mod:`repro.link` — per-object linker (functions/globals are relocatable)
* :mod:`repro.memory` — memory map, Table-1 timing, cache models
* :mod:`repro.sim` — cycle-accurate instruction-set simulator (ARMulator role)
* :mod:`repro.ilp` — simplex + branch-and-bound ILP solver (CPLEX role)
* :mod:`repro.wcet` — static WCET analyser (aiT role): CFG reconstruction,
  loop bounds, cache must/persistence analysis, IPET
* :mod:`repro.spm` — static scratchpad allocation (knapsack ILP)
* :mod:`repro.energy` — instruction-level energy model (knapsack benefit)
* :mod:`repro.benchmarks` — G.721, ADPCM and MultiSort in mini-C (Table 2)
* :mod:`repro.workflow` — the Figure-1 pipelines
* :mod:`repro.experiments` — regeneration of every table and figure
"""

__version__ = "1.0.0"
