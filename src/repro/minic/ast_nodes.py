"""AST node definitions for mini-C."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Node:
    line: int = 0


# -- expressions -------------------------------------------------------------

@dataclass
class IntLit(Node):
    value: int = 0
    unsigned: bool = False
    type: object = None


@dataclass
class VarRef(Node):
    name: str = ""
    # Filled by sema:
    symbol: object = None
    type: object = None


@dataclass
class Index(Node):
    base: object = None     # VarRef (array or pointer)
    index: object = None
    type: object = None


@dataclass
class Call(Node):
    name: str = ""
    args: list = field(default_factory=list)
    type: object = None


@dataclass
class Unary(Node):
    op: str = ""             # '-', '~', '!'
    operand: object = None
    type: object = None


@dataclass
class Binary(Node):
    op: str = ""             # + - * / % << >> & | ^ < <= > >= == != && ||
    left: object = None
    right: object = None
    type: object = None
    #: comparison/shift/divide signedness decided by sema
    signed: bool = True


@dataclass
class Assign(Node):
    target: object = None    # VarRef or Index
    value: object = None
    type: object = None


@dataclass
class Ternary(Node):
    cond: object = None
    then: object = None
    other: object = None
    type: object = None


@dataclass
class Cast(Node):
    to: object = None        # ScalarType
    operand: object = None
    type: object = None


# -- statements ----------------------------------------------------------------

@dataclass
class Block(Node):
    body: list = field(default_factory=list)


@dataclass
class ExprStmt(Node):
    expr: object = None


@dataclass
class If(Node):
    cond: object = None
    then: object = None
    other: object = None


@dataclass
class While(Node):
    cond: object = None
    body: object = None
    pragma_bound: Optional[int] = None
    pragma_total: Optional[int] = None
    bound: Optional[int] = None        # back-edge bound per entry (sema)
    bound_total: Optional[int] = None  # back-edge bound per invocation


@dataclass
class DoWhile(Node):
    body: object = None
    cond: object = None
    pragma_bound: Optional[int] = None
    pragma_total: Optional[int] = None
    bound: Optional[int] = None
    bound_total: Optional[int] = None


@dataclass
class For(Node):
    init: object = None      # ExprStmt / LocalDecl / None
    cond: object = None
    update: object = None    # expression or None
    body: object = None
    pragma_bound: Optional[int] = None
    pragma_total: Optional[int] = None
    bound: Optional[int] = None
    bound_total: Optional[int] = None


@dataclass
class Return(Node):
    value: object = None


@dataclass
class Break(Node):
    pass


@dataclass
class Continue(Node):
    pass


@dataclass
class LocalDecl(Node):
    name: str = ""
    type: object = None
    init: object = None
    symbol: object = None


# -- declarations -----------------------------------------------------------------

@dataclass
class Param(Node):
    name: str = ""
    type: object = None
    symbol: object = None


@dataclass
class FuncDecl(Node):
    name: str = ""
    ret_type: object = None
    params: list = field(default_factory=list)
    body: object = None       # Block
    uses_division: bool = False


@dataclass
class GlobalDecl(Node):
    name: str = ""
    type: object = None       # ScalarType or ArrayType
    init: object = None       # int, list of ints, or None
    const: bool = False


@dataclass
class TranslationUnit(Node):
    globals: list = field(default_factory=list)
    functions: list = field(default_factory=list)
