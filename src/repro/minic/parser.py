"""Recursive-descent parser for mini-C.

Grammar summary (see :mod:`repro.minic` for the language reference)::

    unit      := (global | function)*
    global    := ['const'] type name ('[' num ']')? ('=' init)? ';'
    function  := type name '(' params ')' block
    stmt      := block | if | while | do-while | for | return
               | break; | continue; | decl | expr; | #pragma loopbound n
    expr      := assignment with C operator precedence, ?:, casts,
                 array indexing and calls

``++``/``--`` are parsed as expressions but only valid where mini-C allows
them (expression statements and for-loop updates); sema enforces this.
"""

from __future__ import annotations

from . import ast_nodes as ast
from .lexer import Token, tokenize
from .types import ArrayType, PointerType, scalar


class ParseError(Exception):
    def __init__(self, message, token: Token):
        super().__init__(f"line {token.line}: {message} (at {token.text!r})")
        self.token = token


_TYPE_KEYWORDS = {"int", "unsigned", "short", "char", "void"}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self, offset=0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.peek()
        self.pos += 1
        return token

    def accept(self, kind, text=None):
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            self.pos += 1
            return token
        return None

    def expect(self, kind, text=None) -> Token:
        token = self.accept(kind, text)
        if token is None:
            want = text or kind
            raise ParseError(f"expected {want!r}", self.peek())
        return token

    def at_type(self) -> bool:
        token = self.peek()
        return token.kind == "kw" and token.text in _TYPE_KEYWORDS

    # -- types -------------------------------------------------------------------

    def parse_base_type(self):
        token = self.expect("kw")
        if token.text not in _TYPE_KEYWORDS:
            raise ParseError("expected a type", token)
        if token.text == "unsigned":
            self.accept("kw", "int")
            base = scalar("unsigned")
        else:
            base = scalar(token.text)
        if self.accept("op", "*"):
            if base.name == "void":
                raise ParseError("void* is not supported", token)
            return PointerType(base)
        return base

    # -- top level ------------------------------------------------------------------

    def parse_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(line=1)
        while self.peek().kind != "eof":
            is_const = bool(self.accept("kw", "const"))
            start = self.peek()
            base = self.parse_base_type()
            name = self.expect("ident")
            if self.peek().text == "(" and not is_const:
                unit.functions.append(self.parse_function(base, name))
            else:
                unit.globals.append(
                    self.parse_global(base, name, is_const, start))
        return unit

    def parse_global(self, base, name, is_const, start) -> ast.GlobalDecl:
        if isinstance(base, PointerType):
            raise ParseError("global pointers are not supported", start)
        var_type = base
        if self.accept("op", "["):
            size_tok = self.expect("num")
            self.expect("op", "]")
            if size_tok.value <= 0:
                raise ParseError("array size must be positive", size_tok)
            var_type = ArrayType(base, size_tok.value)
        init = None
        if self.accept("op", "="):
            init = self.parse_initializer(isinstance(var_type, ArrayType))
        self.expect("op", ";")
        return ast.GlobalDecl(line=start.line, name=name.text,
                              type=var_type, init=init, const=is_const)

    def parse_initializer(self, is_array):
        if is_array:
            self.expect("op", "{")
            values = []
            while not self.accept("op", "}"):
                values.append(self.parse_const_int())
                if not self.accept("op", ","):
                    self.expect("op", "}")
                    break
            return values
        return self.parse_const_int()

    def parse_const_int(self) -> int:
        negative = bool(self.accept("op", "-"))
        token = self.peek()
        if token.kind not in ("num", "unum"):
            raise ParseError("expected an integer constant", token)
        self.next()
        return -token.value if negative else token.value

    def parse_function(self, ret_type, name) -> ast.FuncDecl:
        self.expect("op", "(")
        params = []
        if not self.accept("op", ")"):
            if (self.peek().kind == "kw" and self.peek().text == "void"
                    and self.peek(1).text == ")"):
                self.next()
                self.expect("op", ")")
            else:
                while True:
                    ptype = self.parse_base_type()
                    pname = self.expect("ident")
                    if self.accept("op", "["):
                        self.expect("op", "]")
                        if isinstance(ptype, PointerType):
                            raise ParseError("pointer-to-pointer parameter",
                                             pname)
                        ptype = PointerType(ptype)
                    params.append(ast.Param(line=pname.line,
                                            name=pname.text, type=ptype))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
        body = self.parse_block()
        return ast.FuncDecl(line=name.line, name=name.text,
                            ret_type=ret_type, params=params, body=body)

    # -- statements ---------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        brace = self.expect("op", "{")
        body = []
        while not self.accept("op", "}"):
            body.append(self.parse_stmt())
        return ast.Block(line=brace.line, body=body)

    def parse_stmt(self):
        token = self.peek()
        if token.kind == "pragma":
            self.next()
            loop = self.parse_stmt()
            if isinstance(loop, (ast.While, ast.DoWhile, ast.For)):
                if token.text == "loopbound_total":
                    loop.pragma_total = token.value
                else:
                    loop.pragma_bound = token.value
                return loop
            raise ParseError("#pragma loopbound must precede a loop", token)
        if token.text == "{":
            return self.parse_block()
        if token.kind == "kw":
            if token.text == "if":
                return self.parse_if()
            if token.text == "while":
                return self.parse_while()
            if token.text == "do":
                return self.parse_do()
            if token.text == "for":
                return self.parse_for()
            if token.text == "return":
                self.next()
                value = None
                if self.peek().text != ";":
                    value = self.parse_expr()
                self.expect("op", ";")
                return ast.Return(line=token.line, value=value)
            if token.text == "break":
                self.next()
                self.expect("op", ";")
                return ast.Break(line=token.line)
            if token.text == "continue":
                self.next()
                self.expect("op", ";")
                return ast.Continue(line=token.line)
            if token.text in _TYPE_KEYWORDS or token.text == "const":
                return self.parse_local_decl()
        if self.accept("op", ";"):
            return ast.Block(line=token.line, body=[])
        expr = self.parse_expr()
        self.expect("op", ";")
        return ast.ExprStmt(line=token.line, expr=expr)

    def parse_local_decl(self) -> ast.LocalDecl:
        start = self.peek()
        if start.text == "const":
            raise ParseError("const locals are not supported", start)
        base = self.parse_base_type()
        name = self.expect("ident")
        if self.peek().text == "[":
            raise ParseError(
                "local arrays are not supported; use a global", name)
        init = None
        if self.accept("op", "="):
            init = self.parse_expr()
        self.expect("op", ";")
        return ast.LocalDecl(line=start.line, name=name.text,
                             type=base, init=init)

    def parse_if(self) -> ast.If:
        token = self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        then = self.parse_stmt()
        other = None
        if self.accept("kw", "else"):
            other = self.parse_stmt()
        return ast.If(line=token.line, cond=cond, then=then, other=other)

    def parse_while(self) -> ast.While:
        token = self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.While(line=token.line, cond=cond, body=body)

    def parse_do(self) -> ast.DoWhile:
        token = self.expect("kw", "do")
        body = self.parse_stmt()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expr()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(line=token.line, body=body, cond=cond)

    def parse_for(self) -> ast.For:
        token = self.expect("kw", "for")
        self.expect("op", "(")
        init = None
        if self.at_type():
            init = self.parse_local_decl()   # consumes ';'
        elif not self.accept("op", ";"):
            expr = self.parse_expr()
            init = ast.ExprStmt(line=expr.line, expr=expr)
            self.expect("op", ";")
        cond = None
        if self.peek().text != ";":
            cond = self.parse_expr()
        self.expect("op", ";")
        update = None
        if self.peek().text != ")":
            update = self.parse_expr()
        self.expect("op", ")")
        body = self.parse_stmt()
        return ast.For(line=token.line, init=init, cond=cond,
                       update=update, body=body)

    # -- expressions ----------------------------------------------------------------------

    def parse_expr(self):
        return self.parse_assignment()

    def parse_assignment(self):
        left = self.parse_ternary()
        token = self.peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            if token.text != "=":
                # Compound assignment desugars to target = target op value.
                value = ast.Binary(line=token.line, op=token.text[:-1],
                                   left=left, right=value)
            return ast.Assign(line=token.line, target=left, value=value)
        return left

    def parse_ternary(self):
        cond = self.parse_binary(1)
        if self.accept("op", "?"):
            then = self.parse_expr()
            self.expect("op", ":")
            other = self.parse_ternary()
            return ast.Ternary(line=cond.line, cond=cond, then=then,
                               other=other)
        return cond

    def parse_binary(self, min_prec):
        left = self.parse_unary()
        while True:
            token = self.peek()
            prec = _PRECEDENCE.get(token.text) if token.kind == "op" else None
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            left = ast.Binary(line=token.line, op=token.text,
                              left=left, right=right)

    def parse_unary(self):
        token = self.peek()
        if token.kind == "op" and token.text in ("-", "~", "!"):
            self.next()
            operand = self.parse_unary()
            return ast.Unary(line=token.line, op=token.text, operand=operand)
        if token.kind == "op" and token.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            one = ast.IntLit(line=token.line, value=1)
            op = "+" if token.text == "++" else "-"
            return ast.Assign(line=token.line, target=target,
                              value=ast.Binary(line=token.line, op=op,
                                               left=target, right=one))
        return self.parse_postfix()

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.text == "[":
                self.next()
                index = self.parse_expr()
                self.expect("op", "]")
                expr = ast.Index(line=token.line, base=expr, index=index)
            elif token.text == "(" and isinstance(expr, ast.VarRef):
                self.next()
                args = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                expr = ast.Call(line=token.line, name=expr.name, args=args)
            elif token.text in ("++", "--"):
                self.next()
                one = ast.IntLit(line=token.line, value=1)
                op = "+" if token.text == "++" else "-"
                expr = ast.Assign(line=token.line, target=expr,
                                  value=ast.Binary(line=token.line, op=op,
                                                   left=expr, right=one))
            else:
                return expr

    def parse_primary(self):
        token = self.peek()
        if token.kind in ("num", "unum"):
            self.next()
            return ast.IntLit(line=token.line, value=token.value,
                              unsigned=token.kind == "unum")
        if token.kind == "ident":
            self.next()
            return ast.VarRef(line=token.line, name=token.text)
        if token.text == "(":
            # Cast or parenthesised expression.
            if self.peek(1).kind == "kw" and \
                    self.peek(1).text in _TYPE_KEYWORDS:
                self.next()
                to = self.parse_base_type()
                self.expect("op", ")")
                operand = self.parse_unary()
                return ast.Cast(line=token.line, to=to, operand=operand)
            self.next()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError("expected an expression", token)


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C *source* into an AST."""
    return Parser(source).parse_unit()
