"""Semantic analysis for mini-C.

Responsibilities:

* symbol resolution (globals, functions, params, locals) and type checking;
* C-style integer promotion and signedness rules (drive the choice between
  signed/unsigned compares, shifts and division at codegen);
* constant folding and power-of-two strength reduction;
* **loop-bound analysis**: counted ``for`` loops with constant bounds are
  bounded automatically; other loops take a ``#pragma loopbound n``
  annotation.  The resulting *back-edge bounds* become the flow facts the
  WCET analyser's IPET stage consumes — exactly the division of labour the
  paper describes for aiT (automatic where possible, user annotation
  otherwise);
* marking functions that use ``/`` or ``%`` so the driver links the
  software division runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast_nodes as ast
from .types import (
    INT,
    UNSIGNED,
    VOID,
    ArrayType,
    PointerType,
    ScalarType,
    common_signedness,
    is_scalar,
)


def _trunc_div(a: int, b: int) -> int:
    """C-style division truncating toward zero (Python's // floors)."""
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


class SemaError(Exception):
    def __init__(self, message, line=None):
        prefix = f"line {line}: " if line else ""
        super().__init__(prefix + message)


@dataclass(eq=False)
class GlobalSym:
    name: str
    type: object
    const: bool = False
    init: object = None

    kind = "global"


@dataclass(eq=False)
class LocalSym:
    name: str
    type: object
    slot: int = -1          # assigned by codegen

    kind = "local"


@dataclass(eq=False)
class FuncSym:
    name: str
    ret_type: object
    param_types: list
    is_builtin: bool = False

    kind = "func"


BUILTINS = {
    "__print_int": FuncSym("__print_int", VOID, [INT], is_builtin=True),
    "__print_char": FuncSym("__print_char", VOID, [INT], is_builtin=True),
}

#: Names of the software-division runtime (auto-linked when used).
DIV_RUNTIME = {
    (True, "/"): "__divs", (True, "%"): "__mods",
    (False, "/"): "__divu", (False, "%"): "__modu",
}


@dataclass
class FunctionInfo:
    """Sema output per function (consumed by codegen)."""

    decl: ast.FuncDecl
    symbol: FuncSym
    locals: list = field(default_factory=list)
    max_call_args: int = 0
    calls: set = field(default_factory=set)


class Analyzer:
    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self.globals = {}
        self.functions = {}
        self.infos = {}
        self.uses_division = set()   # (signed, op) pairs used anywhere
        #: (func_name, param_index) -> frozenset of global array names the
        #: pointer parameter may reference (read-only "points-to lite";
        #: sound because pointers exist only as parameters in mini-C).
        self.points_to = {}
        self._pt_constraints = []    # (callee, index, source) tuples

    # -- entry -----------------------------------------------------------------

    def run(self):
        for decl in self.unit.globals:
            if decl.name in self.globals:
                raise SemaError(f"duplicate global {decl.name!r}", decl.line)
            self._check_global_init(decl)
            self.globals[decl.name] = GlobalSym(
                decl.name, decl.type, decl.const, decl.init)
        for func in self.unit.functions:
            if func.name in self.functions or func.name in BUILTINS:
                raise SemaError(f"duplicate function {func.name!r}",
                                func.line)
            if func.name in self.globals:
                raise SemaError(
                    f"{func.name!r} is both a function and a global",
                    func.line)
            if len(func.params) > 8:
                raise SemaError(
                    f"{func.name!r}: more than 8 parameters", func.line)
            self.functions[func.name] = FuncSym(
                func.name, func.ret_type,
                [p.type for p in func.params])
        for func in self.unit.functions:
            self.infos[func.name] = self._analyze_function(func)
        self._solve_points_to()
        return self

    def _solve_points_to(self):
        """Fixpoint over call-site constraints for pointer parameters."""
        sets = {}
        for func in self.unit.functions:
            for index, param in enumerate(func.params):
                if isinstance(param.type, PointerType):
                    sets[(func.name, index)] = set()
        deps = []
        for callee, index, source in self._pt_constraints:
            key = (callee, index)
            if key not in sets:
                continue
            if source[0] == "g":
                sets[key].add(source[1])
            else:
                deps.append((key, (source[1], source[2])))
        changed = True
        while changed:
            changed = False
            for key, src_key in deps:
                before = len(sets[key])
                sets[key] |= sets.get(src_key, set())
                if len(sets[key]) != before:
                    changed = True
        self.points_to = {k: frozenset(v) for k, v in sets.items()}

    def _check_global_init(self, decl: ast.GlobalDecl):
        if isinstance(decl.type, ArrayType):
            if decl.init is not None:
                if not isinstance(decl.init, list):
                    raise SemaError(
                        f"array {decl.name!r} needs a brace initializer",
                        decl.line)
                if len(decl.init) > decl.type.size:
                    raise SemaError(
                        f"too many initializers for {decl.name!r}",
                        decl.line)
        elif decl.init is not None and not isinstance(decl.init, int):
            raise SemaError(f"bad initializer for {decl.name!r}", decl.line)
        if decl.const and decl.init is None:
            raise SemaError(f"const {decl.name!r} needs an initializer",
                            decl.line)

    # -- function bodies -----------------------------------------------------------

    def _analyze_function(self, func: ast.FuncDecl) -> FunctionInfo:
        info = FunctionInfo(decl=func, symbol=self.functions[func.name])
        scope = {}
        for param in func.params:
            if param.name in scope:
                raise SemaError(f"duplicate parameter {param.name!r}",
                                param.line)
            symbol = LocalSym(param.name, param.type)
            param.symbol = symbol
            scope[param.name] = symbol
            info.locals.append(symbol)
        self._stmt(func.body, func, info, [scope], in_loop=False)
        return info

    # -- statements ---------------------------------------------------------------------

    def _stmt(self, node, func, info, scopes, in_loop):
        if isinstance(node, ast.Block):
            scopes.append({})
            for child in node.body:
                self._stmt(child, func, info, scopes, in_loop)
            scopes.pop()
        elif isinstance(node, ast.LocalDecl):
            if isinstance(node.type, ScalarType) and node.type is VOID:
                raise SemaError("void variable", node.line)
            if isinstance(node.type, PointerType):
                raise SemaError(
                    "pointer locals are not supported; pass arrays as "
                    "parameters instead", node.line)
            if node.name in scopes[-1]:
                raise SemaError(f"redeclaration of {node.name!r}", node.line)
            symbol = LocalSym(node.name, node.type)
            node.symbol = symbol
            info.locals.append(symbol)
            if node.init is not None:
                node.init = self._expr(node.init, func, info, scopes)
                self._require_scalar_value(node.init, node.line)
            scopes[-1][node.name] = symbol
        elif isinstance(node, ast.ExprStmt):
            node.expr = self._expr(node.expr, func, info, scopes,
                                   statement=True)
        elif isinstance(node, ast.If):
            node.cond = self._expr(node.cond, func, info, scopes)
            self._require_scalar_value(node.cond, node.line)
            self._stmt(node.then, func, info, scopes, in_loop)
            if node.other is not None:
                self._stmt(node.other, func, info, scopes, in_loop)
        elif isinstance(node, ast.While):
            node.cond = self._expr(node.cond, func, info, scopes)
            self._require_scalar_value(node.cond, node.line)
            self._stmt(node.body, func, info, scopes, True)
            node.bound = node.pragma_bound
            node.bound_total = node.pragma_total
        elif isinstance(node, ast.DoWhile):
            self._stmt(node.body, func, info, scopes, True)
            node.cond = self._expr(node.cond, func, info, scopes)
            self._require_scalar_value(node.cond, node.line)
            if node.pragma_bound is not None:
                node.bound = max(node.pragma_bound - 1, 0)
            node.bound_total = node.pragma_total
        elif isinstance(node, ast.For):
            scopes.append({})
            if node.init is not None:
                self._stmt(node.init, func, info, scopes, in_loop)
            if node.cond is not None:
                node.cond = self._expr(node.cond, func, info, scopes)
                self._require_scalar_value(node.cond, node.line)
            if node.update is not None:
                node.update = self._expr(node.update, func, info, scopes,
                                         statement=True)
            self._stmt(node.body, func, info, scopes, True)
            node.bound = (node.pragma_bound if node.pragma_bound is not None
                          else self._auto_bound(node))
            node.bound_total = node.pragma_total
            scopes.pop()
        elif isinstance(node, ast.Return):
            if node.value is not None:
                if func.ret_type is VOID:
                    raise SemaError("void function returns a value",
                                    node.line)
                node.value = self._expr(node.value, func, info, scopes)
                self._require_scalar_value(node.value, node.line)
            elif func.ret_type is not VOID:
                raise SemaError("non-void function returns nothing",
                                node.line)
        elif isinstance(node, (ast.Break, ast.Continue)):
            if not in_loop:
                raise SemaError("break/continue outside a loop", node.line)
        else:
            raise SemaError(f"unknown statement {type(node).__name__}",
                            getattr(node, "line", 0))

    # -- loop bound inference ----------------------------------------------------------

    def _auto_bound(self, node: ast.For):
        """Back-edge bound for a counted for loop, or None."""
        # init: i = c0
        init = node.init
        if isinstance(init, ast.LocalDecl) and isinstance(
                init.init, ast.IntLit):
            var = init.symbol
            start = init.init.value
        elif (isinstance(init, ast.ExprStmt)
              and isinstance(init.expr, ast.Assign)
              and isinstance(init.expr.target, ast.VarRef)
              and isinstance(init.expr.value, ast.IntLit)):
            var = init.expr.target.symbol
            start = init.expr.value.value
        else:
            return None
        # cond: i <op> c1
        cond = node.cond
        if not (isinstance(cond, ast.Binary)
                and cond.op in ("<", "<=", ">", ">=")
                and isinstance(cond.left, ast.VarRef)
                and cond.left.symbol is var
                and isinstance(cond.right, ast.IntLit)):
            return None
        limit = cond.right.value
        # update: i = i +/- step
        update = node.update
        if not (isinstance(update, ast.Assign)
                and isinstance(update.target, ast.VarRef)
                and update.target.symbol is var
                and isinstance(update.value, ast.Binary)
                and update.value.op in ("+", "-")
                and isinstance(update.value.left, ast.VarRef)
                and update.value.left.symbol is var
                and isinstance(update.value.right, ast.IntLit)):
            return None
        step = update.value.right.value
        if update.value.op == "-":
            step = -step
        if step == 0:
            return None
        if self._assigns_var(node.body, var):
            return None
        # Count iterations.
        if cond.op == "<" and step > 0:
            count = max(0, -(-(limit - start) // step))
        elif cond.op == "<=" and step > 0:
            count = max(0, (limit - start) // step + 1)
        elif cond.op == ">" and step < 0:
            count = max(0, -(-(start - limit) // -step))
        elif cond.op == ">=" and step < 0:
            count = max(0, (start - limit) // -step + 1)
        else:
            return None  # direction and step disagree: unbounded or 0
        return count

    @staticmethod
    def _param_index(func: ast.FuncDecl, symbol) -> int:
        for index, param in enumerate(func.params):
            if param.symbol is symbol:
                return index
        raise SemaError(f"internal: {symbol.name!r} is not a parameter",
                        func.line)

    def _assigns_var(self, node, var) -> bool:
        """Does any statement/expression under *node* assign to *var*?"""
        found = False

        def walk(n):
            nonlocal found
            if found or n is None or isinstance(n, (int, str, bool)):
                return
            if isinstance(n, ast.Assign):
                target = n.target
                if isinstance(target, ast.VarRef) and target.symbol is var:
                    found = True
                    return
            if isinstance(n, ast.Node):
                for name in vars(n):
                    value = getattr(n, name)
                    if isinstance(value, list):
                        for item in value:
                            walk(item)
                    elif isinstance(value, ast.Node):
                        walk(value)

        walk(node)
        return found

    # -- expressions ----------------------------------------------------------------------

    def _require_scalar_value(self, expr, line):
        etype = expr.type
        if isinstance(etype, (ScalarType, PointerType)) and etype is not VOID:
            return
        raise SemaError(f"expected a scalar value, got {etype}", line)

    def _lookup(self, name, scopes, line):
        for scope in reversed(scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        raise SemaError(f"undeclared identifier {name!r}", line)

    def _expr(self, node, func, info, scopes, statement=False):
        if isinstance(node, ast.IntLit):
            node.unsigned = node.unsigned or node.value > 0x7FFFFFFF
            node.type = UNSIGNED if node.unsigned else INT
            if not -0x80000000 <= node.value <= 0xFFFFFFFF:
                raise SemaError(f"constant {node.value} out of 32-bit range",
                                node.line)
            return node

        if isinstance(node, ast.VarRef):
            symbol = self._lookup(node.name, scopes, node.line)
            if isinstance(symbol, FuncSym):
                raise SemaError(f"function {node.name!r} used as a value",
                                node.line)
            node.symbol = symbol
            node.type = symbol.type
            return node

        if isinstance(node, ast.Index):
            node.base = self._expr(node.base, func, info, scopes)
            node.index = self._expr(node.index, func, info, scopes)
            self._require_scalar_value(node.index, node.line)
            base_type = node.base.type
            if isinstance(base_type, ArrayType):
                node.type = base_type.elem
            elif isinstance(base_type, PointerType):
                node.type = base_type.elem
            else:
                raise SemaError("indexing a non-array", node.line)
            if not isinstance(node.base, ast.VarRef):
                raise SemaError("only simple arrays can be indexed",
                                node.line)
            return node

        if isinstance(node, ast.Call):
            symbol = BUILTINS.get(node.name) or self.functions.get(node.name)
            if symbol is None:
                raise SemaError(f"call to undefined function {node.name!r}",
                                node.line)
            if len(node.args) != len(symbol.param_types):
                raise SemaError(
                    f"{node.name!r} expects {len(symbol.param_types)} "
                    f"arguments, got {len(node.args)}", node.line)
            new_args = []
            for index, (arg, ptype) in enumerate(
                    zip(node.args, symbol.param_types)):
                arg = self._expr(arg, func, info, scopes)
                if isinstance(ptype, PointerType):
                    atype = arg.type
                    if not (isinstance(atype, (ArrayType, PointerType))
                            and atype.elem == ptype.elem):
                        raise SemaError(
                            f"argument type {atype} does not match "
                            f"parameter {ptype}", node.line)
                    if not isinstance(arg, ast.VarRef):
                        raise SemaError(
                            "array arguments must be simple names",
                            node.line)
                    if isinstance(arg.symbol, GlobalSym):
                        self._pt_constraints.append(
                            (node.name, index, ("g", arg.name)))
                    else:  # a pointer parameter of the caller
                        caller_index = self._param_index(func, arg.symbol)
                        self._pt_constraints.append(
                            (node.name, index,
                             ("p", func.name, caller_index)))
                else:
                    self._require_scalar_value(arg, node.line)
                new_args.append(arg)
            node.args = new_args
            node.type = symbol.ret_type
            info.max_call_args = max(info.max_call_args, len(node.args))
            info.calls.add(node.name)
            if symbol.ret_type is VOID and not statement:
                raise SemaError(f"void call {node.name!r} used as a value",
                                node.line)
            return node

        if isinstance(node, ast.Unary):
            node.operand = self._expr(node.operand, func, info, scopes)
            self._require_scalar_value(node.operand, node.line)
            node.type = INT
            folded = self._fold_unary(node)
            return folded

        if isinstance(node, ast.Binary):
            node.left = self._expr(node.left, func, info, scopes)
            node.right = self._expr(node.right, func, info, scopes)
            self._require_scalar_value(node.left, node.line)
            self._require_scalar_value(node.right, node.line)
            node.signed = common_signedness(node.left.type, node.right.type)
            if node.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
                node.type = INT
            else:
                node.type = INT if node.signed else UNSIGNED
            if node.op == ">>":
                # Shift semantics follow the *left* operand only.
                left_type = node.left.type
                node.signed = (left_type.signed
                               if isinstance(left_type, ScalarType) else False)
            if node.op in ("/", "%"):
                self.uses_division.add((node.signed, node.op))
                info.calls.add(DIV_RUNTIME[(node.signed, node.op)])
                info.max_call_args = max(info.max_call_args, 2)
                func.uses_division = True
            folded = self._fold_binary(node)
            return folded

        if isinstance(node, ast.Assign):
            node.target = self._expr(node.target, func, info, scopes)
            if isinstance(node.target, ast.VarRef):
                if isinstance(node.target.symbol, GlobalSym) and \
                        node.target.symbol.const:
                    raise SemaError("assignment to const global", node.line)
                if isinstance(node.target.type, ArrayType):
                    raise SemaError("assignment to an array", node.line)
                if isinstance(node.target.type, PointerType):
                    raise SemaError(
                        "pointer parameters are read-only", node.line)
            elif isinstance(node.target, ast.Index):
                base_sym = node.target.base.symbol
                if isinstance(base_sym, GlobalSym) and base_sym.const:
                    raise SemaError("assignment into const array", node.line)
            else:
                raise SemaError("bad assignment target", node.line)
            node.value = self._expr(node.value, func, info, scopes)
            self._require_scalar_value(node.value, node.line)
            target_type = node.target.type
            node.type = target_type if is_scalar(target_type) else INT
            return node

        if isinstance(node, ast.Ternary):
            node.cond = self._expr(node.cond, func, info, scopes)
            node.then = self._expr(node.then, func, info, scopes)
            node.other = self._expr(node.other, func, info, scopes)
            for part in (node.cond, node.then, node.other):
                self._require_scalar_value(part, node.line)
            node.type = INT
            return node

        if isinstance(node, ast.Cast):
            node.operand = self._expr(node.operand, func, info, scopes)
            self._require_scalar_value(node.operand, node.line)
            if not isinstance(node.to, ScalarType) or node.to is VOID:
                raise SemaError(f"cannot cast to {node.to}", node.line)
            node.type = node.to
            return node

        raise SemaError(f"unknown expression {type(node).__name__}",
                        getattr(node, "line", 0))

    # -- folding -------------------------------------------------------------------------

    @staticmethod
    def _wrap32(value, signed):
        value &= 0xFFFFFFFF
        if signed and value & 0x80000000:
            value -= 1 << 32
        return value

    def _fold_unary(self, node: ast.Unary):
        operand = node.operand
        if not isinstance(operand, ast.IntLit):
            return node
        value = operand.value
        if node.op == "-":
            result = self._wrap32(-value, True)
        elif node.op == "~":
            result = self._wrap32(~value, True)
        else:  # '!'
            result = 0 if value else 1
        return ast.IntLit(line=node.line, value=result, type=INT)

    def _fold_binary(self, node: ast.Binary):
        left, right = node.left, node.right
        # Strength reduction: multiply by a power of two becomes a shift.
        if (node.op == "*" and isinstance(right, ast.IntLit)
                and right.value > 0
                and right.value & (right.value - 1) == 0):
            shift = right.value.bit_length() - 1
            if shift:
                return self._fold_binary(ast.Binary(
                    line=node.line, op="<<", left=left,
                    right=ast.IntLit(line=node.line, value=shift, type=INT),
                    type=node.type, signed=node.signed))
            return left
        if not (isinstance(left, ast.IntLit) and isinstance(right,
                                                            ast.IntLit)):
            return node
        a, b = left.value, right.value
        signed = node.signed
        op = node.op
        try:
            if op == "+":
                result = a + b
            elif op == "-":
                result = a - b
            elif op == "*":
                result = a * b
            elif op == "/":
                result = (_trunc_div(a, b) if signed
                          else (a & 0xFFFFFFFF) // (b & 0xFFFFFFFF))
            elif op == "%":
                result = (a - b * _trunc_div(a, b) if signed
                          else (a & 0xFFFFFFFF) % (b & 0xFFFFFFFF))
            elif op == "<<":
                result = a << (b & 31)
            elif op == ">>":
                if signed:
                    result = self._wrap32(a, True) >> (b & 31)
                else:
                    result = (a & 0xFFFFFFFF) >> (b & 31)
            elif op == "&":
                result = a & b
            elif op == "|":
                result = a | b
            elif op == "^":
                result = a ^ b
            elif op in ("<", "<=", ">", ">="):
                ua = a if signed else a & 0xFFFFFFFF
                ub = b if signed else b & 0xFFFFFFFF
                table = {"<": ua < ub, "<=": ua <= ub,
                         ">": ua > ub, ">=": ua >= ub}
                result = 1 if table[op] else 0
            elif op == "==":
                result = 1 if self._wrap32(a, False) == self._wrap32(
                    b, False) else 0
            elif op == "!=":
                result = 1 if self._wrap32(a, False) != self._wrap32(
                    b, False) else 0
            elif op == "&&":
                result = 1 if a and b else 0
            elif op == "||":
                result = 1 if a or b else 0
            else:
                return node
        except ZeroDivisionError:
            raise SemaError("constant division by zero", node.line) from None
        return ast.IntLit(line=node.line,
                          value=self._wrap32(result, signed),
                          unsigned=not signed, type=node.type)


def analyze(unit: ast.TranslationUnit) -> Analyzer:
    """Run semantic analysis over *unit*; returns the filled Analyzer."""
    return Analyzer(unit).run()
