"""T16 code generation for mini-C.

Strategy (deliberately simple and fully deterministic — WCET analysability
matters more than code quality, and simulator and analyser share the same
timing model either way):

* expression evaluation uses a register stack: the value at depth *d* lives
  in register ``r<d>`` (depths 0..5); ``r6``/``r7`` are scratch for
  addresses and wide immediates;
* locals and parameters live in 4-byte stack slots addressed sp-relative;
* around calls, live expression registers are spilled to dedicated slots;
* every function gets a literal pool after its code (PC-relative loads),
  holding large constants and addresses of linker-placed globals
  (:class:`~repro.isa.assembler.WordRef` entries);
* each global load/store is tagged with an
  :class:`~repro.link.objects.AccessNote` and each loop header with its
  back-edge bound — the raw material for the automated WCET annotations.

Calling convention: the first four arguments in r0..r3, further arguments
in the caller's outgoing-argument area at the bottom of its frame (the
callee reads them above its own frame), result in r0, all of r0-r7
caller-saved, lr pushed in the prologue, return via ``pop {pc}``.

Frame layout, sp-relative after the prologue::

    [outgoing args][param+local slots][call-spill slots]   <- sp grows down
"""

from __future__ import annotations

from ..isa import instruction as ins
from ..isa.assembler import Align, Data, Label, WordRef
from ..isa.opcodes import Cond, Op
from ..link.objects import AccessNote, FunctionCode
from .ast_nodes import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Continue,
    DoWhile,
    ExprStmt,
    For,
    If,
    Index,
    IntLit,
    LocalDecl,
    Return,
    Ternary,
    Unary,
    VarRef,
    While,
)
from .sema import BUILTINS, DIV_RUNTIME, GlobalSym, LocalSym, SemaError
from .types import CHAR, SHORT, ArrayType, PointerType, ScalarType

MAX_DEPTH = 6
ADDR_SCRATCH = 6
AUX_SCRATCH = 7

_SIGNED_CONDS = {"<": Cond.LT, "<=": Cond.LE, ">": Cond.GT, ">=": Cond.GE}
_UNSIGNED_CONDS = {"<": Cond.LO, "<=": Cond.LS, ">": Cond.HI, ">=": Cond.HS}
_EQ_CONDS = {"==": Cond.EQ, "!=": Cond.NE}
_INVERSE = {
    Cond.EQ: Cond.NE, Cond.NE: Cond.EQ, Cond.LT: Cond.GE, Cond.GE: Cond.LT,
    Cond.LE: Cond.GT, Cond.GT: Cond.LE, Cond.LO: Cond.HS, Cond.HS: Cond.LO,
    Cond.LS: Cond.HI, Cond.HI: Cond.LS, Cond.MI: Cond.PL, Cond.PL: Cond.MI,
    Cond.VS: Cond.VC, Cond.VC: Cond.VS,
}


class CodegenError(Exception):
    pass


class FunctionCodegen:
    """Generates one :class:`FunctionCode` from an analyzed FuncDecl."""

    def __init__(self, analyzer, info):
        self.analyzer = analyzer
        self.info = info
        self.func = info.decl
        self.items = []
        self.loop_bounds = {}
        self.loop_totals = {}
        self._label_counter = 0
        # Literal pools are dumped mid-function when the 1020-byte
        # pc-relative range would otherwise be exceeded (pool entries are
        # forward references in T16, as in THUMB).
        self._pool = {}        # key -> label (current segment only)
        self._pool_items = []  # (label, item) pending for the next dump
        self._pool_counter = 0
        self._pool_first_use = None
        self._bytes = 0        # conservative running code size
        self._slots = {}       # LocalSym -> slot index
        self._spill_base = 0   # first spill slot (after locals)
        self._max_spill = 0
        #: words reserved at the frame bottom for stack-passed arguments
        self._out_words = max(0, info.max_call_args - 4)
        self._loop_stack = []  # (break_label, continue_label)
        self._ret_label = self._new_label()

    # -- small helpers ---------------------------------------------------------

    def emit(self, instr):
        self.items.append(instr)
        self._bytes += instr.size

    def place(self, name):
        self.items.append(Label(name))

    def _new_label(self):
        self._label_counter += 1
        return f".L{self.func.name}_{self._label_counter}"

    def _slot_of(self, symbol: LocalSym) -> int:
        if symbol not in self._slots:
            self._slots[symbol] = len(self._slots)
        return self._slots[symbol]

    def _slot_offset(self, symbol: LocalSym) -> int:
        offset = 4 * (self._out_words + self._slot_of(symbol))
        if offset > 1020:
            raise CodegenError(
                f"{self.func.name}: frame too large (>1020 bytes)")
        return offset

    def _spill_offset(self, index: int) -> int:
        self._max_spill = max(self._max_spill, index + 1)
        return 4 * (self._out_words + self._spill_base + index)

    def _out_arg_offset(self, arg_index: int) -> int:
        """sp-relative slot for stack-passed argument *arg_index* (>= 4)."""
        return 4 * (arg_index - 4)

    def _pool_label(self, key, item_factory):
        if key not in self._pool:
            label = f".L{self.func.name}_P{self._pool_counter}"
            self._pool_counter += 1
            self._pool[key] = label
            self._pool_items.append((label, item_factory()))
        if self._pool_first_use is None:
            self._pool_first_use = self._bytes
        return self._pool[key]

    def _append_pool_entries(self):
        self.items.append(Align(4))
        self._bytes += 2
        for label, item in self._pool_items:
            self.place(label)
            self.items.append(item)
            self._bytes += 4 if isinstance(item, WordRef) else \
                len(item.payload)
        self._pool = {}
        self._pool_items = []
        self._pool_first_use = None

    def maybe_dump_pool(self, margin=250):
        """Dump pending literals if the pc-relative range is at risk.

        Called between statements; *margin* covers the worst single
        statement emitted before the next opportunity.
        """
        if not self._pool_items or self._pool_first_use is None:
            return
        if self._bytes - self._pool_first_use < 1020 - margin - \
                8 * len(self._pool_items):
            return
        label_skip = self._new_label()
        self.emit(ins.b(label_skip))
        self._append_pool_entries()
        self.place(label_skip)

    def _load_address(self, reg, symbol, addend=0):
        """reg = &symbol + addend via the literal pool."""
        label = self._pool_label(
            ("a", symbol, addend), lambda: WordRef(symbol, addend))
        self.emit(ins.ldr_pc(reg, target=label))

    def _load_const(self, reg, value):
        value &= 0xFFFFFFFF
        if value <= 255:
            self.emit(ins.movi(reg, value))
            return
        negated = (-value) & 0xFFFFFFFF
        if negated <= 255:
            self.emit(ins.movi(reg, negated))
            self.emit(ins.alu(Op.NEG, reg, reg))
            return
        if value <= 0xFFFF:
            # Synthesise 16-bit constants (2-3 instructions, no pool
            # pressure): hi8 << 8 | lo8.
            self.emit(ins.movi(reg, value >> 8))
            self.emit(ins.shift_i(Op.LSLI, reg, reg, 8))
            if value & 0xFF:
                self.emit(ins.addi(reg, value & 0xFF))
            return
        if negated <= 0xFFFF:
            self._load_const(reg, negated)
            self.emit(ins.alu(Op.NEG, reg, reg))
            return
        label = self._pool_label(
            ("c", value),
            lambda: Data(value.to_bytes(4, "little"), align=4))
        self.emit(ins.ldr_pc(reg, target=label))

    # -- typed memory access helpers ----------------------------------------------

    def _elem_note(self, base: VarRef, const_index=None):
        """AccessNote for an access through *base* (array or pointer)."""
        symbol = base.symbol
        if isinstance(symbol, GlobalSym):
            if isinstance(symbol.type, ArrayType):
                width = symbol.type.elem.width
                if const_index is not None:
                    return AccessNote.exact(
                        symbol.name, const_index * width, width)
                return AccessNote.whole_object(
                    symbol.name, symbol.type.byte_size)
            return AccessNote.exact(symbol.name, 0, symbol.type.width)
        # Pointer parameter: consult points-to.
        index = None
        for i, param in enumerate(self.func.params):
            if param.symbol is symbol:
                index = i
                break
        targets = self.analyzer.points_to.get((self.func.name, index),
                                              frozenset())
        entries = []
        for name in sorted(targets):
            gsym = self.analyzer.globals[name]
            size = (gsym.type.byte_size
                    if isinstance(gsym.type, ArrayType) else gsym.type.width)
            entries.append((name, 0, size))
        if entries:
            return AccessNote.multi(entries)
        return AccessNote.unknown()

    def _scale_index(self, reg, width):
        if width == 2:
            self.emit(ins.shift_i(Op.LSLI, reg, reg, 1))
        elif width == 4:
            self.emit(ins.shift_i(Op.LSLI, reg, reg, 2))

    def _emit_load(self, rd, base_reg, elem: ScalarType, offset=None,
                   index_reg=None, note=None):
        """rd = load elem-typed value from base_reg + offset/index_reg.

        Immediate offsets must be <= 255 (larger ones are materialised by
        the caller); offsets beyond the imm5 encoding range, and all signed
        sub-word loads (T16 has no immediate-offset signed loads), go
        through the aux scratch register.
        """
        width = elem.width
        signed = elem.signed and width < 4
        if index_reg is None:
            assert offset is not None and 0 <= offset <= 255
            if signed or offset > 31 * width:
                self.emit(ins.movi(AUX_SCRATCH, offset))
                index_reg = AUX_SCRATCH
            else:
                op = {4: Op.LDRWI, 2: Op.LDRHI, 1: Op.LDRBI}[width]
                instr = ins.mem_i(op, rd, base_reg, offset)
                instr.note = note
                self.emit(instr)
                return
        if signed:
            op = Op.LDRSH_R if width == 2 else Op.LDRSB_R
        else:
            op = {4: Op.LDRW_R, 2: Op.LDRH_R, 1: Op.LDRB_R}[width]
        instr = ins.mem_r(op, rd, base_reg, index_reg)
        instr.note = note
        self.emit(instr)

    def _emit_store(self, rd, base_reg, elem: ScalarType, offset=None,
                    index_reg=None, note=None):
        width = elem.width
        if index_reg is None:
            assert offset is not None and 0 <= offset <= 255
            if offset > 31 * width:
                self.emit(ins.movi(AUX_SCRATCH, offset))
                index_reg = AUX_SCRATCH
            else:
                op = {4: Op.STRWI, 2: Op.STRHI, 1: Op.STRBI}[width]
                instr = ins.mem_i(op, rd, base_reg, offset)
                instr.note = note
                self.emit(instr)
                return
        op = {4: Op.STRW_R, 2: Op.STRH_R, 1: Op.STRB_R}[width]
        instr = ins.mem_r(op, rd, base_reg, index_reg)
        instr.note = note
        self.emit(instr)

    # -- expressions -----------------------------------------------------------------

    def _check_depth(self, depth):
        if depth >= MAX_DEPTH:
            raise CodegenError(
                f"{self.func.name}: expression too deep "
                f"(> {MAX_DEPTH} registers); split the statement")

    def gen_expr(self, expr, depth, used=True):
        """Evaluate *expr* into register *depth*."""
        self._check_depth(depth)

        if isinstance(expr, IntLit):
            self._load_const(depth, expr.value)
            return

        if isinstance(expr, VarRef):
            symbol = expr.symbol
            if isinstance(symbol, LocalSym):
                if isinstance(symbol.type, ArrayType):
                    raise CodegenError("array value outside call/index")
                self.emit(ins.ldr_sp(depth, self._slot_offset(symbol)))
                return
            # Global.
            if isinstance(symbol.type, ArrayType):
                self._load_address(depth, symbol.name)  # decay
                return
            self._load_address(ADDR_SCRATCH, symbol.name)
            self._emit_load(depth, ADDR_SCRATCH, symbol.type, offset=0,
                            note=AccessNote.exact(symbol.name, 0,
                                                  symbol.type.width))
            return

        if isinstance(expr, Index):
            self._gen_index_load(expr, depth)
            return

        if isinstance(expr, Call):
            self._gen_call(expr, depth)
            return

        if isinstance(expr, Unary):
            if expr.op == "!":
                self.gen_expr(expr.operand, depth)
                self.emit(ins.cmpi(depth, 0))
                self._materialize(Cond.EQ, depth)
                return
            self.gen_expr(expr.operand, depth)
            if expr.op == "-":
                self.emit(ins.alu(Op.NEG, depth, depth))
            elif expr.op == "~":
                self.emit(ins.alu(Op.MVN, depth, depth))
            return

        if isinstance(expr, Binary):
            self._gen_binary(expr, depth)
            return

        if isinstance(expr, Assign):
            self._gen_assign(expr, depth, used)
            return

        if isinstance(expr, Ternary):
            label_else = self._new_label()
            label_end = self._new_label()
            self.gen_branch(expr.cond, label_else, when_true=False,
                            depth=depth)
            self.gen_expr(expr.then, depth)
            self.emit(ins.b(label_end))
            self.place(label_else)
            self.gen_expr(expr.other, depth)
            self.place(label_end)
            return

        if isinstance(expr, Cast):
            self.gen_expr(expr.operand, depth)
            if expr.to is CHAR:
                self.emit(ins.movi(AUX_SCRATCH, 255))
                self.emit(ins.alu(Op.AND, depth, AUX_SCRATCH))
            elif expr.to is SHORT:
                self.emit(ins.shift_i(Op.LSLI, depth, depth, 16))
                self.emit(ins.shift_i(Op.ASRI, depth, depth, 16))
            # int/unsigned casts are bit-identical in registers.
            return

        raise CodegenError(f"cannot generate {type(expr).__name__}")

    def _gen_index_load(self, expr: Index, depth):
        base = expr.base
        elem = expr.type
        note = None
        if isinstance(expr.index, IntLit):
            const_index = expr.index.value
            note = self._elem_note(base, const_index)
            offset = const_index * elem.width
            self._gen_base_address(base, ADDR_SCRATCH)
            if 0 <= offset <= 255:
                self._emit_load(depth, ADDR_SCRATCH, elem, offset=offset,
                                note=note)
            else:
                self._load_const(depth, offset)
                self._emit_load(depth, ADDR_SCRATCH, elem, index_reg=depth,
                                note=note)
            return
        note = self._elem_note(base)
        self.gen_expr(expr.index, depth)
        self._scale_index(depth, elem.width)
        self._gen_base_address(base, ADDR_SCRATCH)
        self._emit_load(depth, ADDR_SCRATCH, elem, index_reg=depth,
                        note=note)

    def _gen_base_address(self, base: VarRef, reg):
        symbol = base.symbol
        if isinstance(symbol, GlobalSym):
            self._load_address(reg, symbol.name)
        else:  # pointer parameter in a stack slot
            self.emit(ins.ldr_sp(reg, self._slot_offset(symbol)))

    def _gen_binary(self, expr: Binary, depth):
        op = expr.op
        if op in ("&&", "||"):
            label_true = self._new_label()
            label_end = self._new_label()
            self.gen_branch(expr, label_true, when_true=True, depth=depth)
            self.emit(ins.movi(depth, 0))
            self.emit(ins.b(label_end))
            self.place(label_true)
            self.emit(ins.movi(depth, 1))
            self.place(label_end)
            return
        if op in ("<", "<=", ">", ">=", "==", "!="):
            self.gen_expr(expr.left, depth)
            self.gen_expr(expr.right, depth + 1)
            self.emit(ins.alu(Op.CMP, depth, depth + 1))
            self._materialize(self._cond_for(expr), depth)
            return
        if op in ("/", "%"):
            name = DIV_RUNTIME[(expr.signed, op)]
            call = Call(line=expr.line, name=name,
                        args=[expr.left, expr.right])
            self._gen_call_named(name, call.args, depth)
            return
        self.gen_expr(expr.left, depth)
        # Constant right operands use immediate forms where available.
        right = expr.right
        if isinstance(right, IntLit) and op in ("+", "-") and \
                0 <= right.value <= 255:
            factory = ins.addi if op == "+" else ins.subi
            self.emit(factory(depth, right.value))
            return
        if isinstance(right, IntLit) and op in ("<<", ">>") and \
                0 <= right.value <= 31:
            if op == "<<":
                self.emit(ins.shift_i(Op.LSLI, depth, depth, right.value))
            elif expr.signed:
                self.emit(ins.shift_i(Op.ASRI, depth, depth, right.value))
            else:
                self.emit(ins.shift_i(Op.LSRI, depth, depth, right.value))
            return
        self.gen_expr(right, depth + 1)
        if op == "+":
            self.emit(ins.add_r(depth, depth, depth + 1))
        elif op == "-":
            self.emit(ins.sub_r(depth, depth, depth + 1))
        elif op == "*":
            self.emit(ins.alu(Op.MUL, depth, depth + 1))
        elif op == "&":
            self.emit(ins.alu(Op.AND, depth, depth + 1))
        elif op == "|":
            self.emit(ins.alu(Op.ORR, depth, depth + 1))
        elif op == "^":
            self.emit(ins.alu(Op.EOR, depth, depth + 1))
        elif op == "<<":
            self.emit(ins.alu(Op.LSL, depth, depth + 1))
        elif op == ">>":
            shift_op = Op.ASR if expr.signed else Op.LSR
            self.emit(ins.alu(shift_op, depth, depth + 1))
        else:
            raise CodegenError(f"unknown binary op {op!r}")

    def _cond_for(self, expr: Binary) -> Cond:
        if expr.op in _EQ_CONDS:
            return _EQ_CONDS[expr.op]
        table = _SIGNED_CONDS if expr.signed else _UNSIGNED_CONDS
        return table[expr.op]

    def _materialize(self, cond: Cond, depth):
        """depth = 1 if flags satisfy *cond* else 0."""
        label_true = self._new_label()
        label_end = self._new_label()
        self.emit(ins.bcc(cond, label_true))
        self.emit(ins.movi(depth, 0))
        self.emit(ins.b(label_end))
        self.place(label_true)
        self.emit(ins.movi(depth, 1))
        self.place(label_end)

    # -- assignment ----------------------------------------------------------------------

    def _gen_assign(self, expr: Assign, depth, used):
        target = expr.target
        self.gen_expr(expr.value, depth)
        if isinstance(target, VarRef):
            symbol = target.symbol
            if isinstance(symbol, LocalSym):
                self.emit(ins.str_sp(depth, self._slot_offset(symbol)))
            else:
                self._load_address(ADDR_SCRATCH, symbol.name)
                self._emit_store(
                    depth, ADDR_SCRATCH, symbol.type, offset=0,
                    note=AccessNote.exact(symbol.name, 0, symbol.type.width))
        else:  # Index
            elem = target.type
            base = target.base
            if isinstance(target.index, IntLit):
                const_index = target.index.value
                offset = const_index * elem.width
                note = self._elem_note(base, const_index)
                self._gen_base_address(base, ADDR_SCRATCH)
                if 0 <= offset <= 255:
                    self._emit_store(depth, ADDR_SCRATCH, elem,
                                     offset=offset, note=note)
                else:
                    self._load_const(depth + 1, offset)
                    self._emit_store(depth, ADDR_SCRATCH, elem,
                                     index_reg=depth + 1, note=note)
            else:
                note = self._elem_note(base)
                self.gen_expr(target.index, depth + 1)
                self._scale_index(depth + 1, elem.width)
                self._gen_base_address(base, ADDR_SCRATCH)
                self._emit_store(depth, ADDR_SCRATCH, elem,
                                 index_reg=depth + 1, note=note)
        if used and isinstance(expr.type, ScalarType):
            # The value of an assignment is the converted stored value.
            if expr.type is CHAR:
                self.emit(ins.movi(AUX_SCRATCH, 255))
                self.emit(ins.alu(Op.AND, depth, AUX_SCRATCH))
            elif expr.type is SHORT:
                self.emit(ins.shift_i(Op.LSLI, depth, depth, 16))
                self.emit(ins.shift_i(Op.ASRI, depth, depth, 16))

    # -- calls --------------------------------------------------------------------------

    def _gen_call(self, expr: Call, depth):
        if expr.name in BUILTINS:
            self._gen_builtin(expr, depth)
            return
        self._gen_call_named(expr.name, expr.args, depth)

    def _gen_call_named(self, name, args, depth):
        nargs = len(args)
        reg_args = min(nargs, 4)
        if depth + reg_args + (1 if nargs > 4 else 0) > MAX_DEPTH:
            raise CodegenError(
                f"{self.func.name}: call to {name} too deep in expression")
        # Register arguments stay live in depth..depth+3; stack arguments
        # are evaluated one by one into the next register and written to
        # the outgoing-argument area.
        for i in range(reg_args):
            self.gen_expr(args[i], depth + i)
        for i in range(4, nargs):
            self.gen_expr(args[i], depth + reg_args)
            self.emit(ins.str_sp(depth + reg_args,
                                 self._out_arg_offset(i)))
        # Spill live expression registers below the arguments.
        for reg in range(depth):
            self.emit(ins.str_sp(reg, self._spill_offset(reg)))
        # Shift register arguments down to r0..r3.
        if depth:
            for i in range(reg_args):
                self.emit(ins.movr(i, depth + i))
        self.emit(ins.bl(name))
        if depth:
            self.emit(ins.movr(depth, 0))
        for reg in range(depth):
            self.emit(ins.ldr_sp(reg, self._spill_offset(reg)))

    def _gen_builtin(self, expr: Call, depth):
        self.gen_expr(expr.args[0], depth)
        for reg in range(depth):
            self.emit(ins.str_sp(reg, self._spill_offset(reg)))
        if depth:
            self.emit(ins.movr(0, depth))
        number = 1 if expr.name == "__print_int" else 2
        self.emit(ins.swi(number))
        for reg in range(depth):
            self.emit(ins.ldr_sp(reg, self._spill_offset(reg)))

    # -- conditional branches ---------------------------------------------------------------

    def gen_branch(self, expr, target, when_true, depth=0):
        """Branch to *target* when *expr* is true (or false)."""
        self._check_depth(depth)
        if isinstance(expr, Unary) and expr.op == "!":
            self.gen_branch(expr.operand, target, not when_true, depth)
            return
        if isinstance(expr, Binary) and expr.op in ("&&", "||"):
            # Normalise to && by De Morgan when branching on falsehood.
            is_and = expr.op == "&&"
            if is_and == when_true:
                # (a && b) -> true  |  (a || b) -> false : both sides decide
                label_skip = self._new_label()
                self.gen_branch(expr.left, label_skip, not when_true, depth)
                self.gen_branch(expr.right, target, when_true, depth)
                self.place(label_skip)
            else:
                # (a && b) -> false |  (a || b) -> true : either side decides
                self.gen_branch(expr.left, target, when_true, depth)
                self.gen_branch(expr.right, target, when_true, depth)
            return
        if isinstance(expr, Binary) and expr.op in (
                "<", "<=", ">", ">=", "==", "!="):
            self.gen_expr(expr.left, depth)
            if isinstance(expr.right, IntLit) and \
                    0 <= expr.right.value <= 255:
                self.emit(ins.cmpi(depth, expr.right.value))
            else:
                self.gen_expr(expr.right, depth + 1)
                self.emit(ins.alu(Op.CMP, depth, depth + 1))
            cond = self._cond_for(expr)
            if not when_true:
                cond = _INVERSE[cond]
            self.emit(ins.bcc(cond, target))
            return
        if isinstance(expr, IntLit):
            truth = expr.value != 0
            if truth == when_true:
                self.emit(ins.b(target))
            return
        self.gen_expr(expr, depth)
        self.emit(ins.cmpi(depth, 0))
        self.emit(ins.bcc(Cond.NE if when_true else Cond.EQ, target))

    # -- statements ----------------------------------------------------------------------------

    def gen_stmt(self, stmt):
        if isinstance(stmt, Block):
            for child in stmt.body:
                self.gen_stmt(child)
                self.maybe_dump_pool()
        elif isinstance(stmt, ExprStmt):
            self.gen_expr(stmt.expr, 0, used=False)
        elif isinstance(stmt, LocalDecl):
            self._slot_of(stmt.symbol)  # reserve the slot deterministically
            if stmt.init is not None:
                self.gen_expr(stmt.init, 0)
                self.emit(ins.str_sp(0, self._slot_offset(stmt.symbol)))
        elif isinstance(stmt, If):
            label_end = self._new_label()
            if stmt.other is None:
                self.gen_branch(stmt.cond, label_end, when_true=False)
                self.gen_stmt(stmt.then)
                self.place(label_end)
            else:
                label_else = self._new_label()
                self.gen_branch(stmt.cond, label_else, when_true=False)
                self.gen_stmt(stmt.then)
                self.emit(ins.b(label_end))
                self.place(label_else)
                self.gen_stmt(stmt.other)
                self.place(label_end)
        elif isinstance(stmt, While):
            label_cond = self._new_label()
            label_end = self._new_label()
            self.place(label_cond)
            if stmt.bound is not None:
                self.loop_bounds[label_cond] = stmt.bound
            if stmt.bound_total is not None:
                self.loop_totals[label_cond] = stmt.bound_total
            self.gen_branch(stmt.cond, label_end, when_true=False)
            self._loop_stack.append((label_end, label_cond))
            self.gen_stmt(stmt.body)
            self._loop_stack.pop()
            self.emit(ins.b(label_cond))
            self.place(label_end)
        elif isinstance(stmt, DoWhile):
            label_body = self._new_label()
            label_cond = self._new_label()
            label_end = self._new_label()
            self.place(label_body)
            if stmt.bound is not None:
                self.loop_bounds[label_body] = stmt.bound
            if stmt.bound_total is not None:
                self.loop_totals[label_body] = stmt.bound_total
            self._loop_stack.append((label_end, label_cond))
            self.gen_stmt(stmt.body)
            self._loop_stack.pop()
            self.place(label_cond)
            self.gen_branch(stmt.cond, label_body, when_true=True)
            self.place(label_end)
        elif isinstance(stmt, For):
            label_cond = self._new_label()
            label_cont = self._new_label()
            label_end = self._new_label()
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            self.place(label_cond)
            if stmt.bound is not None:
                self.loop_bounds[label_cond] = stmt.bound
            if stmt.bound_total is not None:
                self.loop_totals[label_cond] = stmt.bound_total
            if stmt.cond is not None:
                self.gen_branch(stmt.cond, label_end, when_true=False)
            self._loop_stack.append((label_end, label_cont))
            self.gen_stmt(stmt.body)
            self._loop_stack.pop()
            self.place(label_cont)
            if stmt.update is not None:
                self.gen_expr(stmt.update, 0, used=False)
            self.emit(ins.b(label_cond))
            self.place(label_end)
        elif isinstance(stmt, Return):
            if stmt.value is not None:
                self.gen_expr(stmt.value, 0)
            self.emit(ins.b(self._ret_label))
        elif isinstance(stmt, Break):
            self.emit(ins.b(self._loop_stack[-1][0]))
        elif isinstance(stmt, Continue):
            self.emit(ins.b(self._loop_stack[-1][1]))
        else:
            raise CodegenError(f"cannot generate {type(stmt).__name__}")

    # -- whole function -----------------------------------------------------------------------

    def generate(self) -> FunctionCode:
        func = self.func
        # Reserve every local's slot up front (params first — they are
        # stored there by the prologue), then place the call-spill area
        # directly above, so spill offsets are stable during body
        # generation.
        for symbol in self.info.locals:
            self._slot_of(symbol)
        self._spill_base = len(self._slots)
        body_items_start = len(self.items)
        self.gen_stmt(func.body)
        body = self.items[body_items_start:]
        del self.items[body_items_start:]

        frame_words = self._out_words + len(self._slots) + self._max_spill
        frame_size = 4 * frame_words
        if frame_size > 1020:
            raise CodegenError(f"{func.name}: frame too large")

        prologue = [Label(func.name), ins.push((), lr=True)]
        for chunk_start in range(0, frame_size, 508):
            prologue.append(ins.sp_adjust(
                -min(508, frame_size - chunk_start)))
        for index, param in enumerate(func.params):
            slot = 4 * (self._out_words + self._slot_of(param.symbol))
            if index < 4:
                prologue.append(ins.str_sp(index, slot))
            else:
                # Stack-passed argument: it sits just above this frame
                # (frame + pushed lr) in the caller's outgoing area.
                incoming = frame_size + 4 + 4 * (index - 4)
                prologue.append(ins.ldr_sp(4, incoming))
                prologue.append(ins.str_sp(4, slot))

        epilogue_start = len(self.items)
        self.place(self._ret_label)
        for chunk_start in range(0, frame_size, 508):
            self.emit(ins.sp_adjust(min(508, frame_size - chunk_start)))
        self.emit(ins.pop((), pc=True))
        if self._pool_items:
            self._append_pool_entries()
        epilogue = self.items[epilogue_start:]
        del self.items[epilogue_start:]

        items = prologue + body + epilogue
        return FunctionCode(func.name, items, loop_bounds=self.loop_bounds,
                            loop_totals=self.loop_totals)
