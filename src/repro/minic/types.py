"""Type system for mini-C.

Scalar types map onto the T16 access widths that drive Table-1 timing:
``int``/``unsigned`` are 32-bit, ``short`` is a signed 16-bit halfword,
``char`` is an unsigned byte.  All values are promoted to 32 bits in
registers (the usual C integer promotion); width matters only at loads,
stores and casts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScalarType:
    name: str
    width: int
    signed: bool

    def __str__(self):
        return self.name


INT = ScalarType("int", 4, True)
UNSIGNED = ScalarType("unsigned", 4, False)
SHORT = ScalarType("short", 2, True)
CHAR = ScalarType("char", 1, False)
VOID = ScalarType("void", 0, True)

_BY_NAME = {t.name: t for t in (INT, UNSIGNED, SHORT, CHAR, VOID)}


def scalar(name: str) -> ScalarType:
    return _BY_NAME[name]


@dataclass(frozen=True)
class ArrayType:
    elem: ScalarType
    size: int  # element count

    @property
    def width(self):
        return self.elem.width

    @property
    def byte_size(self):
        return self.elem.width * self.size

    def __str__(self):
        return f"{self.elem}[{self.size}]"


@dataclass(frozen=True)
class PointerType:
    elem: ScalarType

    width = 4
    signed = False

    def __str__(self):
        return f"{self.elem}*"


def is_scalar(t) -> bool:
    return isinstance(t, ScalarType) and t is not VOID


def is_pointerish(t) -> bool:
    return isinstance(t, (PointerType, ArrayType))


def common_signedness(a, b) -> bool:
    """C-style: the result is signed only if both operands are signed."""
    signed_a = a.signed if isinstance(a, ScalarType) else False
    signed_b = b.signed if isinstance(b, ScalarType) else False
    return signed_a and signed_b
