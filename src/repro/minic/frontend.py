"""Compiler driver: mini-C source -> relocatable :class:`Program`.

Pipeline: parse -> sema -> per-function codegen -> program assembly with
the runtime (``_start`` stub and, when division is used, the software
divide helpers — ARM7 has no divide instruction, so ``/`` and ``%`` lower
to calls, exactly as on the real platform).  Unreachable functions are
dropped so the allocator only sees objects that can execute.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa import instruction as ins
from ..isa.assembler import Label
from ..link.objects import DataObject, FunctionCode, Program
from .codegen import FunctionCodegen
from .parser import parse
from .sema import SemaError, analyze
from .types import ArrayType

#: Software division/modulo runtime, in mini-C itself (restoring
#: shift-subtract division; the loops are automatically bounded at 32).
RUNTIME_SOURCE = """
unsigned __divu(unsigned n, unsigned d) {
    unsigned q = 0;
    unsigned r = 0;
    int i;
    for (i = 31; i >= 0; i = i - 1) {
        r = (r << 1) | ((n >> i) & 1u);
        if (r >= d) {
            r = r - d;
            q = q | (1u << i);
        }
    }
    return q;
}

unsigned __modu(unsigned n, unsigned d) {
    unsigned r = 0;
    int i;
    for (i = 31; i >= 0; i = i - 1) {
        r = (r << 1) | ((n >> i) & 1u);
        if (r >= d) {
            r = r - d;
        }
    }
    return r;
}

int __divs(int n, int d) {
    int negative = 0;
    unsigned un;
    unsigned ud;
    unsigned q;
    if (n < 0) { un = (unsigned)(0 - n); negative = !negative; }
    else { un = (unsigned)n; }
    if (d < 0) { ud = (unsigned)(0 - d); negative = !negative; }
    else { ud = (unsigned)d; }
    q = __divu(un, ud);
    if (negative) { return 0 - (int)q; }
    return (int)q;
}

int __mods(int n, int d) {
    unsigned un;
    unsigned ud;
    unsigned r;
    if (n < 0) { un = (unsigned)(0 - n); } else { un = (unsigned)n; }
    if (d < 0) { ud = (unsigned)(0 - d); } else { ud = (unsigned)d; }
    r = __modu(un, ud);
    if (n < 0) { return 0 - (int)r; }
    return (int)r;
}
"""


@dataclass
class CompiledProgram:
    """Compiler output: the linkable program plus analysis results."""

    program: Program
    analyzer: object

    @property
    def functions(self):
        return self.program.functions

    @property
    def globals(self):
        return self.program.globals


def _start_stub(entry: str) -> FunctionCode:
    """The boot stub: call the entry function, exit with its result."""
    items = [Label("_start"), ins.bl(entry), ins.swi(0)]
    return FunctionCode("_start", items)


def _global_payload(symbol) -> bytes:
    gtype = symbol.type
    if isinstance(gtype, ArrayType):
        width = gtype.elem.width
        payload = bytearray(gtype.byte_size)
        for index, value in enumerate(symbol.init or []):
            payload[index * width:(index + 1) * width] = (
                value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
        return bytes(payload)
    width = gtype.width
    value = symbol.init or 0
    return (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")


def _reachable_functions(analyzer, entry: str) -> set:
    seen = set()
    work = [entry]
    while work:
        name = work.pop()
        if name in seen or name not in analyzer.infos:
            continue
        seen.add(name)
        work.extend(analyzer.infos[name].calls)
    return seen


def compile_source(source: str, entry: str = "main") -> CompiledProgram:
    """Compile mini-C *source* into a linkable program.

    The program's entry point is the ``_start`` stub, which calls *entry*
    and exits with its return value.
    """
    unit = parse(source + RUNTIME_SOURCE)
    analyzer = analyze(unit)
    if entry not in analyzer.functions:
        raise SemaError(f"entry function {entry!r} not defined")

    reachable = _reachable_functions(analyzer, entry)
    functions = [_start_stub(entry)]
    for func in unit.functions:
        if func.name not in reachable:
            continue
        info = analyzer.infos[func.name]
        functions.append(FunctionCodegen(analyzer, info).generate())

    globals_ = [
        DataObject(
            name=symbol.name,
            payload=_global_payload(symbol),
            align=4,
            readonly=symbol.const,
            element_width=(symbol.type.elem.width
                           if isinstance(symbol.type, ArrayType)
                           else symbol.type.width),
        )
        for symbol in analyzer.globals.values()
    ]

    program = Program(functions=functions, globals=globals_, entry="_start")
    return CompiledProgram(program=program, analyzer=analyzer)
