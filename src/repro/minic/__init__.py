"""Mini-C: the benchmark implementation language and its compiler.

Mini-C is the C subset the paper's benchmarks are written in here:

* types: ``int`` (32-bit signed), ``unsigned`` (32-bit), ``short``
  (16-bit signed), ``char`` (8-bit unsigned); 1-D global arrays of any of
  these; ``const`` global arrays/scalars (read-only data);
* pointers exist only as **function parameters** (``int a[]`` / ``int *a``)
  and are read-only — this keeps the compiler's points-to facts exact,
  which feeds the automated WCET access annotations;
* statements: blocks, ``if``/``else``, ``while``, ``do``-``while``,
  ``for``, ``break``, ``continue``, ``return``; declarations of scalar
  locals (local arrays are not supported — make them global, which is also
  what the paper's allocation granularity wants);
* expressions: full C operator set including ``?:``, compound assignment
  and casts; ``++``/``--`` desugar to assignments;
* ``#pragma loopbound n`` annotates the maximal iteration count of the
  following loop when the compiler cannot derive it (counted ``for`` loops
  with constant bounds are derived automatically);
* builtins: ``__print_int(x)``, ``__print_char(c)``;
* ``/`` and ``%`` lower to a software division runtime (ARM7-style).

The compiler emits one relocatable code object per function and one data
object per global — the paper's "memory objects".
"""

from .lexer import LexError, tokenize
from .parser import ParseError, parse
from .sema import SemaError, analyze
from .codegen import CodegenError
from .frontend import CompiledProgram, RUNTIME_SOURCE, compile_source

__all__ = [
    "LexError", "tokenize", "ParseError", "parse", "SemaError", "analyze",
    "CodegenError", "CompiledProgram", "RUNTIME_SOURCE", "compile_source",
]
