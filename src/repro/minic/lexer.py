"""Lexer for mini-C, the benchmark implementation language.

Mini-C is the C subset the benchmarks are written in (see
:mod:`repro.minic` for the language definition).  The lexer additionally
recognises ``#pragma loopbound <n>`` lines, which carry the user loop-bound
annotations that the paper's aiT workflow requires for loops the tool
cannot bound automatically.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "int", "short", "char", "unsigned", "void", "const",
    "if", "else", "while", "do", "for", "return", "break", "continue",
}

# Longest first so '>>=' wins over '>>' wins over '>'.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]


class LexError(Exception):
    def __init__(self, message, line):
        super().__init__(f"line {line}: {message}")
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str      # 'num' | 'ident' | 'kw' | 'op' | 'pragma' | 'eof'
    text: str
    line: int
    value: int = 0

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


def tokenize(source: str) -> list:
    """Tokenise *source*; returns a list ending with an 'eof' token."""
    tokens = []
    line = 1
    i = 0
    n = len(source)
    while i < n:
        char = source[i]
        if char == "\n":
            line += 1
            i += 1
            continue
        if char in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i)
            if end < 0:
                raise LexError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if char == "#":
            end = source.find("\n", i)
            if end < 0:
                end = n
            directive = source[i:end].strip()
            parts = directive.split()
            if (len(parts) == 3 and parts[0] == "#pragma"
                    and parts[1] in ("loopbound", "loopbound_total")):
                try:
                    bound = int(parts[2], 0)
                except ValueError:
                    raise LexError(
                        f"bad loop bound {parts[2]!r}", line) from None
                tokens.append(Token("pragma", parts[1], line, bound))
            else:
                raise LexError(f"unsupported directive {directive!r}", line)
            i = end
            continue
        if char.isdigit():
            j = i
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            # Optional unsigned suffix.
            if j < n and source[j] in "uU":
                j += 1
                tokens.append(Token("unum", source[i:j], line, value))
            else:
                tokens.append(Token("num", source[i:j], line, value))
            i = j
            continue
        if char == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                escapes = {"n": 10, "t": 9, "0": 0, "r": 13,
                           "\\": 92, "'": 39}
                if j + 1 >= n or source[j + 1] not in escapes:
                    raise LexError("bad escape in char literal", line)
                value = escapes[source[j + 1]]
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            if j >= n or source[j] != "'":
                raise LexError("unterminated char literal", line)
            tokens.append(Token("num", source[i:j + 1], line, value))
            i = j + 1
            continue
        if char.isalpha() or char == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {char!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
