"""Worker-side evaluation of canonical serve requests.

:func:`serve_unit` is the :class:`~repro.serve.supervisor.
SupervisedPool` runner the daemon fans requests out to: a picklable
module-level function taking one canonical request (as produced by
:func:`repro.serve.protocol.canonical_request`) and returning a plain
JSON-serialisable result dict.  Everything is answered from the
existing :class:`~repro.workflow.Workflow` machinery — the daemon adds
supervision and dedup, never a second evaluation path — so a served
result is, field for field, what the same direct Workflow calls
produce.

:func:`evaluate_request` is the pure core (no fault hooks): it is what
``rerun_request`` — the copy-pasteable repro command attached to
``failed``/``deadline`` responses — executes, and what the load
generator uses as fault-free ground truth when verifying a faulted
daemon's responses byte-for-byte.

Workers memoise per benchmark/source: suite and generated benchmarks
share :func:`repro.experiments.common.workflow_for`'s process-wide
cache, inline sources get a bounded LRU keyed by content.  On top of
the in-process memo, workers join the daemon's shared on-disk reuse
caches (recorded traces, cache-analysis fixpoints) through
:func:`serve_worker_init`, exactly like ``evaluate_points`` workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import time

from ..store import LRUCache

#: Inline-source workflows, keyed by source sha256 (bounded: a serve
#: worker is long-lived and clients may stream arbitrary programs).
_SOURCE_WORKFLOWS = LRUCache(capacity=32)


def serve_worker_init(cache_dir=None, warm_keys=(), shard_dirs=(),
                      replicas=1):
    """Worker bootstrap (the pool initializer the daemon installs).

    Joins the daemon's shared on-disk reuse caches and warms the named
    benchmarks — a no-op on fork platforms when the daemon pre-warmed
    them (the compiled workflows are inherited), a one-off cost on
    spawn platforms or after a pool rebuild.

    With *shard_dirs* the reuse caches become one
    :class:`~repro.store.ShardedArtifactStore` per layer, partitioned
    over the shard roots with *replicas* write-behind copies — the
    cluster deployment, where every daemon mounts the same shard set
    and a lost shard only loses the keys it owned.
    """
    from ..experiments import common
    common.set_jobs(1)  # serve workers never nest their own pools
    if shard_dirs:
        from ..sim.trace import set_trace_store
        from ..store import ShardedArtifactStore
        from ..wcet.cacheanalysis import set_analysis_store
        set_analysis_store(ShardedArtifactStore(
            [os.path.join(root, "analysis") for root in shard_dirs],
            suffix=".pkl", replicas=replicas))
        set_trace_store(ShardedArtifactStore(
            [os.path.join(root, "traces") for root in shard_dirs],
            suffix=".trace.pkl", replicas=replicas))
    elif cache_dir:
        from ..sim.trace import set_trace_cache_dir
        from ..wcet.cacheanalysis import set_analysis_cache_dir
        set_analysis_cache_dir(os.path.join(cache_dir, "analysis"))
        set_trace_cache_dir(os.path.join(cache_dir, "traces"))
    for key in warm_keys:
        common.workflow_for(key).warm()


def _workflow(request):
    from ..experiments.common import workflow_for
    source = request.get("source")
    if source is None:
        return workflow_for(request["bench"])
    from ..workflow import Workflow
    key = hashlib.sha256(source.encode()).hexdigest()
    workflow = _SOURCE_WORKFLOWS.get(key)
    if workflow is None:
        workflow = Workflow(source)
        _SOURCE_WORKFLOWS[key] = workflow
    return workflow


def _sim_fields(sim) -> dict:
    fields = {
        "cycles": sim.cycles,
        "instructions": sim.instructions,
        "exit_code": sim.exit_code,
    }
    if sim.cache_stats is not None:
        fields["cache"] = {"hits": sim.cache_stats.hits,
                           "misses": sim.cache_stats.misses}
    return fields


def _point(workflow, request):
    """The EvaluationPoint a simulate/wcet config spec names."""
    from ..memory.cache import CacheConfig
    from ..serve.protocol import system_config
    spec = request.get("config", {})
    persistence = bool(request.get("persistence", False))
    spm = spec.get("spm")
    if spm:
        method = spec.get("alloc", "energy")
        if spec.get("cache"):
            cache = CacheConfig(size=spec["cache"],
                                line_size=spec.get("line", 16),
                                assoc=spec.get("assoc", 1),
                                unified=not spec.get("icache", False))
            return workflow.hybrid_point(spm, cache, method=method,
                                         persistence=persistence)
        return workflow.spm_point(spm, method)
    return workflow.config_point(system_config(spec),
                                 persistence=persistence)


def evaluate_request(request: dict) -> dict:
    """Evaluate one canonical request directly (no daemon, no faults).

    This is the ground truth the daemon's responses are measured
    against: ``result`` fields of a served response are exactly this
    function's return value for the same canonical request.
    """
    op = request["op"]
    if op == "sleep":
        time.sleep(request.get("seconds", 0.1))
        return {"slept": request.get("seconds", 0.1)}
    workflow = _workflow(request)
    if op == "compile":
        return {"content_key": workflow.baseline_image().content_key()}
    if op == "simulate":
        spec = request.get("config", {})
        if spec.get("spm"):
            point = _point(workflow, request)
            fields = _sim_fields(point.sim)
            fields["config"] = point.config.name
            return fields
        from ..serve.protocol import system_config
        config = system_config(spec)
        fields = _sim_fields(workflow.sim_for(config))
        fields["config"] = config.name
        return fields
    if op == "wcet":
        return _point(workflow, request).row()
    if op == "sweep":
        from ..memory.cache import CacheConfig
        specs = [
            (CacheConfig(size=size, line_size=request["line"],
                         assoc=request["assoc"],
                         unified=request["unified"]),
             request["persistence"])
            for size in request["sizes"]]
        return {"rows": [point.row()
                         for point in workflow.cache_points(specs)]}
    if op == "grid":
        from ..memory.cache import CacheConfig
        line = request["line"]
        grid, skipped = [], []
        for size in request["sizes"]:
            for assoc in request["assocs"]:
                if size >= line * assoc:
                    grid.append(CacheConfig(
                        size=size, line_size=line, assoc=assoc,
                        unified=not request["icache"]))
                else:
                    skipped.append([size, assoc])
        sims = workflow.cache_sims(grid)
        cells = [{"size": cache.size, "assoc": cache.assoc,
                  "cycles": sims[cache].cycles} for cache in grid]
        return {"line": line, "icache": request["icache"],
                "cells": cells, "skipped": skipped}
    raise ValueError(f"unhandled op {op!r}")  # pragma: no cover


def serve_unit(request: dict) -> dict:
    """Pool-worker entry: fault hook + :func:`evaluate_request`."""
    if os.environ.get("REPRO_FAULT_UNIT"):
        # Deterministic crash/hang/raise injection for the serve
        # resilience tests; a no-op unless the env var is set.
        from ..testing.faults import unit_fault
        unit_fault()
    return evaluate_request(request)


def rerun_request(blob):
    """Re-evaluate a failed request directly (the repro command).

    Accepts the canonical request dict or its JSON as attached to a
    ``failed``/``deadline`` response; prints the result the daemon's
    workers should have produced, as one canonical JSON line.
    """
    request = json.loads(blob) if isinstance(blob, str) else blob
    result = evaluate_request(request)
    print(json.dumps(result, sort_keys=True))
    return result
