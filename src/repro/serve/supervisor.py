"""Supervised worker pool: the one hardened process-fan-out scheduler.

PR 8 taught ``repro.experiments.common.evaluate_points`` to survive
crashed, hung and flaky workers: per-unit wall-clock timeouts, retry
with exponential backoff, and tearing a broken/hung pool down (killing
the processes) before rebuilding it and re-enqueueing everything that
was merely in flight, uncharged.  The serving daemon needs exactly the
same supervision — but as a *long-lived* service, not a run-to-
completion batch.  This module is that logic extracted into a shared,
submission-driven form:

:class:`SupervisedPool` owns a background scheduler thread and a
``ProcessPoolExecutor``.  :meth:`SupervisedPool.submit` hands one item
to the pool's *runner* (a picklable module-level function) and returns
a :class:`concurrent.futures.Future` that resolves to the runner's
result — or to a :class:`TaskFailure` once the item has exhausted its
retry budget.  The invariants the resilience suite pins down carry
over verbatim:

* a task that raises in the worker is retried with exponential
  backoff, up to ``retries`` re-runs;
* a worker crash (``BrokenProcessPool``) or a task exceeding the
  per-task timeout tears the whole pool down (hung processes are
  killed), rebuilds it, and re-enqueues everything that was in
  flight — tasks merely caught in the rebuild do not lose an attempt;
* at most ``workers`` tasks are dispatched to the executor at a time,
  so the per-task timeout measures (approximately) execution, not
  queueing, and a hung task cannot hide behind a deep executor queue;
* the pool never blocks its callers on backoff sleeps: retries are
  scheduled by ready-time inside the scheduler loop.

Counters (``submitted`` / ``completed`` / ``failed`` / ``retries`` /
``timeouts`` / ``crashes`` / ``rebuilds``) make the supervision
observable; the daemon republishes them through its ``stats`` op.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool

#: Fresh counter block (:attr:`SupervisedPool.counters`).
POOL_COUNTER_KEYS = (
    "submitted", "completed", "failed", "retries", "timeouts",
    "crashes", "rebuilds",
)


class TaskFailure(RuntimeError):
    """A supervised task exhausted its retry budget.

    Carries how many attempts were charged and the last error — an
    exception instance for in-worker raises and crashes, a string for
    timeouts — so callers can build structured reports
    (:class:`repro.experiments.common.SweepFailure`, the daemon's
    ``failed`` responses) without parsing a message.
    """

    def __init__(self, attempts: int, error):
        self.attempts = attempts
        self.error = error
        super().__init__(
            f"task failed after {attempts} attempt(s): "
            f"{self.describe()}")

    def describe(self) -> str:
        if isinstance(self.error, BaseException):
            return repr(self.error)
        return str(self.error)


class _Ticket:
    """One submitted item's scheduling state."""

    __slots__ = ("item", "future", "attempts", "not_before")

    def __init__(self, item):
        self.item = item
        self.future = Future()
        self.attempts = 0
        self.not_before = 0.0


def stop_pool(pool):
    """Tear an executor down hard — hung or crashed workers included."""
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.kill()
        except Exception:
            pass


class SupervisedPool:
    """Process pool with crash/hang supervision and retry scheduling.

    *runner* is the picklable function each worker applies to a
    submitted item.  ``timeout`` is the per-task wall-clock budget in
    seconds (None disables), ``retries`` the number of re-runs after a
    task's first charged failure, ``backoff`` the base delay (doubling
    per charged attempt) before a retry is dispatched again.
    """

    def __init__(self, runner, workers: int, *, mp_context=None,
                 initializer=None, initargs=(), timeout=600.0,
                 retries: int = 2, backoff: float = 0.25,
                 name: str = "supervised-pool"):
        self._runner = runner
        self.workers = max(1, int(workers))
        self._mp_context = mp_context
        self._initializer = initializer
        self._initargs = initargs
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.counters = dict.fromkeys(POOL_COUNTER_KEYS, 0)
        self._outstanding = 0
        self._closed = False
        self._inbox = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        # Build (and eagerly fork) the first executor *here*, while the
        # owner is still setting up.  Deferring it to the scheduler
        # loop's first dispatch would fork workers at an arbitrary
        # later moment — for the serving daemon, after clients have
        # connected, so every worker inherits duplicates of the open
        # connection fds and a connection the daemon closes stays
        # alive in the kernel (no EOF/RST) until the pool dies.
        self._initial_pool = self._make_pool()
        self._thread = threading.Thread(target=self._guarded_loop,
                                        name=name, daemon=True)
        self._thread.start()

    # -- the public face -----------------------------------------------------

    def submit(self, item) -> Future:
        """Schedule *item*; the future resolves to the runner's result
        or raises :class:`TaskFailure` after the retry budget."""
        ticket = _Ticket(item)
        with self._wake:
            if self._closed:
                raise RuntimeError("pool is shut down")
            self.counters["submitted"] += 1
            self._outstanding += 1
            self._inbox.append(ticket)
            self._wake.notify()
        return ticket.future

    def idle(self) -> bool:
        """True when no submitted task is pending or in flight."""
        with self._lock:
            return self._outstanding == 0

    def drain(self, timeout=None) -> bool:
        """Wait (up to *timeout* seconds) for every task to settle."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while not self.idle():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.02)
        return True

    def shutdown(self):
        """Stop the scheduler once every submitted task has settled."""
        with self._wake:
            self._closed = True
            self._wake.notify()
        self._thread.join()

    # -- the scheduler loop --------------------------------------------------

    def _settle(self, ticket, result=None, error=None):
        with self._lock:
            self._outstanding -= 1
        if error is None:
            self.counters["completed"] += 1
            ticket.future.set_result(result)
        else:
            self.counters["failed"] += 1
            ticket.future.set_exception(
                TaskFailure(ticket.attempts, error))

    def _retry(self, ticket, error, pending):
        """Charge *ticket* for a failed attempt: retry or fail it."""
        if ticket.attempts > self.retries:
            self._settle(ticket, error=error)
            return
        self.counters["retries"] += 1
        delay = self.backoff * (2 ** (ticket.attempts - 1)) \
            if self.backoff else 0.0
        ticket.not_before = time.monotonic() + delay
        pending.append(ticket)

    def _make_pool(self):
        pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=self._mp_context,
            initializer=self._initializer, initargs=self._initargs)
        # Fork every worker up front instead of lazily on first
        # submit.  On fork platforms a lazily-forked worker inherits
        # every fd the parent has open at submit time — for the
        # serving daemon that includes accepted client sockets, whose
        # inherited duplicates then keep a connection alive (no EOF)
        # long after the daemon closes its copy.  The first pool is
        # built at construction, before the daemon binds its
        # listeners; only a rebuild can fork while client fds are
        # open, which is why daemon-side closes also shutdown() the
        # connection (shutdown acts on the connection, not the fd).
        if hasattr(pool, "_adjust_process_count"):
            for _ in range(self.workers):
                pool._adjust_process_count()
        return pool

    def _guarded_loop(self):
        try:
            self._loop()
        except BaseException as error:  # pragma: no cover - last resort
            # Never strand callers blocked on futures: a scheduler bug
            # fails every outstanding ticket instead of deadlocking.
            with self._lock:
                inbox = list(self._inbox)
                self._inbox.clear()
                self._closed = True
            for ticket in inbox:
                self._settle(ticket, error=error)
            raise

    def _loop(self):
        pending = []   # tickets awaiting (re)dispatch
        inflight = {}  # executor future -> (ticket, submit time)
        pool, self._initial_pool = self._initial_pool, None
        try:
            while True:
                with self._wake:
                    while self._inbox:
                        pending.append(self._inbox.popleft())
                    if not pending and not inflight:
                        if self._closed:
                            break
                        self._wake.wait(timeout=0.2)
                        continue
                now = time.monotonic()
                # Dispatch ready tickets, at most ``workers`` in flight
                # so the timeout clock measures execution, not queueing.
                ready = [ticket for ticket in pending
                         if ticket.not_before <= now]
                rebuild = False
                while ready and len(inflight) < self.workers:
                    if pool is None:
                        pool = self._make_pool()
                    ticket = ready.pop(0)
                    ticket.attempts += 1
                    try:
                        future = pool.submit(self._runner, ticket.item)
                    except BrokenProcessPool:
                        ticket.attempts -= 1  # uncharged: pool's fault
                        rebuild = True
                        break
                    pending.remove(ticket)
                    inflight[future] = (ticket, time.monotonic())
                if inflight and not rebuild:
                    finished = self._await_some(inflight, pending)
                    broken = False
                    for future in finished:
                        ticket, _t0 = inflight.pop(future)
                        error = future.exception()
                        if error is None:
                            self._settle(ticket, future.result())
                        elif isinstance(error, BrokenProcessPool):
                            broken = True
                            self.counters["crashes"] += 1
                            self._retry(ticket, error, pending)
                        else:
                            self._retry(ticket, error, pending)
                    now = time.monotonic()
                    timed_out = set()
                    if self.timeout is not None:
                        timed_out = {
                            future
                            for future, (_t, t0) in inflight.items()
                            if now - t0 > self.timeout}
                    if broken or timed_out:
                        for future, (ticket, _t0) in inflight.items():
                            if future in timed_out:
                                self.counters["timeouts"] += 1
                                self._retry(
                                    ticket,
                                    f"unit timeout (> {self.timeout:g}s "
                                    "wall clock)", pending)
                            else:
                                # Innocent bystander of the rebuild.
                                ticket.attempts -= 1
                                ticket.not_before = 0.0
                                pending.append(ticket)
                        inflight.clear()
                        rebuild = True
                if rebuild:
                    # A worker died or hangs: kill the whole pool and
                    # start fresh (re-forked workers re-run their
                    # initializer and count faults from zero).
                    self.counters["rebuilds"] += 1
                    if pool is not None:
                        stop_pool(pool)
                        pool = None
                    continue
                if not inflight and pending:
                    # Everything is backing off; nap until the first
                    # ticket is ready (or a new submission wakes us).
                    delay = min(ticket.not_before
                                for ticket in pending) - time.monotonic()
                    if delay > 0:
                        with self._wake:
                            if not self._inbox:
                                self._wake.wait(
                                    timeout=min(delay, 0.2))
        finally:
            if pool is not None:
                self._reap(pool)

    @staticmethod
    def _reap(pool):
        """Shut *pool* down without orphaning never-used workers.

        ``executor.shutdown`` stops workers through the manager
        thread, which only starts on the first ``submit``; a pool
        that was eagerly forked but never submitted to has no
        manager, so its workers would stay blocked on the call queue
        forever — and interpreter exit would block joining them.
        Nothing is in flight by the time this runs, so killing any
        survivor loses no work.
        """
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=True)
        for process in processes:
            if process.is_alive():
                process.kill()
            process.join()

    def _await_some(self, inflight, pending):
        """Block until progress is possible; return finished futures."""
        tick = 0.1  # poll floor: new submissions and backoff wake-ups
        if self.timeout is not None:
            deadline = min(t0 + self.timeout
                           for _, t0 in inflight.values())
            tick = min(tick, max(0.02, deadline - time.monotonic()))
        now = time.monotonic()
        backing_off = [ticket.not_before for ticket in pending
                       if ticket.not_before > now]
        if backing_off:
            tick = min(tick, max(0.02, min(backing_off) - now))
        finished, _ = wait(list(inflight), timeout=tick,
                           return_when=FIRST_COMPLETED)
        return finished
