"""``repro-serve-load``: load generator + correctness harness.

Drives a serving daemon with a seeded, repeatable mix of
compile/simulate/wcet/sweep/grid requests from concurrent clients —
heavy on repeats, so dedup and the result memo actually get exercised
— and measures throughput and latency.  Two properties are *checked*,
not just measured:

* **Byte-identical serving.**  Every ok response for one request key
  must carry the same canonical result JSON, and that JSON must equal
  a direct, in-process :func:`repro.serve.worker.evaluate_request`
  evaluation of the same canonical request.  Because the local
  evaluation has no fault hooks, this is fault-free ground truth: run
  the load with ``REPRO_FAULT_UNIT=crash@5+`` or a
  ``REPRO_FAULT_SERVE`` slice and the check proves the daemon's
  supervision and the client's transport recovery returned *correct*
  answers, not just answers.

* **Graceful drain.**  ``--sigterm-mid`` SIGTERMs the spawned daemon
  mid-load; in-flight requests must still be answered, later ones be
  rejected as ``draining`` (counted, not failed), and the daemon
  process must exit 0 within its drain deadline.

Exit status is 0 only when every check passed.  ``--json FILE`` writes
the metrics (the ``benchmarks/bench_suite.py`` serve section reads
them into ``BENCH_serve.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

from .client import ServeClient, ServeError, ServeTransportError
from .protocol import canonical_request, request_key


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve-load",
        description="load-test a repro-serve daemon and verify its "
                    "responses against direct evaluation")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="existing daemon socket (default: spawn "
                             "a private daemon for the run)")
    parser.add_argument("--requests", type=int, default=300,
                        help="total requests to send (default 300)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--benches", default="crc,fir",
                        help="comma-separated benchmarks to mix "
                             "(default crc,fir)")
    parser.add_argument("--seed", type=int, default=1234,
                        help="request-mix seed (default 1234)")
    parser.add_argument("--workers", type=int, default=2,
                        help="spawned daemon's worker count "
                             "(default 2)")
    parser.add_argument("--queue-depth", type=int, default=32,
                        help="spawned daemon's admission depth "
                             "(default 32)")
    parser.add_argument("--drain-timeout", type=float, default=15.0,
                        help="spawned daemon's drain deadline "
                             "(default 15)")
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: 80 requests, 3 clients, "
                             "one benchmark")
    parser.add_argument("--sigterm-mid", action="store_true",
                        help="SIGTERM the spawned daemon mid-load "
                             "and require a clean drain")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the byte-identical ground-truth "
                             "check")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write metrics JSON here")
    return parser


def build_requests(benches, total, seed, *, heavy=True) -> list:
    """The seeded request mix: a small distinct pool, sampled with
    repeats so dedup/memo paths dominate, exactly like a build system
    hammering a shared analysis service."""
    pool = []
    for bench in benches:
        pool.extend([
            {"op": "compile", "bench": bench},
            {"op": "simulate", "bench": bench},
            {"op": "simulate", "bench": bench,
             "config": {"cache": 256}},
            {"op": "simulate", "bench": bench,
             "config": {"cache": 256, "l2": 1024}},
            {"op": "wcet", "bench": bench, "config": {"cache": 256}},
            {"op": "wcet", "bench": bench,
             "config": {"cache": 512, "assoc": 2},
             "persistence": True},
            {"op": "sweep", "bench": bench,
             "sizes": [64, 128, 256, 512]},
            {"op": "grid", "bench": bench, "sizes": [128, 256, 512],
             "assocs": [1, 2]},
        ])
        if heavy:
            pool.append({"op": "wcet", "bench": bench,
                         "config": {"spm": 256}})
    rng = random.Random(seed)
    return [dict(rng.choice(pool)) for _ in range(total)]


def percentile(samples, fraction: float):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _Run:
    """Shared state between the client threads.

    Requests are canonicalised and keyed up front, in the main thread:
    client threads must not race each other through the package's lazy
    imports, and the verifier needs the canonical forms anyway.
    """

    def __init__(self, requests):
        self.requests = [
            (request, request_key(canonical_request(request)))
            for request in requests]
        self.lock = threading.Lock()
        self.cursor = 0
        self.records = []
        self.completed = 0

    def next_request(self):
        with self.lock:
            if self.cursor >= len(self.requests):
                return None
            request = self.requests[self.cursor]
            self.cursor += 1
            return request

    def record(self, entry):
        with self.lock:
            self.records.append(entry)
            self.completed += 1


def _client_thread(socket_path, run, draining_seen):
    client = ServeClient(socket_path, timeout=120.0)
    try:
        while True:
            handout = run.next_request()
            if handout is None:
                return
            request, key = handout
            t0 = time.monotonic()
            try:
                response = client.response(**request)
            except Exception as error:
                # Once the daemon is draining (or gone after a
                # --sigterm-mid), rejections are the *expected*
                # behaviour, not failures.
                if isinstance(error, ServeError):
                    kind = error.kind
                elif isinstance(error, (ServeTransportError, OSError)):
                    kind = "transport"
                else:  # a client bug is a finding, not a lost request
                    kind = f"client-error: {error!r}"
                expected = draining_seen.is_set()
                if kind == "draining":
                    draining_seen.set()
                    expected = True
                run.record({"key": key, "ok": False, "kind": kind,
                            "expected": expected,
                            "elapsed": time.monotonic() - t0})
                continue
            elapsed = time.monotonic() - t0
            if response.get("ok"):
                run.record({
                    "key": key, "ok": True,
                    "served": response.get("served"),
                    "result": json.dumps(response["result"],
                                         sort_keys=True),
                    "elapsed": elapsed})
            else:
                error = response.get("error", {})
                kind = error.get("kind")
                if kind == "draining":
                    draining_seen.set()
                run.record({"key": key, "ok": False, "kind": kind,
                            "expected": kind == "draining",
                            "elapsed": elapsed})
    finally:
        client.close()


def _spawn_daemon(args, workdir):
    socket_path = os.path.join(workdir, "serve.sock")
    stats_path = os.path.join(workdir, "daemon-stats.json")
    log_path = os.path.join(workdir, "daemon.log")
    # The spawned interpreter must find this very package, however the
    # loadgen itself was launched (PYTHONPATH=src or installed entry
    # point).
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                     else []))
    log = open(log_path, "w")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--socket", socket_path,
         "--workers", str(args.workers),
         "--queue-depth", str(args.queue_depth),
         "--drain-timeout", str(args.drain_timeout),
         "--warm", args.benches,
         "--stats-json", stats_path],
        stdout=log, stderr=subprocess.STDOUT, env=env)
    log.close()
    deadline = time.monotonic() + 120.0
    probe = ServeClient(socket_path, timeout=5.0)
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon died during startup (rc {process.returncode}); "
                f"log: {log_path}")
        try:
            probe.ping()
            probe.close()
            return process, socket_path, stats_path, log_path
        except (ServeTransportError, OSError):
            time.sleep(0.1)
    process.kill()
    raise RuntimeError(f"daemon never became ready; log: {log_path}")


def _verify(records, requests):
    """Byte-identical check: consistency across responses per key,
    then equality with direct fault-free evaluation."""
    from .worker import evaluate_request
    canonical_by_key = {}
    for request in requests:
        canonical = canonical_request(request)
        canonical_by_key[request_key(canonical)] = canonical
    by_key = {}
    for record in records:
        if record.get("ok"):
            by_key.setdefault(record["key"], set()).add(
                record["result"])
    problems = []
    for key, blobs in sorted(by_key.items()):
        if len(blobs) != 1:
            problems.append(f"key {key}: {len(blobs)} distinct "
                            "response payloads")
            continue
        canonical = canonical_by_key[key]
        if canonical["op"] == "sleep":
            continue
        truth = json.dumps(evaluate_request(canonical),
                           sort_keys=True)
        blob = next(iter(blobs))
        if blob != truth:
            problems.append(
                f"key {key}: served {blob} != direct {truth}")
    return len(by_key), problems


def run_load(args) -> tuple:
    """Run the load; returns ``(exit_code, metrics, failures)``."""
    if args.quick:
        args.requests = min(args.requests, 80)
        args.clients = min(args.clients, 3)
        args.benches = args.benches.split(",")[0]
    benches = [bench for bench in args.benches.split(",") if bench]
    requests = build_requests(benches, args.requests, args.seed,
                              heavy=not args.quick)
    workdir = tempfile.mkdtemp(prefix="repro-serve-load-")
    process = stats_path = log_path = None
    socket_path = args.socket
    if socket_path is None:
        process, socket_path, stats_path, log_path = \
            _spawn_daemon(args, workdir)
    elif args.sigterm_mid:
        raise SystemExit("--sigterm-mid needs a spawned daemon "
                         "(drop --socket)")
    run = _Run(requests)
    draining_seen = threading.Event()
    terminator = None
    if args.sigterm_mid:
        half = max(1, args.requests // 2)

        def _terminate():
            while run.completed < half and process.poll() is None:
                time.sleep(0.02)
            draining_seen.set()
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)

        terminator = threading.Thread(target=_terminate, daemon=True)
    t0 = time.monotonic()
    threads = [threading.Thread(target=_client_thread,
                                args=(socket_path, run, draining_seen),
                                daemon=True)
               for _ in range(max(1, args.clients))]
    for thread in threads:
        thread.start()
    if terminator is not None:
        terminator.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - t0
    failures = []
    ok_records = [r for r in run.records if r["ok"]]
    if len(run.records) != args.requests:
        failures.append(
            f"lost requests: {len(run.records)} records for "
            f"{args.requests} requests")
    for record in run.records:
        if not record["ok"] and not record.get("expected"):
            failures.append(f"unexpected {record.get('kind')} "
                            f"for {record['key']}")
    distinct = verified = 0
    if not args.no_verify:
        verified, problems = _verify(run.records, requests)
        failures.extend(problems)
        distinct = verified
    daemon_rc = None
    daemon_stats = None
    if process is not None:
        if process.poll() is None and not args.sigterm_mid:
            process.send_signal(signal.SIGTERM)
        try:
            daemon_rc = process.wait(timeout=args.drain_timeout + 30)
        except subprocess.TimeoutExpired:
            process.kill()
            failures.append("daemon did not exit after SIGTERM")
            daemon_rc = process.wait()
        if daemon_rc != 0:
            failures.append(f"daemon exited {daemon_rc} "
                            f"(log: {log_path})")
        if stats_path and os.path.exists(stats_path):
            with open(stats_path) as handle:
                daemon_stats = json.load(handle)
    latencies = [record["elapsed"] for record in ok_records]
    served = {}
    for record in ok_records:
        served[record["served"]] = served.get(record["served"], 0) + 1
    metrics = {
        "requests": args.requests,
        "clients": args.clients,
        "benches": benches,
        "ok": len(ok_records),
        "rejected_expected": sum(
            1 for r in run.records
            if not r["ok"] and r.get("expected")),
        "failures": len(failures),
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(len(ok_records) / wall, 2)
        if wall > 0 else None,
        "latency_ms": {
            "p50": round(1e3 * percentile(latencies, 0.50), 2)
            if latencies else None,
            "p95": round(1e3 * percentile(latencies, 0.95), 2)
            if latencies else None,
            "max": round(1e3 * max(latencies), 2)
            if latencies else None,
        },
        "served": served,
        "distinct_keys_verified": distinct,
        "sigterm_mid": bool(args.sigterm_mid),
        "daemon_exit_code": daemon_rc,
    }
    if daemon_stats is not None:
        metrics["daemon"] = {
            "counters": daemon_stats.get("counters"),
            "supervisor": daemon_stats.get("supervisor"),
            "stores": daemon_stats.get("stores"),
        }
    return (0 if not failures else 1, metrics, failures)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    code, metrics, failures = run_load(args)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    for failure in failures:
        print(f"repro-serve-load: FAIL: {failure}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(f"repro-serve-load: {'ok' if code == 0 else 'FAILED'} "
          f"({metrics['ok']}/{metrics['requests']} ok, "
          f"{metrics['rejected_expected']} expected rejections, "
          f"{len(failures)} failures)",
          file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
