"""``repro-serve-load``: load generator + correctness harness.

Drives a serving daemon with a seeded, repeatable mix of
compile/simulate/wcet/sweep/grid requests from concurrent clients —
heavy on repeats, so dedup and the result memo actually get exercised
— and measures throughput and latency.  Two properties are *checked*,
not just measured:

* **Byte-identical serving.**  Every ok response for one request key
  must carry the same canonical result JSON, and that JSON must equal
  a direct, in-process :func:`repro.serve.worker.evaluate_request`
  evaluation of the same canonical request.  Because the local
  evaluation has no fault hooks, this is fault-free ground truth: run
  the load with ``REPRO_FAULT_UNIT=crash@5+`` or a
  ``REPRO_FAULT_SERVE`` slice and the check proves the daemon's
  supervision and the client's transport recovery returned *correct*
  answers, not just answers.

* **Graceful drain.**  ``--sigterm-mid`` SIGTERMs the spawned daemon
  mid-load; in-flight requests must still be answered, later ones be
  rejected as ``draining`` (counted, not failed), and the daemon
  process must exit 0 within its drain deadline.

The harness also drives *clusters*: ``--addr`` (repeatable, with
``--auth-key``) points the clients at existing daemons through a
:class:`~repro.serve.cluster.ClusterClient` each, and
``--spawn-cluster N`` spawns N private TCP daemons sharing one
rendezvous-sharded artifact store.  ``--sigkill-one`` SIGKILLs one
spawned daemon mid-load — no drain, no goodbye — and the run passes
only if every *completed* request still verified byte-identical and
the failover counters prove the degraded path actually ran
(``--expect-failover``).  When ``REPRO_FAULT_NET`` is set the run is
*chaos-aware*: transport failures become expected outcomes (a
partitioned or resetting daemon legitimately loses requests), while
the byte-identity check still covers everything that completed.

Exit status is 0 only when every check passed.  ``--json FILE`` writes
the metrics (the ``benchmarks/bench_suite.py`` serve section reads
them into ``BENCH_serve.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

from .client import ServeClient, ServeError, ServeTransportError
from .cluster import ClusterClient
from .protocol import canonical_request, request_key
from .transport import load_auth_key


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve-load",
        description="load-test a repro-serve daemon and verify its "
                    "responses against direct evaluation")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="existing daemon socket (default: spawn "
                             "a private daemon for the run)")
    parser.add_argument("--addr", action="append", default=[],
                        metavar="ADDRESS",
                        help="existing daemon address (repeatable; "
                             "unix:/path or tcp://host:port) — with "
                             "more than one, clients route and fail "
                             "over through a ClusterClient")
    parser.add_argument("--auth-key", default=None, metavar="FILE",
                        help="shared-secret file for tcp:// daemons")
    parser.add_argument("--hedge-after", type=float, default=None,
                        metavar="MS",
                        help="hedge cluster requests to the next-"
                             "ranked daemon after this many "
                             "milliseconds (default: no hedging)")
    parser.add_argument("--spawn-cluster", type=int, default=0,
                        metavar="N",
                        help="spawn N private TCP daemons sharing a "
                             "rendezvous-sharded artifact store and "
                             "drive them as a cluster")
    parser.add_argument("--replicas", type=int, default=None,
                        help="artifact replication factor for "
                             "--spawn-cluster daemons (default: "
                             "min(2, N))")
    parser.add_argument("--sigkill-one", action="store_true",
                        help="SIGKILL one spawned cluster daemon "
                             "mid-load (no drain) and require the "
                             "survivors to absorb the traffic")
    parser.add_argument("--expect-failover", action="store_true",
                        help="fail unless the clients' failover "
                             "counter is nonzero (proves the "
                             "degraded path ran)")
    parser.add_argument("--requests", type=int, default=300,
                        help="total requests to send (default 300)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    parser.add_argument("--benches", default="crc,fir",
                        help="comma-separated benchmarks to mix "
                             "(default crc,fir)")
    parser.add_argument("--seed", type=int, default=1234,
                        help="request-mix seed (default 1234)")
    parser.add_argument("--workers", type=int, default=2,
                        help="spawned daemon's worker count "
                             "(default 2)")
    parser.add_argument("--queue-depth", type=int, default=32,
                        help="spawned daemon's admission depth "
                             "(default 32)")
    parser.add_argument("--drain-timeout", type=float, default=15.0,
                        help="spawned daemon's drain deadline "
                             "(default 15)")
    parser.add_argument("--quick", action="store_true",
                        help="CI preset: 80 requests, 3 clients, "
                             "one benchmark")
    parser.add_argument("--sigterm-mid", action="store_true",
                        help="SIGTERM the spawned daemon mid-load "
                             "and require a clean drain")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the byte-identical ground-truth "
                             "check")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write metrics JSON here")
    return parser


def build_requests(benches, total, seed, *, heavy=True) -> list:
    """The seeded request mix: a small distinct pool, sampled with
    repeats so dedup/memo paths dominate, exactly like a build system
    hammering a shared analysis service."""
    pool = []
    for bench in benches:
        pool.extend([
            {"op": "compile", "bench": bench},
            {"op": "simulate", "bench": bench},
            {"op": "simulate", "bench": bench,
             "config": {"cache": 256}},
            {"op": "simulate", "bench": bench,
             "config": {"cache": 256, "l2": 1024}},
            {"op": "wcet", "bench": bench, "config": {"cache": 256}},
            {"op": "wcet", "bench": bench,
             "config": {"cache": 512, "assoc": 2},
             "persistence": True},
            {"op": "sweep", "bench": bench,
             "sizes": [64, 128, 256, 512]},
            {"op": "grid", "bench": bench, "sizes": [128, 256, 512],
             "assocs": [1, 2]},
        ])
        if heavy:
            pool.append({"op": "wcet", "bench": bench,
                         "config": {"spm": 256}})
    rng = random.Random(seed)
    return [dict(rng.choice(pool)) for _ in range(total)]


def percentile(samples, fraction: float):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _Run:
    """Shared state between the client threads.

    Requests are canonicalised and keyed up front, in the main thread:
    client threads must not race each other through the package's lazy
    imports, and the verifier needs the canonical forms anyway.
    """

    def __init__(self, requests):
        self.requests = [
            (request, request_key(canonical_request(request)))
            for request in requests]
        self.lock = threading.Lock()
        self.cursor = 0
        self.records = []
        self.completed = 0
        self.client_counters = {}

    def next_request(self):
        with self.lock:
            if self.cursor >= len(self.requests):
                return None
            request = self.requests[self.cursor]
            self.cursor += 1
            return request

    def record(self, entry):
        with self.lock:
            self.records.append(entry)
            self.completed += 1

    def add_counters(self, counters):
        with self.lock:
            for key, value in counters.items():
                self.client_counters[key] = \
                    self.client_counters.get(key, 0) + value


def _client_thread(make_client, run, draining_seen, chaos_expected):
    """One client worker.  *chaos_expected* is a callable: is a
    transport failure an expected outcome right now (net chaos is
    injected, a daemon was SIGKILLed, or the daemon is draining)?"""
    client = make_client()
    try:
        while True:
            handout = run.next_request()
            if handout is None:
                return
            request, key = handout
            t0 = time.monotonic()
            try:
                response = client.response(**request)
            except Exception as error:
                # Once the daemon is draining (or gone after a
                # --sigterm-mid), rejections are the *expected*
                # behaviour, not failures.
                if isinstance(error, ServeError):
                    kind = error.kind
                elif isinstance(error, (ServeTransportError, OSError)):
                    kind = "transport"
                else:  # a client bug is a finding, not a lost request
                    kind = f"client-error: {error!r}"
                expected = draining_seen.is_set()
                if kind == "draining":
                    draining_seen.set()
                    expected = True
                if kind == "transport" and chaos_expected():
                    expected = True
                run.record({"key": key, "ok": False, "kind": kind,
                            "expected": expected,
                            "elapsed": time.monotonic() - t0})
                continue
            elapsed = time.monotonic() - t0
            if response.get("ok"):
                run.record({
                    "key": key, "ok": True,
                    "served": response.get("served"),
                    "result": json.dumps(response["result"],
                                         sort_keys=True),
                    "elapsed": elapsed})
            else:
                error = response.get("error", {})
                kind = error.get("kind")
                if kind == "draining":
                    draining_seen.set()
                run.record({"key": key, "ok": False, "kind": kind,
                            "expected": kind == "draining",
                            "elapsed": elapsed})
    finally:
        counters = (client.all_counters()
                    if hasattr(client, "all_counters")
                    else client.counters)
        run.add_counters(counters)
        client.close()


def _spawn_daemon(args, workdir):
    socket_path = os.path.join(workdir, "serve.sock")
    stats_path = os.path.join(workdir, "daemon-stats.json")
    log_path = os.path.join(workdir, "daemon.log")
    # The spawned interpreter must find this very package, however the
    # loadgen itself was launched (PYTHONPATH=src or installed entry
    # point).
    env = _loadgen_env()
    log = open(log_path, "w")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--socket", socket_path,
         "--workers", str(args.workers),
         "--queue-depth", str(args.queue_depth),
         "--drain-timeout", str(args.drain_timeout),
         "--warm", args.benches,
         "--stats-json", stats_path],
        stdout=log, stderr=subprocess.STDOUT, env=env)
    log.close()
    deadline = time.monotonic() + 120.0
    probe = ServeClient(socket_path, timeout=5.0)
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon died during startup (rc {process.returncode}); "
                f"log: {log_path}")
        try:
            probe.ping()
            probe.close()
            return process, socket_path, stats_path, log_path
        except (ServeTransportError, OSError):
            time.sleep(0.1)
    process.kill()
    raise RuntimeError(f"daemon never became ready; log: {log_path}")


def _loadgen_env() -> dict:
    src_dir = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                     else []))
    return env


def _spawn_cluster(args, workdir, count):
    """Spawn *count* private TCP daemons sharing one sharded store.

    Every daemon listens on a kernel-assigned port (``--listen
    127.0.0.1:0``), authenticates against one generated key file, and
    mounts the same *count* shard roots with a replication factor of
    ``min(2, count)`` unless overridden — so a SIGKILLed daemon's
    artifacts remain readable through the survivors' read-through
    path.  Returns ``(daemons, shard_dirs, auth_key)`` where each
    daemon is a dict with ``process`` / ``address`` / ``log`` /
    ``stats`` keys.
    """
    key_path = os.path.join(workdir, "auth.key")
    with open(key_path, "w") as handle:
        handle.write(os.urandom(16).hex() + "\n")
    auth_key = load_auth_key(key_path)
    shard_dirs = [os.path.join(workdir, f"shard{index}")
                  for index in range(count)]
    replicas = (args.replicas if args.replicas is not None
                else min(2, count))
    env = _loadgen_env()
    daemons = []
    for index in range(count):
        log_path = os.path.join(workdir, f"daemon{index}.log")
        stats_path = os.path.join(workdir,
                                  f"daemon{index}-stats.json")
        command = [sys.executable, "-m", "repro.serve.cli",
                   "--socket", "none",
                   "--listen", "127.0.0.1:0",
                   "--auth-key", key_path,
                   "--workers", str(args.workers),
                   "--queue-depth", str(args.queue_depth),
                   "--drain-timeout", str(args.drain_timeout),
                   "--warm", args.benches,
                   "--replicas", str(replicas),
                   "--stats-json", stats_path]
        for shard in shard_dirs:
            command.extend(["--shard-dir", shard])
        with open(log_path, "w") as log:
            process = subprocess.Popen(command, stdout=log,
                                       stderr=subprocess.STDOUT,
                                       env=env)
        daemons.append({"process": process, "address": None,
                        "log": log_path, "stats": stats_path})
    deadline = time.monotonic() + 120.0

    def fail(message):
        for daemon in daemons:
            if daemon["process"].poll() is None:
                daemon["process"].kill()
        raise RuntimeError(message)

    for daemon in daemons:
        # The daemon prints its bound addresses once ready; port 0
        # means the log line is the only place the port exists.
        while daemon["address"] is None:
            if daemon["process"].poll() is not None:
                fail(f"cluster daemon died during startup (rc "
                     f"{daemon['process'].returncode}); log: "
                     f"{daemon['log']}")
            if time.monotonic() > deadline:
                fail(f"cluster daemon never became ready; log: "
                     f"{daemon['log']}")
            try:
                with open(daemon["log"]) as handle:
                    match = re.search(r"listening on.*?"
                                      r"(tcp://[\d.]+:\d+)",
                                      handle.read())
            except OSError:
                match = None
            if match:
                daemon["address"] = match.group(1)
                break
            time.sleep(0.05)
    for daemon in daemons:
        probe = ServeClient(daemon["address"], timeout=5.0,
                            auth_key=auth_key, max_retries=0)
        while True:
            if time.monotonic() > deadline:
                probe.close()
                fail(f"cluster daemon never answered a ping; log: "
                     f"{daemon['log']}")
            try:
                probe.ping()
                probe.close()
                break
            except (ServeTransportError, ServeError, OSError):
                time.sleep(0.1)
    return daemons, shard_dirs, auth_key


def _quarantined_files(shard_dirs) -> int:
    """Committed-then-quarantined entries across every shard layer."""
    count = 0
    for shard in shard_dirs:
        for layer in ("analysis", "traces"):
            corrupt = os.path.join(shard, layer, "corrupt")
            try:
                count += len(os.listdir(corrupt))
            except OSError:
                continue
    return count


def _verify(records, requests):
    """Byte-identical check: consistency across responses per key,
    then equality with direct fault-free evaluation."""
    from .worker import evaluate_request
    canonical_by_key = {}
    for request in requests:
        canonical = canonical_request(request)
        canonical_by_key[request_key(canonical)] = canonical
    by_key = {}
    for record in records:
        if record.get("ok"):
            by_key.setdefault(record["key"], set()).add(
                record["result"])
    problems = []
    for key, blobs in sorted(by_key.items()):
        if len(blobs) != 1:
            problems.append(f"key {key}: {len(blobs)} distinct "
                            "response payloads")
            continue
        canonical = canonical_by_key[key]
        if canonical["op"] == "sleep":
            continue
        truth = json.dumps(evaluate_request(canonical),
                           sort_keys=True)
        blob = next(iter(blobs))
        if blob != truth:
            problems.append(
                f"key {key}: served {blob} != direct {truth}")
    return len(by_key), problems


def run_load(args) -> tuple:
    """Run the load; returns ``(exit_code, metrics, failures)``."""
    if args.quick:
        args.requests = min(args.requests, 80)
        args.clients = min(args.clients, 3)
        args.benches = args.benches.split(",")[0]
    benches = [bench for bench in args.benches.split(",") if bench]
    requests = build_requests(benches, args.requests, args.seed,
                              heavy=not args.quick)
    workdir = tempfile.mkdtemp(prefix="repro-serve-load-")
    process = stats_path = log_path = None
    daemons, shard_dirs = [], []
    auth_key = None
    addresses = list(args.addr)
    socket_path = args.socket
    chaos_spec = os.environ.get("REPRO_FAULT_NET")
    kill_happened = threading.Event()
    if args.spawn_cluster:
        if socket_path or addresses:
            raise SystemExit("--spawn-cluster conflicts with "
                             "--socket/--addr")
        daemons, shard_dirs, auth_key = _spawn_cluster(
            args, workdir, max(1, args.spawn_cluster))
        addresses = [daemon["address"] for daemon in daemons]
    elif addresses:
        if args.auth_key:
            auth_key = load_auth_key(args.auth_key)
    elif socket_path is None:
        process, socket_path, stats_path, log_path = \
            _spawn_daemon(args, workdir)
    if args.sigterm_mid and process is None:
        raise SystemExit("--sigterm-mid needs a spawned single "
                         "daemon (drop --socket/--addr/"
                         "--spawn-cluster)")
    if args.sigkill_one and not daemons:
        raise SystemExit("--sigkill-one needs --spawn-cluster")
    hedge_after = (args.hedge_after / 1000.0
                   if args.hedge_after else None)
    if addresses:
        def make_client():
            return ClusterClient(addresses, auth_key=auth_key,
                                 timeout=120.0,
                                 hedge_after=hedge_after)
    else:
        def make_client():
            return ServeClient(socket_path, timeout=120.0)
    run = _Run(requests)
    draining_seen = threading.Event()

    def chaos_expected():
        return bool(chaos_spec) or kill_happened.is_set()

    terminator = None
    if args.sigterm_mid:
        half = max(1, args.requests // 2)

        def _terminate():
            while run.completed < half and process.poll() is None:
                time.sleep(0.02)
            draining_seen.set()
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)

        terminator = threading.Thread(target=_terminate, daemon=True)
    elif args.sigkill_one:
        third = max(1, args.requests // 3)
        victim = daemons[0]["process"]

        def _kill():
            while run.completed < third and victim.poll() is None:
                time.sleep(0.02)
            # Flag *before* the kill so a request caught mid-flight
            # is never misjudged as an unexpected transport failure.
            kill_happened.set()
            if victim.poll() is None:
                victim.send_signal(signal.SIGKILL)

        terminator = threading.Thread(target=_kill, daemon=True)
    t0 = time.monotonic()
    threads = [threading.Thread(
        target=_client_thread,
        args=(make_client, run, draining_seen, chaos_expected),
        daemon=True)
        for _ in range(max(1, args.clients))]
    for thread in threads:
        thread.start()
    if terminator is not None:
        terminator.start()
    for thread in threads:
        thread.join()
    wall = time.monotonic() - t0
    failures = []
    ok_records = [r for r in run.records if r["ok"]]
    if len(run.records) != args.requests:
        failures.append(
            f"lost requests: {len(run.records)} records for "
            f"{args.requests} requests")
    for record in run.records:
        if not record["ok"] and not record.get("expected"):
            failures.append(f"unexpected {record.get('kind')} "
                            f"for {record['key']}")
    distinct = verified = 0
    if not args.no_verify:
        verified, problems = _verify(run.records, requests)
        failures.extend(problems)
        distinct = verified
    daemon_rc = None
    daemon_stats = None
    if process is not None:
        if process.poll() is None and not args.sigterm_mid:
            process.send_signal(signal.SIGTERM)
        try:
            daemon_rc = process.wait(timeout=args.drain_timeout + 30)
        except subprocess.TimeoutExpired:
            process.kill()
            failures.append("daemon did not exit after SIGTERM")
            daemon_rc = process.wait()
        if daemon_rc != 0:
            failures.append(f"daemon exited {daemon_rc} "
                            f"(log: {log_path})")
        if stats_path and os.path.exists(stats_path):
            with open(stats_path) as handle:
                daemon_stats = json.load(handle)
    cluster_rcs = []
    cluster_stats = []
    quarantined = None
    if daemons:
        killed = daemons[0]["process"] if args.sigkill_one else None
        for daemon in daemons:
            proc = daemon["process"]
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            try:
                rc = proc.wait(timeout=args.drain_timeout + 30)
            except subprocess.TimeoutExpired:
                proc.kill()
                failures.append("cluster daemon did not exit after "
                                f"SIGTERM (log: {daemon['log']})")
                rc = proc.wait()
            cluster_rcs.append(rc)
            if proc is killed:
                if rc != -signal.SIGKILL:
                    failures.append(
                        f"SIGKILLed daemon exited {rc}, not "
                        f"-{int(signal.SIGKILL)}")
                continue
            if rc != 0:
                failures.append(f"cluster daemon exited {rc} "
                                f"(log: {daemon['log']})")
            if os.path.exists(daemon["stats"]):
                with open(daemon["stats"]) as handle:
                    cluster_stats.append(json.load(handle))
        quarantined = _quarantined_files(shard_dirs)
        if quarantined and not os.environ.get(
                "REPRO_FAULT_STORE_WRITE"):
            # Atomic commits mean a SIGKILL, reset or partition must
            # never leave a *committed* entry corrupt.
            failures.append(f"{quarantined} quarantined artifacts "
                            "after chaos run (expected 0)")
    if args.expect_failover and \
            not run.client_counters.get("client_failovers"):
        failures.append("no failovers recorded; the degraded path "
                        "never ran (--expect-failover)")
    latencies = [record["elapsed"] for record in ok_records]
    served = {}
    for record in ok_records:
        served[record["served"]] = served.get(record["served"], 0) + 1
    metrics = {
        "requests": args.requests,
        "clients": args.clients,
        "benches": benches,
        "ok": len(ok_records),
        "rejected_expected": sum(
            1 for r in run.records
            if not r["ok"] and r.get("expected")),
        "failures": len(failures),
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(len(ok_records) / wall, 2)
        if wall > 0 else None,
        "latency_ms": {
            "p50": round(1e3 * percentile(latencies, 0.50), 2)
            if latencies else None,
            "p95": round(1e3 * percentile(latencies, 0.95), 2)
            if latencies else None,
            "max": round(1e3 * max(latencies), 2)
            if latencies else None,
        },
        "served": served,
        "distinct_keys_verified": distinct,
        "sigterm_mid": bool(args.sigterm_mid),
        "daemon_exit_code": daemon_rc,
        "client_counters": dict(run.client_counters),
    }
    if addresses:
        metrics["addresses"] = addresses
        metrics["cluster_size"] = len(addresses)
    if chaos_spec:
        metrics["net_chaos"] = chaos_spec
    if daemons:
        metrics["sigkill_one"] = bool(args.sigkill_one)
        metrics["cluster_exit_codes"] = cluster_rcs
        metrics["quarantined_files"] = quarantined
        metrics["cluster_daemons"] = [
            {"counters": stats.get("counters"),
             "supervisor": stats.get("supervisor"),
             "stores": stats.get("stores")}
            for stats in cluster_stats]
    if daemon_stats is not None:
        metrics["daemon"] = {
            "counters": daemon_stats.get("counters"),
            "supervisor": daemon_stats.get("supervisor"),
            "stores": daemon_stats.get("stores"),
        }
    return (0 if not failures else 1, metrics, failures)


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    code, metrics, failures = run_load(args)
    print(json.dumps(metrics, indent=2, sort_keys=True))
    for failure in failures:
        print(f"repro-serve-load: FAIL: {failure}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(f"repro-serve-load: {'ok' if code == 0 else 'FAILED'} "
          f"({metrics['ok']}/{metrics['requests']} ok, "
          f"{metrics['rejected_expected']} expected rejections, "
          f"{len(failures)} failures)",
          file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
