"""Failover client for a multi-daemon serving cluster.

:class:`ClusterClient` fronts N ``repro-serve`` daemons behind one
``request()``/``call()`` face.  Three properties make a cluster of
pure-function evaluators behave like one bigger daemon:

* **Rendezvous routing.**  Each request is routed by highest-random-
  weight (HRW) hash of its canonical request key over the daemon
  addresses (:func:`rendezvous_rank`).  Identical requests from every
  client therefore land on the *same* daemon, so the per-daemon
  dedup/memo machinery keeps coalescing cluster-wide — and when a
  daemon leaves, only *its* keys move (classic HRW minimal
  disruption), everyone else's memo stays warm.

* **Health-checked failover.**  Per-daemon health is tracked from
  cheap ``ping`` probes.  A transport failure marks the daemon
  unhealthy and schedules the next probe with exponential backoff
  (capped); requests meanwhile fail over to the next-ranked healthy
  daemon.  Safe for *any* op, not just idempotent-by-luck ones: every
  evaluation is a pure function of (content key, config), and the
  load generator byte-verifies exactly that.

* **Tail hedging.**  With ``hedge_after`` seconds set, a request that
  has not answered in time is *also* sent to the next-ranked daemon
  and the first response wins.  Purity again makes this safe — both
  daemons compute identical bytes — so hedging trades duplicate work
  for tail latency, the classic tied-requests trick.

The ``counters`` block (``client_reconnects`` aggregated from the
member clients, plus ``client_failovers`` / ``client_hedges`` /
``client_probes``) is surfaced by ``repro-serve-load``'s metrics.

One ClusterClient serves one thread, like :class:`ServeClient`
(the load generator gives each of its client threads its own).
"""

from __future__ import annotations

import threading
import time

from ..store import rendezvous_rank
from .client import (
    CLIENT_COUNTER_KEYS,
    ServeClient,
    ServeError,
    ServeTransportError,
)
from .protocol import canonical_request, request_key

__all__ = ["ClusterClient", "rendezvous_rank"]

#: Health-probe backoff: first retry after PROBE_BASE seconds,
#: doubling per consecutive failure, capped at PROBE_CAP.
PROBE_BASE = 0.1
PROBE_CAP = 5.0


class _Health:
    """One daemon's availability state, as this client observed it."""

    __slots__ = ("healthy", "failures", "next_probe")

    def __init__(self):
        self.healthy = True
        self.failures = 0
        self.next_probe = 0.0

    def mark_down(self):
        self.healthy = False
        self.failures += 1
        backoff = min(PROBE_CAP,
                      PROBE_BASE * (2 ** (self.failures - 1)))
        self.next_probe = time.monotonic() + backoff

    def mark_up(self):
        self.healthy = True
        self.failures = 0
        self.next_probe = 0.0


class ClusterClient:
    """Route requests across daemons; fail over; optionally hedge."""

    def __init__(self, addresses, *, auth_key=None, timeout=120.0,
                 hedge_after=None, retry_overloaded=True,
                 max_retries=1, backoff=0.05, backoff_cap=0.5,
                 jitter=0.1):
        addresses = list(addresses)
        if not addresses:
            raise ValueError("cluster needs at least one address")
        if len(set(addresses)) != len(addresses):
            raise ValueError(f"duplicate addresses: {addresses}")
        self.addresses = addresses
        self.auth_key = auth_key
        self.timeout = timeout
        self.hedge_after = hedge_after
        self.counters = dict.fromkeys(
            CLIENT_COUNTER_KEYS + ("client_probes",), 0)
        self._health = {address: _Health() for address in addresses}
        # Per-member clients keep their connections warm across
        # requests; a low per-member retry budget keeps failover
        # snappy (the *cluster* is the retry layer).
        self._clients = {
            address: ServeClient(
                address, timeout=timeout, auth_key=auth_key,
                retry_overloaded=retry_overloaded,
                max_retries=max_retries, backoff=backoff,
                backoff_cap=backoff_cap, jitter=jitter)
            for address in addresses}

    # -- lifecycle -----------------------------------------------------------

    def close(self):
        for client in self._clients.values():
            client.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # -- health --------------------------------------------------------------

    def _probe(self, address) -> bool:
        """One cheap ping; flips the health state accordingly."""
        self.counters["client_probes"] += 1
        try:
            self._clients[address].ping()
        except (ServeTransportError, ServeError, OSError):
            self._health[address].mark_down()
            return False
        self._health[address].mark_up()
        return True

    def _usable(self, address) -> bool:
        """Healthy, or unhealthy-but-due-for-a-probe (and it passed)."""
        health = self._health[address]
        if health.healthy:
            return True
        if time.monotonic() < health.next_probe:
            return False
        return self._probe(address)

    def healthy_addresses(self) -> list:
        return [address for address in self.addresses
                if self._health[address].healthy]

    # -- request routing -----------------------------------------------------

    def _ranked_for(self, request) -> list:
        key = request_key(canonical_request(request))
        return rendezvous_rank(key, self.addresses)

    def _send_one(self, address, request) -> dict:
        response = self._clients[address].response(**request)
        error = response.get("error") or {}
        if not response.get("ok") and error.get("kind") == "draining":
            # ``ServeClient.response`` hands error envelopes back
            # without raising; draining must surface as an exception
            # here so the failover loop treats the daemon as gone.
            raise ServeError(error)
        self._health[address].mark_up()
        return response

    def response(self, op: str, **fields) -> dict:
        """Full response envelope, failing over across the cluster.

        Tries daemons in rendezvous order, skipping ones known to be
        down (until their probe backoff expires).  A transport failure
        or a ``draining`` rejection moves on to the next-ranked daemon
        and counts a failover; only when every daemon fails does the
        last transport error surface.
        """
        request = {"op": op, **fields}
        ranked = self._ranked_for(request)
        attempted = False
        last_error = None
        for round_ in range(2):
            for address in ranked:
                # Second round: desperation — probe gates are waived,
                # a daemon marked down milliseconds ago may be back.
                if round_ == 0 and not self._usable(address):
                    continue
                if attempted:
                    self.counters["client_failovers"] += 1
                attempted = True
                try:
                    if self.hedge_after is not None:
                        return self._hedged(address, ranked, request)
                    return self._send_one(address, request)
                except ServeTransportError as error:
                    last_error = error
                    self._health[address].mark_down()
                except ServeError as error:
                    if error.kind != "draining":
                        raise
                    # A draining daemon answers but won't work; its
                    # keys belong to a peer until it is gone.
                    last_error = error
                    self._health[address].mark_down()
            if last_error is None and not attempted:
                continue  # all probe-gated; waive the gates
            if attempted and round_ == 0:
                continue
        raise ServeTransportError(
            f"no daemon in {self.addresses} answered: {last_error!r}")

    def _hedged(self, address, ranked, request) -> dict:
        """Primary attempt + a backup fired after ``hedge_after``."""
        fallbacks = [peer for peer in ranked if peer != address
                     and self._health[peer].healthy]
        if not fallbacks:
            return self._send_one(address, request)
        outcome = {}
        done = threading.Event()

        def attempt(target, slot):
            try:
                result = self._send_one(target, request)
            except (ServeTransportError, ServeError) as error:
                self._health[target].mark_down()
                outcome.setdefault(slot + "_error", error)
                if "primary_error" in outcome \
                        and "hedge_error" in outcome:
                    done.set()
                return
            outcome.setdefault("response", result)
            done.set()

        primary = threading.Thread(
            target=attempt, args=(address, "primary"), daemon=True)
        primary.start()
        if not done.wait(self.hedge_after):
            self.counters["client_hedges"] += 1
            hedge = threading.Thread(
                target=attempt, args=(fallbacks[0], "hedge"),
                daemon=True)
            hedge.start()
        else:
            outcome.setdefault("hedge_error", None)
        done.wait(self.timeout)
        if "response" in outcome:
            return outcome["response"]
        error = outcome.get("primary_error") \
            or outcome.get("hedge_error")
        if isinstance(error, ServeError):
            raise error
        raise ServeTransportError(
            f"hedged request got no response: {error!r}")

    # -- the convenient face -------------------------------------------------

    def call(self, op: str, **fields):
        response = self.response(op, **fields)
        if response.get("ok"):
            return response["result"]
        raise ServeError(response.get("error", {}))

    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        """Stats from every reachable daemon, keyed by address."""
        stats = {}
        for address in self.addresses:
            try:
                stats[address] = self._clients[address].stats()
            except (ServeTransportError, ServeError):
                stats[address] = None
        return stats

    def all_counters(self) -> dict:
        """This client's counters + the members' reconnect counts."""
        merged = dict(self.counters)
        for client in self._clients.values():
            merged["client_reconnects"] += \
                client.counters["client_reconnects"]
        return merged
