"""Transport layer: address scheme + authenticated TCP handshake.

PR 9's daemon spoke only ``AF_UNIX``.  The cluster tier adds an
``AF_INET`` transport carrying the *identical* JSON-lines wire
protocol, behind one address scheme shared by every client-facing
surface (``ServeClient.connect``, ``repro-cc cache stats --daemon``,
``repro-serve-load --addr``):

* ``unix:/path/to.sock`` — a Unix-domain stream socket (a bare path
  with no scheme means the same thing, so every PR-9 call site keeps
  working);
* ``tcp://host:port`` — a TCP stream socket, authenticated per
  connection before a single protocol byte is exchanged.

Authentication is a shared-secret HMAC-SHA256 challenge/response: the
daemon sends one JSON line ``{"auth": "challenge", "nonce": <hex>}``
with a fresh random nonce, the client answers ``{"auth": "response",
"digest": HMAC_SHA256(key, nonce)}``, and the daemon compares with
:func:`hmac.compare_digest` (constant-time — a byte-wise compare would
leak digest prefixes to a timing attacker).  On success the daemon
answers ``{"auth": "ok"}`` and the connection enters the ordinary
request loop; on failure (bad digest, malformed line, wrong key,
timeout) the daemon closes the connection *before it touches the
worker pool* — unauthenticated peers cost one thread a few
milliseconds, never a computation.  The secret is a key file
(``repro-serve --auth-key FILE``, any non-empty bytes; trailing
newlines are ignored so ``openssl rand -hex 32 > key`` works as is).

The Unix transport stays unauthenticated by design: filesystem
permissions on the socket path already gate it, exactly as before.
"""

from __future__ import annotations

import hmac
import hashlib
import json
import os
import socket
import struct

#: Bytes of random nonce in each auth challenge.
NONCE_BYTES = 32

#: Seconds an accepted TCP connection gets to complete the handshake
#: before the daemon sheds it (an unauthenticated peer must never pin
#: a connection thread for long).
HANDSHAKE_TIMEOUT = 5.0

#: Longest line the handshake reader accepts (a peer streaming garbage
#: without a newline must not balloon memory).
MAX_HANDSHAKE_LINE = 4096


class AddressError(ValueError):
    """An address string does not parse under the scheme."""


class AuthError(ConnectionError):
    """The authentication handshake failed (or was refused)."""


# -- the address scheme ------------------------------------------------------

def parse_address(address):
    """``("unix", path)`` or ``("tcp", (host, port))`` for *address*.

    Accepts ``unix:PATH``, ``tcp://HOST:PORT`` and — for backward
    compatibility with every PR-9 call site — a bare filesystem path.
    """
    if not isinstance(address, str) or not address:
        raise AddressError(f"bad address {address!r}")
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise AddressError("unix: address needs a socket path")
        return ("unix", path)
    if address.startswith("tcp://"):
        rest = address[len("tcp://"):]
        host, sep, port = rest.rpartition(":")
        if not sep or not host or not port.isdigit():
            raise AddressError(
                f"bad tcp address {address!r} (want tcp://host:port)")
        return ("tcp", (host, int(port)))
    if "://" in address:
        raise AddressError(
            f"unknown address scheme {address!r} "
            "(unix:/path or tcp://host:port)")
    return ("unix", address)


def format_address(kind, target) -> str:
    """The canonical string for a parsed ``(kind, target)`` pair."""
    if kind == "unix":
        return f"unix:{target}"
    host, port = target
    return f"tcp://{host}:{port}"


def load_auth_key(path) -> bytes:
    """The shared secret inside *path* (surrounding whitespace ignored)."""
    with open(path, "rb") as handle:
        key = handle.read().strip()
    if not key:
        raise AuthError(f"auth key file {path} is empty")
    return key


# -- handshake plumbing ------------------------------------------------------

def auth_digest(key: bytes, nonce_hex: str) -> str:
    """The expected response digest for one challenge nonce."""
    return hmac.new(key, bytes.fromhex(nonce_hex),
                    hashlib.sha256).hexdigest()


def _read_line(sock) -> bytes:
    """One newline-terminated line, byte by byte, bounded.

    The handshake cannot use a buffered ``makefile`` reader: whatever
    it reads ahead would be lost to the protocol reader layered on
    after authentication.  Handshake lines are tiny, so the per-byte
    recv costs nothing measurable.
    """
    chunks = bytearray()
    while len(chunks) < MAX_HANDSHAKE_LINE:
        byte = sock.recv(1)
        if not byte:
            raise ConnectionError("connection closed mid-handshake")
        if byte == b"\n":
            return bytes(chunks)
        chunks += byte
    raise ConnectionError("handshake line too long")


def _send_json(sock, message: dict):
    sock.sendall(json.dumps(message, sort_keys=True,
                            separators=(",", ":")).encode() + b"\n")


def server_handshake(conn, key: bytes) -> bool:
    """Challenge the fresh connection *conn*; True iff it authenticated.

    Runs under :data:`HANDSHAKE_TIMEOUT`; any failure — wrong digest,
    malformed response, timeout, EOF — returns False and the caller
    closes the connection without it ever reaching the pool.
    """
    previous = conn.gettimeout()
    conn.settimeout(HANDSHAKE_TIMEOUT)
    try:
        nonce = os.urandom(NONCE_BYTES).hex()
        _send_json(conn, {"auth": "challenge", "nonce": nonce})
        try:
            response = json.loads(_read_line(conn).decode("utf-8"))
        except (ConnectionError, OSError, UnicodeDecodeError,
                ValueError):
            return False
        if not isinstance(response, dict):
            return False
        digest = response.get("digest")
        if not isinstance(digest, str):
            return False
        if not hmac.compare_digest(digest, auth_digest(key, nonce)):
            return False
        try:
            _send_json(conn, {"auth": "ok"})
        except OSError:
            return False
        return True
    except OSError:
        return False
    finally:
        try:
            conn.settimeout(previous)
        except OSError:
            pass


def client_handshake(sock, key):
    """Answer the daemon's challenge on *sock* (raises on failure)."""
    try:
        challenge = json.loads(_read_line(sock).decode("utf-8"))
    except (ConnectionError, OSError) as error:
        # EOF/reset before any challenge arrived: the daemon shed the
        # connection or died.  That is a transport failure the client
        # may retry, not an authentication verdict.
        raise ConnectionError(f"no auth challenge: {error}") from None
    except (UnicodeDecodeError, ValueError) as error:
        raise AuthError(f"malformed auth challenge: {error}") from None
    nonce = challenge.get("nonce") if isinstance(challenge, dict) \
        else None
    if not isinstance(nonce, str):
        raise AuthError(f"malformed auth challenge: {challenge!r}")
    if key is None:
        raise AuthError(
            "daemon requires authentication (pass an auth key)")
    _send_json(sock, {"auth": "response",
                      "digest": auth_digest(key, nonce)})
    try:
        verdict = json.loads(_read_line(sock).decode("utf-8"))
    except (ConnectionError, OSError, UnicodeDecodeError,
            ValueError) as error:
        raise AuthError(f"rejected by daemon: {error}") from None
    if not (isinstance(verdict, dict) and verdict.get("auth") == "ok"):
        raise AuthError(f"rejected by daemon: {verdict!r}")


# -- client-side connect -----------------------------------------------------

def connect(address, *, timeout=None, auth_key=None):
    """A connected (and, over TCP, authenticated) stream socket.

    *address* follows the scheme of :func:`parse_address`; *auth_key*
    is the shared secret bytes for TCP daemons (ignored over unix).
    Raises the underlying ``OSError`` on connect failure and
    :class:`AuthError` when the daemon refuses the handshake.
    """
    kind, target = parse_address(address)
    if kind == "unix":
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout)
        sock.connect(target)
        if kind == "tcp":
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            client_handshake(sock, auth_key)
    except BaseException:
        sock.close()
        raise
    return sock


def abort_connection(conn):
    """Hard-abort *conn*: the peer fails immediately, never cleanly.

    ``SO_LINGER`` with a zero timeout makes the final close send RST
    and drop any unsent data — the ``reset`` net fault, and the
    closest user space gets to yanking a cable mid-write.  The
    ``shutdown`` in between is load-bearing: it acts on the
    *connection* rather than the file descriptor, so the peer is
    unblocked promptly even when a forked pool worker still holds an
    inherited duplicate of the fd (``close`` alone would leave the
    connection established in the kernel and the peer hanging until
    its socket timeout).  On AF_UNIX sockets linger is a no-op and
    this degrades to shutdown + close.
    """
    try:
        conn.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                        struct.pack("ii", 1, 0))
    except OSError:
        pass
    try:
        conn.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        conn.close()
    except OSError:
        pass
