"""``repro-serve``: run the analysis daemon from the command line.

Also reachable as ``repro-cc serve ...``.  The process listens until
SIGTERM/SIGINT, then drains gracefully: admission stops (``draining``
errors), in-flight requests finish under ``--drain-timeout``, final
stats are published (stderr, plus ``--stats-json FILE``), and the exit
code reports whether the drain completed (0) or timed out (1).
"""

from __future__ import annotations

import argparse
import os
import shutil
import signal
import sys
import tempfile
import threading

from .daemon import ServeDaemon, flush_stats
from .transport import load_auth_key


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="analysis-as-a-service daemon: compile/simulate/"
                    "wcet/sweep/grid over a local socket")
    parser.add_argument("--socket", default="repro-serve.sock",
                        metavar="PATH",
                        help="Unix socket path to listen on "
                             "(default: ./repro-serve.sock; 'none' "
                             "disables the Unix transport)")
    parser.add_argument("--listen", default=None, metavar="HOST:PORT",
                        help="additionally listen on TCP (port 0 "
                             "picks a free port; requires --auth-key)")
    parser.add_argument("--auth-key", default=None, metavar="FILE",
                        help="shared-secret file authenticating TCP "
                             "clients (HMAC challenge/response)")
    parser.add_argument("--shard-dir", action="append", default=[],
                        metavar="DIR",
                        help="reuse-cache shard root (repeatable); "
                             "partitions the artifact store over the "
                             "shards by rendezvous hash, overriding "
                             "--cache-dir")
    parser.add_argument("--replicas", type=int, default=1,
                        help="write-behind artifact copies across "
                             "shards (default 1 = owner only)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (default 2)")
    parser.add_argument("--queue-depth", type=int, default=32,
                        help="max distinct computations admitted at "
                             "once; beyond this requests are shed "
                             "with an overloaded error (default 32)")
    parser.add_argument("--task-timeout", type=float, default=300.0,
                        help="per-computation wall-clock budget in "
                             "seconds (default 300)")
    parser.add_argument("--retries", type=int, default=2,
                        help="re-runs after a computation's first "
                             "failure (default 2)")
    parser.add_argument("--backoff", type=float, default=0.25,
                        help="base retry backoff seconds (default "
                             "0.25, doubling per attempt)")
    parser.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-request deadline (requests "
                             "may override; default: none)")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="seconds SIGTERM waits for in-flight "
                             "work (default 10)")
    parser.add_argument("--memo-capacity", type=int, default=1024,
                        help="bounded result-memo entries "
                             "(default 1024)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared on-disk reuse-cache directory "
                             "for the workers (default: a private "
                             "temporary directory; 'none' disables)")
    parser.add_argument("--warm", default="", metavar="BENCHES",
                        help="comma-separated benchmarks to pre-"
                             "compile before accepting requests")
    parser.add_argument("--stats-json", default=None, metavar="FILE",
                        help="write final stats JSON here on drain")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    socket_path = args.socket
    if socket_path and socket_path.lower() == "none":
        socket_path = None
    auth_key = None
    if args.auth_key:
        try:
            auth_key = load_auth_key(args.auth_key)
        except (OSError, ConnectionError) as error:
            print(f"repro-serve: {error}", file=sys.stderr)
            return 2
    cache_dir, private_cache = args.cache_dir, False
    if args.shard_dir:
        cache_dir = None
    elif cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-serve-cache-")
        private_cache = True
    elif cache_dir.lower() == "none":
        cache_dir = None
    warm = tuple(key for key in args.warm.split(",") if key)
    try:
        daemon = ServeDaemon(
            socket_path, listen=args.listen, auth_key=auth_key,
            workers=args.workers,
            queue_depth=args.queue_depth,
            task_timeout=args.task_timeout,
            retries=args.retries, backoff=args.backoff,
            default_deadline=args.deadline,
            memo_capacity=args.memo_capacity, cache_dir=cache_dir,
            warm=warm, shard_dirs=args.shard_dir,
            replicas=args.replicas)
    except ValueError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda _s, _f: stop.set())
    try:
        daemon.start()
    except RuntimeError as error:
        print(f"repro-serve: {error}", file=sys.stderr)
        return 2
    print(f"repro-serve: pid {os.getpid()} listening on "
          f"{' '.join(daemon.addresses())} ({args.workers} workers, "
          f"queue depth {args.queue_depth})", flush=True)
    stop.wait()
    print("repro-serve: draining", flush=True)
    drained = daemon.drain(args.drain_timeout)
    flush_stats(daemon, path=args.stats_json)
    if private_cache:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if not drained:
        print(f"repro-serve: drain timed out "
              f"(> {args.drain_timeout:g}s)", file=sys.stderr)
        return 1
    print("repro-serve: drained, exiting", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
