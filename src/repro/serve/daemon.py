"""The analysis-as-a-service daemon.

:class:`ServeDaemon` listens on a Unix-domain socket, speaks the
JSON-lines protocol of :mod:`repro.serve.protocol`, and answers every
evaluation op from a :class:`~repro.serve.supervisor.SupervisedPool`
of worker processes running :func:`repro.serve.worker.serve_unit`.
One connection handler thread per client; admission, dedup and the
result memo live behind one lock in the daemon process.

The robustness spine:

* **Dedup.**  Requests are keyed by :func:`~repro.serve.protocol.
  request_key` — the ``(content key, config)`` identity of the pure
  function being asked for.  A request whose key is already in flight
  coalesces onto the running computation (``served: "coalesced"``);
  one already answered within the bounded result memo is served from
  it (``served: "memo"``).  Only the first arrival pays.

* **Backpressure.**  At most ``queue_depth`` distinct computations may
  be admitted (queued or running) at once.  Beyond that, new keys are
  shed with a structured ``overloaded`` error carrying ``retry_after``
  seconds — clients back off instead of piling onto a daemon that is
  already behind.  Coalescing and memo hits are never shed: they cost
  no worker time.

* **Deadlines.**  A request may carry ``deadline`` seconds.  When the
  answer is not ready in time, the waiting client gets a ``deadline``
  error (with the repro command); the computation itself keeps running
  and lands in the memo for the retry.

* **Supervision.**  Worker crashes and hangs are detected, the pool is
  killed and rebuilt, and in-flight requests are re-enqueued without
  losing a retry attempt — the :class:`SupervisedPool` contract.  A
  request that exhausts its retry budget produces a ``failed`` error
  carrying the attempt count and the copy-pasteable repro command.

* **Graceful drain.**  :meth:`ServeDaemon.drain` (wired to SIGTERM by
  the CLI) stops admission — new computations are rejected with a
  ``draining`` error — waits for in-flight work under a deadline,
  publishes final stats, and tears the pool down.

* **Multi-host transport.**  Beside the Unix socket the daemon can
  listen on TCP (``listen=("host", port)``), carrying the *identical*
  wire protocol behind a per-connection HMAC challenge/response
  (:mod:`repro.serve.transport`).  Unauthenticated connections are
  shed before they touch the pool; the Unix path needs no handshake
  (filesystem permissions gate it) and its claim is arbitrated by an
  exclusive lock file, so two daemons pointed at one socket path
  cannot both start, however exactly their startups interleave.

``REPRO_FAULT_SERVE`` (see :mod:`repro.testing.faults`) injects
connection-layer faults — dropped, stalled or garbage-prefixed
responses — just before each response is written;
``REPRO_FAULT_NET`` injects socket-layer chaos (refused connections,
partitions, slow links, TCP resets) one layer below.
"""

from __future__ import annotations

import json
import os
import socket
import sys
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError

from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    canonical_request,
    encode,
    error_response,
    ok_response,
    repro_command,
    request_key,
)
from .supervisor import SupervisedPool, TaskFailure
from .transport import abort_connection, format_address, server_handshake
from ..store import LRUCache

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Fresh daemon counter block (republished by the ``stats`` op).
SERVE_COUNTER_KEYS = (
    "connections", "requests", "ok", "computed", "coalesced",
    "memo_hits", "sheds", "deadline_expired", "failed", "invalid",
    "draining_rejected", "bad_lines", "auth_ok", "auth_failed",
    "net_refused",
)

#: How long a ``stall`` serve fault delays one response.
STALL_SECONDS = 0.25

#: How long a ``slow`` net fault delays one response write.
NET_SLOW_SECONDS = 0.25


class ServeDaemon:
    """One serving daemon instance (socket + pool + dedup state).

    Embeddable: tests construct it in-process and call
    :meth:`start` / :meth:`drain` directly; the ``repro-serve`` CLI
    wraps it with signal handling.
    """

    def __init__(self, socket_path=None, *, listen=None, auth_key=None,
                 workers=2, queue_depth=32,
                 task_timeout=300.0, retries=2, backoff=0.25,
                 default_deadline=None, retry_after=0.05,
                 memo_capacity=1024, cache_dir=None, warm=(),
                 shard_dirs=(), replicas=1):
        if socket_path is None and listen is None:
            raise ValueError("daemon needs a socket path, a TCP "
                             "listen address, or both")
        if listen is not None and not auth_key:
            raise ValueError("TCP transport requires an auth key "
                             "(--auth-key FILE)")
        self.socket_path = socket_path
        if isinstance(listen, str):
            host, _, port = listen.rpartition(":")
            listen = (host or "127.0.0.1", int(port))
        self.listen = listen
        self.auth_key = auth_key
        self.tcp_address = None  # (host, port) actually bound
        self.shard_dirs = tuple(shard_dirs)
        self.replicas = max(1, int(replicas))
        self.workers = max(1, int(workers))
        self.queue_depth = max(1, int(queue_depth))
        self.task_timeout = task_timeout
        self.retries = retries
        self.backoff = backoff
        self.default_deadline = default_deadline
        self.retry_after = retry_after
        self.cache_dir = cache_dir
        self.warm = tuple(warm)
        self.counters = dict.fromkeys(SERVE_COUNTER_KEYS, 0)
        self._memo = LRUCache(capacity=memo_capacity)
        self._inflight = {}  # request key -> Future
        self._lock = threading.Lock()
        self._draining = False
        self._active = 0  # requests currently being answered
        self._settled = threading.Condition(self._lock)
        self._pool = None
        self._listener = None
        self._tcp_listener = None
        self._accept_threads = []
        self._lock_fd = None
        self._started = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    def start(self):
        """Bind the socket(s), build the pool, begin accepting clients."""
        if self.socket_path is not None:
            # Claim before building the pool: a losing racer exits
            # without having forked workers it must then tear down.
            self._claim_socket_path()
        if self.cache_dir:
            os.makedirs(os.path.join(self.cache_dir, "analysis"),
                        exist_ok=True)
            os.makedirs(os.path.join(self.cache_dir, "traces"),
                        exist_ok=True)
        for shard in self.shard_dirs:
            os.makedirs(os.path.join(shard, "analysis"), exist_ok=True)
            os.makedirs(os.path.join(shard, "traces"), exist_ok=True)
        # Pre-warm in the daemon process so fork-platform workers
        # inherit the compiled workflows instead of redoing them.
        from ..experiments.common import workflow_for
        for key in self.warm:
            workflow_for(key).warm()
        import multiprocessing
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = multiprocessing.get_context()
        from .worker import serve_unit, serve_worker_init
        self._pool = SupervisedPool(
            serve_unit, self.workers, mp_context=context,
            initializer=serve_worker_init,
            initargs=(self.cache_dir, self.warm, self.shard_dirs,
                      self.replicas),
            timeout=self.task_timeout, retries=self.retries,
            backoff=self.backoff, name="serve-pool")
        if self.socket_path is not None:
            self._listener = socket.socket(socket.AF_UNIX,
                                           socket.SOCK_STREAM)
            self._listener.bind(self.socket_path)
            self._listener.listen(128)
        if self.listen is not None:
            self._tcp_listener = socket.socket(socket.AF_INET,
                                               socket.SOCK_STREAM)
            self._tcp_listener.setsockopt(socket.SOL_SOCKET,
                                          socket.SO_REUSEADDR, 1)
            self._tcp_listener.bind(self.listen)
            self._tcp_listener.listen(128)
            self.tcp_address = self._tcp_listener.getsockname()[:2]
        self._started = time.monotonic()
        self._accept_threads = []
        for listener, authenticated in (
                (self._listener, False), (self._tcp_listener, True)):
            if listener is None:
                continue
            thread = threading.Thread(
                target=self._accept_loop, args=(listener, authenticated),
                name="serve-accept", daemon=True)
            thread.start()
            self._accept_threads.append(thread)
        return self

    def addresses(self) -> list:
        """Every address this daemon serves, in scheme form."""
        addresses = []
        if self.socket_path is not None:
            addresses.append(format_address("unix", self.socket_path))
        if self.tcp_address is not None:
            addresses.append(format_address("tcp", self.tcp_address))
        return addresses

    def _lock_path(self) -> str:
        return self.socket_path + ".lock"

    def _claim_socket_path(self):
        """Take the socket's exclusive lock file; then any existing
        socket is provably stale and safe to unlink.

        PR 9 probed the socket (connect → live?) and unlinked on
        failure, which raced: two daemons probing the same dead socket
        concurrently both unlinked and both bound — last bind silently
        stole the path.  The lock file closes the race: ``flock`` is
        atomic in the kernel, held for the daemon's lifetime, and
        released automatically on any process death (no stale-pidfile
        liveness guessing).  The fstat-after-flock check handles the
        drain-time unlink of the lock file itself: a racer that locked
        a just-unlinked inode retries on the fresh one.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            self._claim_by_probe()
            return
        for _ in range(8):
            fd = os.open(self._lock_path(), os.O_CREAT | os.O_RDWR,
                         0o666)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                raise RuntimeError(
                    f"socket {self.socket_path} already has a live "
                    "daemon (lock held)") from None
            try:
                same = os.fstat(fd).st_ino == \
                    os.stat(self._lock_path()).st_ino
            except OSError:
                same = False  # unlinked under us: retry on a fresh one
            if not same:
                os.close(fd)
                continue
            os.ftruncate(fd, 0)
            os.write(fd, f"{os.getpid()}\n".encode())
            self._lock_fd = fd
            try:
                os.unlink(self.socket_path)  # ours now: stale if present
            except OSError:
                pass
            return
        raise RuntimeError(  # pragma: no cover - needs a pathological race
            f"could not claim lock for {self.socket_path}")

    def _claim_by_probe(self):  # pragma: no cover - non-POSIX fallback
        """The PR-9 probe-then-unlink claim, for platforms sans flock."""
        if not os.path.exists(self.socket_path):
            return
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.connect(self.socket_path)
        except OSError:
            os.unlink(self.socket_path)  # stale: no one is listening
        else:
            raise RuntimeError(
                f"socket {self.socket_path} already has a live daemon")
        finally:
            probe.close()

    def _release_socket_path(self):
        if self.socket_path is None:
            return
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        if self._lock_fd is not None:
            try:
                os.unlink(self._lock_path())
            except OSError:
                pass
            try:
                os.close(self._lock_fd)  # after unlink: lock covers it
            except OSError:
                pass
            self._lock_fd = None

    def drain(self, timeout=10.0) -> bool:
        """Graceful shutdown: stop admission, finish in-flight work.

        Returns True when everything settled within *timeout* seconds.
        Always closes the listener, tears the pool down and removes
        the socket path; publishes final stats via :meth:`stats` to
        the caller.
        """
        with self._lock:
            self._draining = True
        for listener in (self._listener, self._tcp_listener):
            if listener is not None:
                try:
                    # close() alone does not wake a thread blocked in
                    # accept(); shutdown() does, so the accept loop
                    # exits now instead of leaking until process exit.
                    listener.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    listener.close()
                except OSError:
                    pass
        deadline = time.monotonic() + (timeout or 0.0)
        drained = self._pool.drain(timeout) if self._pool else True
        # Pool futures resolving is not the end: connection threads
        # still have to write the responses out.
        with self._settled:
            while self._active:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    drained = False
                    break
                self._settled.wait(timeout=remaining)
        if self._pool is not None and drained:
            self._pool.shutdown()
        self._release_socket_path()
        return drained

    # -- connection handling -------------------------------------------------

    def _accept_loop(self, listener, authenticated):
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed (drain)
            with self._lock:
                self.counters["connections"] += 1
            thread = threading.Thread(target=self._serve_connection,
                                      args=(conn, authenticated),
                                      daemon=True, name="serve-conn")
            thread.start()

    def _net_fault(self, stage):
        if os.environ.get("REPRO_FAULT_NET"):
            from ..testing.faults import net_fault
            return net_fault(stage)
        return None

    def _serve_connection(self, conn, authenticated=False):
        if self._net_fault("accept") == "refuse":
            # A dead/firewalled listener from the peer's point of view.
            with self._lock:
                self.counters["net_refused"] += 1
            abort_connection(conn)
            return
        if authenticated:
            # The HMAC challenge/response gate: anything that fails it
            # is shed right here, on this connection thread, before a
            # single request line is read — the pool never sees
            # unauthenticated traffic.
            if not server_handshake(conn, self.auth_key):
                with self._lock:
                    self.counters["auth_failed"] += 1
                try:
                    conn.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
                return
            with self._lock:
                self.counters["auth_ok"] += 1
        reader = conn.makefile("rb")
        try:
            for line in reader:
                if not line.strip():
                    continue
                if not self._handle_line(conn, line):
                    return
        except OSError:
            pass
        finally:
            try:
                reader.close()
            except OSError:
                pass
            try:
                # shutdown (not just close) delivers EOF even when a
                # forked pool worker inherited a duplicate of this fd.
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _handle_line(self, conn, line) -> bool:
        """Answer one request line; False closes the connection."""
        with self._settled:
            self.counters["requests"] += 1
            self._active += 1
        try:
            try:
                response = self._respond(line)
            except Exception as error:  # daemon bug: never hang a client
                response = error_response(None, "internal", repr(error))
            return self._send(conn, response)
        finally:
            with self._settled:
                self._active -= 1
                self._settled.notify_all()

    def _send(self, conn, response) -> bool:
        """Write one response line, honouring the injected faults.

        ``REPRO_FAULT_NET`` acts at the socket layer (partition /
        slow / reset), ``REPRO_FAULT_SERVE`` at the response layer
        (drop / stall / garbage); both are no-ops unless their
        environment variable is set.
        """
        net = self._net_fault("send")
        if net == "partition":
            # Blackhole: the response vanishes and the connection
            # stays open, so the client blocks until its own socket
            # timeout — exactly what a partitioned link looks like.
            return True
        if net == "reset":
            abort_connection(conn)  # peer sees ECONNRESET, not EOF
            return False
        if net == "slow":
            time.sleep(NET_SLOW_SECONDS)
        if os.environ.get("REPRO_FAULT_SERVE"):
            from ..testing.faults import serve_fault
            fault = serve_fault()
            if fault == "drop":
                return False  # close without answering: client sees EOF
            if fault == "stall":
                time.sleep(STALL_SECONDS)
            elif fault == "garbage":
                try:
                    conn.sendall(b"\x00<<not-json>>\xff\n")
                except OSError:
                    return False
        try:
            conn.sendall(encode(response))
        except OSError:
            return False
        return True

    # -- request dispatch ----------------------------------------------------

    def _respond(self, line) -> dict:
        try:
            request = json.loads(line.decode("utf-8"))
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except (UnicodeDecodeError, ValueError) as error:
            with self._lock:
                self.counters["bad_lines"] += 1
                self.counters["invalid"] += 1
            return error_response(None, "invalid",
                                  f"undecodable request: {error}")
        rid = request.get("id")
        try:
            return self._dispatch(rid, request)
        except Exception as error:  # daemon bug: still echo the id
            return error_response(rid, "internal", repr(error))

    def _dispatch(self, rid, request) -> dict:
        try:
            canonical = canonical_request(request)
        except ProtocolError as error:
            with self._lock:
                self.counters["invalid"] += 1
            return error_response(rid, "invalid", str(error))
        op = canonical["op"]
        if op == "ping":
            with self._lock:
                self.counters["ok"] += 1
            return ok_response(rid, {"pong": True,
                                     "protocol": PROTOCOL_VERSION},
                               "inline")
        if op == "stats":
            response = ok_response(rid, self.stats(), "inline")
            with self._lock:
                self.counters["ok"] += 1
            return response
        return self._respond_evaluation(rid, request, canonical)

    def _admit(self, key, canonical):
        """(future, served) or (None, error_response), under the lock.

        Memo hits short-circuit as ``(None, ok_response)`` too — the
        three no-new-computation outcomes (memo, draining, overloaded)
        all come back as a finished response.
        """
        with self._lock:
            result = self._memo.get(key)
            if result is not None:
                self.counters["memo_hits"] += 1
                self.counters["ok"] += 1
                return None, ok_response(None, result, "memo")
            future = self._inflight.get(key)
            if future is not None:
                self.counters["coalesced"] += 1
                return future, "coalesced"
            if self._draining:
                self.counters["draining_rejected"] += 1
                return None, error_response(
                    None, "draining",
                    "daemon is draining; not admitting new work")
            if len(self._inflight) >= self.queue_depth:
                self.counters["sheds"] += 1
                return None, error_response(
                    None, "overloaded",
                    f"admission queue full "
                    f"({self.queue_depth} computations in flight)",
                    retry_after=self.retry_after)
            future = self._pool.submit(canonical)
            self._inflight[key] = future
            self.counters["computed"] += 1
            future.add_done_callback(
                lambda fut, key=key: self._finish(key, fut))
            return future, "computed"

    def _finish(self, key, future):
        with self._lock:
            self._inflight.pop(key, None)
            if future.exception() is None:
                self._memo[key] = future.result()

    def _respond_evaluation(self, rid, request, canonical) -> dict:
        deadline = request.get("deadline", self.default_deadline)
        if deadline is not None and (
                not isinstance(deadline, (int, float))
                or isinstance(deadline, bool) or deadline <= 0):
            with self._lock:
                self.counters["invalid"] += 1
            return error_response(rid, "invalid",
                                  "deadline must be a positive number "
                                  "of seconds")
        key = request_key(canonical)
        future, served = self._admit(key, canonical)
        if future is None:  # memo hit or shed: `served` is the response
            served["id"] = rid
            return served
        try:
            result = future.result(timeout=deadline)
        except FutureTimeoutError:
            with self._lock:
                self.counters["deadline_expired"] += 1
            return error_response(
                rid, "deadline",
                f"deadline expired ({deadline:g}s); the computation "
                "continues and will be memoised",
                repro=repro_command(canonical))
        except TaskFailure as failure:
            with self._lock:
                self.counters["failed"] += 1
            return error_response(
                rid, "failed",
                f"evaluation failed: {failure.describe()}",
                attempts=failure.attempts,
                repro=repro_command(canonical))
        with self._lock:
            self.counters["ok"] += 1
        return ok_response(rid, result, served)

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        """The ``stats`` op payload (also the final drain report)."""
        with self._lock:
            counters = dict(self.counters)
            inflight = len(self._inflight)
            draining = self._draining
        payload = {
            "protocol": PROTOCOL_VERSION,
            "socket": self.socket_path,
            "addresses": self.addresses(),
            "pid": os.getpid(),
            "uptime_seconds": round(
                time.monotonic() - self._started, 3),
            "draining": draining,
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "inflight": inflight,
            "counters": counters,
            "supervisor": dict(self._pool.counters)
            if self._pool else {},
            "memo": {
                "entries": len(self._memo),
                "capacity": self._memo.capacity,
                "evictions": self._memo.evictions,
            },
        }
        if self.cache_dir or self.shard_dirs:
            payload["stores"] = self._store_stats()
        return payload

    def _store_stats(self) -> dict:
        from ..store import ArtifactStore
        roots = list(self.shard_dirs) or [self.cache_dir]
        stores = {}
        for name in ("analysis", "traces"):
            entries = size = quarantined = 0
            found = False
            for base in roots:
                root = os.path.join(base, name)
                if not os.path.isdir(root):
                    continue
                found = True
                stats = ArtifactStore(root).stats()
                entries += stats["entries"]
                size += stats["bytes"]
                quarantined += stats["quarantined_files"]
            if found:
                stores[name] = {
                    "entries": entries,
                    "bytes": size,
                    "quarantined": quarantined,
                    "shards": len(roots),
                }
        return stores


def flush_stats(daemon: ServeDaemon, stream=None, path=None):
    """Publish final stats on drain: one JSON line, optionally a file."""
    payload = daemon.stats()
    blob = json.dumps(payload, sort_keys=True)
    print(f"repro-serve: final stats {blob}",
          file=stream or sys.stderr, flush=True)
    if path:
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload
