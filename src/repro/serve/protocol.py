"""The daemon's JSON-lines protocol: requests, responses, errors.

One request per line, one response per line, UTF-8 JSON with sorted
keys.  A request is an object with:

``op``
    One of :data:`OPS`.  ``ping`` and ``stats`` are answered by the
    daemon inline; everything else is evaluated in a supervised
    worker process.
``id``
    Optional client token (string/number), echoed verbatim in the
    response so clients can pipeline.
``bench`` / ``source``
    What to evaluate: a suite benchmark name (``crc``), a generated
    workload key (``gen:<seed>[:<size>]``), or inline mini-C source.
    Exactly one of the two for evaluation ops.
``config``
    Memory-system spec, mirroring the ``repro-cc`` flags (see
    :data:`CONFIG_DEFAULTS`); omitted fields take the CLI defaults,
    and the spec is validated by the *same* code path the CLI uses,
    so daemon and command line accept exactly the same shapes.
``deadline``
    Optional per-request seconds; when the answer is not ready in
    time the *waiter* gets a ``deadline`` error (the computation
    itself keeps running and lands in the result memo).

Responses are ``{"id": ..., "ok": true, "served": ..., "result": ...}``
or ``{"id": ..., "ok": false, "error": {...}}``.  ``served`` says how
the daemon produced the answer: ``computed`` (this request started the
computation), ``coalesced`` (attached to an identical in-flight
request) or ``memo`` (served from the bounded result memo).  The error
object carries a ``kind`` from :data:`ERROR_KINDS`, a human message,
and — for anything that failed or timed out server-side — the same
copy-pasteable ``repro`` command a :class:`~repro.experiments.common.
SweepFailure` report carries, re-evaluating the request directly.

Requests are canonicalised before keying (:func:`canonical_request`):
defaults are filled in so ``{"op": "simulate", "bench": "crc"}`` and
the same request with an explicit empty config dedup onto one
computation, and inline source is keyed by its sha256 — the request
key *is* the ``(content key, config)`` identity of the underlying
pure function.
"""

from __future__ import annotations

import argparse
import hashlib
import json

#: Protocol version, reported by ``ping``.
PROTOCOL_VERSION = 1

#: Every request kind the daemon understands.  ``sleep`` exists for
#: diagnostics and deterministic tests (a worker-evaluated op whose
#: duration the client controls).
OPS = ("ping", "stats", "compile", "simulate", "wcet", "sweep",
       "grid", "sleep")

#: Ops answered by the daemon thread itself, no worker involved.
INLINE_OPS = ("ping", "stats")

#: Structured error kinds (the taxonomy ``docs/serving.md`` documents).
ERROR_KINDS = (
    "invalid",      # malformed request: never retried, never queued
    "overloaded",   # admission queue full: back off retry_after secs
    "deadline",     # this waiter's deadline expired (work continues)
    "failed",       # evaluation exhausted its retry budget
    "draining",     # daemon is shutting down, not admitting work
    "internal",     # daemon-side bug; carries the exception repr
)

#: Memory-system spec fields and their defaults — one to one with the
#: ``repro-cc`` command-line options (``--spm/--cache/--l2/...``).
CONFIG_DEFAULTS = {
    "spm": None, "alloc": "energy", "cache": None, "assoc": 1,
    "line": 16, "icache": False, "dcache": None, "l2": None,
    "l2_assoc": 1, "l2_line": 16, "hybrid": False,
}

#: Upper bound for the diagnostic ``sleep`` op.
MAX_SLEEP_SECONDS = 60.0


class ProtocolError(ValueError):
    """A request violates the protocol (``invalid`` error kind)."""


# -- wire format -------------------------------------------------------------

def encode(message: dict) -> bytes:
    """One canonical JSON line (sorted keys, minimal separators)."""
    return json.dumps(message, sort_keys=True,
                      separators=(",", ":")).encode() + b"\n"


def decode(line) -> dict:
    """Parse one request/response line; reject non-object payloads."""
    try:
        if isinstance(line, (bytes, bytearray)):
            line = line.decode("utf-8", errors="strict")
        message = json.loads(line)
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"undecodable line: {error}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request must be a JSON object")
    return message


def ok_response(rid, result, served: str) -> dict:
    return {"id": rid, "ok": True, "served": served, "result": result}


def error_response(rid, kind: str, message: str, *, retry_after=None,
                   attempts=None, repro=None) -> dict:
    assert kind in ERROR_KINDS, kind
    error = {"kind": kind, "message": message}
    if retry_after is not None:
        error["retry_after"] = retry_after
    if attempts is not None:
        error["attempts"] = attempts
    if repro is not None:
        error["repro"] = repro
    return {"id": rid, "ok": False, "error": error}


# -- the memory-system spec --------------------------------------------------

def config_namespace(spec: dict) -> argparse.Namespace:
    """The spec as the namespace ``repro.cli._config_for`` expects."""
    if spec is None:
        spec = {}
    if not isinstance(spec, dict):
        raise ProtocolError("config must be an object")
    unknown = set(spec) - set(CONFIG_DEFAULTS)
    if unknown:
        raise ProtocolError(
            f"unknown config fields: {sorted(unknown)} "
            f"(known: {sorted(CONFIG_DEFAULTS)})")
    merged = dict(CONFIG_DEFAULTS)
    merged.update(spec)
    if merged["alloc"] not in ("energy", "wcet"):
        raise ProtocolError(f"bad alloc {merged['alloc']!r} "
                            "(energy or wcet)")
    for field in ("spm", "cache", "assoc", "line", "dcache", "l2",
                  "l2_assoc", "l2_line"):
        value = merged[field]
        if value is not None and (not isinstance(value, int)
                                  or isinstance(value, bool)
                                  or value < 0):
            raise ProtocolError(
                f"config field {field} must be a non-negative integer")
    return argparse.Namespace(**merged)


def system_config(spec: dict):
    """The :class:`~repro.memory.hierarchy.SystemConfig` a spec names.

    Delegates to the CLI's option-to-pipeline builder so the daemon
    accepts exactly the configurations ``repro-cc`` does, translating
    its rejections into protocol errors.
    """
    from ..cli import _config_for
    namespace = config_namespace(spec)
    try:
        return _config_for(namespace)
    except SystemExit as error:
        raise ProtocolError(f"bad config: {error}") from None


# -- canonicalisation + request identity -------------------------------------

def _canonical_target(request: dict, canonical: dict):
    bench = request.get("bench")
    source = request.get("source")
    if (bench is None) == (source is None):
        raise ProtocolError(
            "evaluation requests take exactly one of bench/source")
    if bench is not None:
        if not isinstance(bench, str):
            raise ProtocolError("bench must be a string")
        if bench.startswith("gen:"):
            fields = bench.split(":")
            if len(fields) not in (2, 3) or not fields[1].isdigit():
                raise ProtocolError(
                    f"bad generated-benchmark key {bench!r} "
                    "(expected gen:<seed>[:<size>])")
        else:
            from ..benchmarks import BENCHMARKS
            if bench not in BENCHMARKS:
                raise ProtocolError(
                    f"unknown benchmark {bench!r} "
                    f"(suite: {', '.join(BENCHMARKS)}; or gen:<seed>, "
                    "or inline source)")
        canonical["bench"] = bench
    else:
        if not isinstance(source, str) or not source.strip():
            raise ProtocolError("source must be non-empty mini-C text")
        canonical["source"] = source


def _int_list(request, field, *, required=True) -> list:
    values = request.get(field)
    if values is None:
        if required:
            raise ProtocolError(f"{field} is required")
        return None
    if (not isinstance(values, list) or not values
            or not all(isinstance(v, int) and not isinstance(v, bool)
                       and v > 0 for v in values)):
        raise ProtocolError(
            f"{field} must be a non-empty list of positive integers")
    return list(values)


def canonical_request(request: dict) -> dict:
    """Validate *request* and return its canonical evaluation form.

    The canonical form is what workers evaluate and what the request
    key is derived from: op-relevant fields only (no ``id`` or
    ``deadline``), defaults filled in, config normalised.  Raises
    :class:`ProtocolError` for anything malformed — validation runs in
    the daemon thread, *before* admission, so broken requests are
    rejected immediately instead of burning worker retries.
    """
    op = request.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (one of: {', '.join(OPS)})")
    canonical = {"op": op}
    if op in INLINE_OPS:
        return canonical
    if op == "sleep":
        seconds = request.get("seconds", 0.1)
        if (not isinstance(seconds, (int, float))
                or isinstance(seconds, bool) or seconds < 0
                or seconds > MAX_SLEEP_SECONDS):
            raise ProtocolError(
                "seconds must be a number in "
                f"[0, {MAX_SLEEP_SECONDS:g}]")
        canonical["seconds"] = float(seconds)
        return canonical
    _canonical_target(request, canonical)
    if op == "compile":
        return canonical
    if op in ("simulate", "wcet"):
        spec = request.get("config") or {}
        namespace = config_namespace(spec)
        if namespace.spm and (namespace.dcache or namespace.l2):
            raise ProtocolError(
                "scratchpad pipelines with split/L2 levels are not "
                "servable (no Workflow evaluation point exists)")
        system_config(spec)  # full validation, daemon-side
        canonical["config"] = {
            field: getattr(namespace, field)
            for field in sorted(CONFIG_DEFAULTS)
            if getattr(namespace, field) != CONFIG_DEFAULTS[field]}
        if op == "wcet":
            canonical["persistence"] = bool(request.get("persistence",
                                                        False))
        return canonical
    from ..memory.cache import CacheConfig
    if op == "sweep":
        sizes = _int_list(request, "sizes")
        line = request.get("line", 16)
        assoc = request.get("assoc", 1)
        unified = bool(request.get("unified", True))
        for size in sizes:
            try:
                CacheConfig(size=size, line_size=line, assoc=assoc,
                            unified=unified)
            except (TypeError, ValueError) as error:
                raise ProtocolError(f"bad sweep point: {error}") \
                    from None
        canonical.update(sizes=sizes, line=line, assoc=assoc,
                         unified=unified,
                         persistence=bool(request.get("persistence",
                                                      False)))
        return canonical
    if op == "grid":
        sizes = _int_list(request, "sizes")
        assocs = _int_list(request, "assocs")
        line = request.get("line", 16)
        if not isinstance(line, int) or line <= 0:
            raise ProtocolError("line must be a positive integer")
        canonical.update(sizes=sizes, assocs=assocs, line=line,
                         icache=bool(request.get("icache", False)))
        return canonical
    raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover


def request_key(canonical: dict) -> str:
    """The dedup/memo identity of a canonical request.

    Inline source is replaced by its sha256, so the key stays small
    and equals the identity of the underlying pure function: what to
    compile (content) × how to price it (config).
    """
    keyed = dict(canonical)
    source = keyed.pop("source", None)
    if source is not None:
        keyed["source_sha256"] = hashlib.sha256(
            source.encode()).hexdigest()
    return json.dumps(keyed, sort_keys=True, separators=(",", ":"))


def repro_command(canonical: dict) -> str:
    """Copy-pasteable command re-evaluating *canonical* directly.

    The serving twin of :func:`repro.experiments.common.rerun_unit`'s
    repro line: bypasses the daemon entirely and prints the result the
    workers should have produced.
    """
    blob = json.dumps(canonical, sort_keys=True)
    return ("PYTHONPATH=src python -c \"from repro.serve.worker "
            f"import rerun_request; rerun_request({blob!r})\"")
