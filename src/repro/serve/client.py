"""Client for the serving daemon's JSON-lines socket protocol.

:class:`ServeClient` is deliberately paranoid about the transport,
because the daemon's connection layer is where ``REPRO_FAULT_SERVE``
injects faults: a dropped response (EOF mid-request) reconnects and
resends — safe because every evaluation is a pure function and the
daemon dedups/memoises, so a resend coalesces instead of recomputing —
garbage lines on the stream are skipped until a well-formed response
with the matching request id appears, and stalls are bounded by the
socket timeout.  ``overloaded`` responses are retried after the
daemon's ``retry_after`` hint; every other error surfaces as a
structured :class:`ServeError`.
"""

from __future__ import annotations

import json
import socket
import time

from .protocol import ProtocolError, decode, encode

#: Give up resending across reconnects after this many transport
#: failures for one request.
TRANSPORT_RETRIES = 8

#: Give up waiting out ``overloaded`` responses after this many sheds.
OVERLOAD_RETRIES = 200

#: Skip at most this many non-protocol lines while hunting for the
#: response (the ``garbage`` serve fault writes such lines).
MAX_GARBAGE_LINES = 64


class ServeError(RuntimeError):
    """A structured error response from the daemon.

    Mirrors the protocol's error object: ``kind`` (one of
    :data:`repro.serve.protocol.ERROR_KINDS`), ``message``, and the
    optional ``retry_after`` / ``attempts`` / ``repro`` fields.
    """

    def __init__(self, error: dict):
        self.kind = error.get("kind", "internal")
        self.retry_after = error.get("retry_after")
        self.attempts = error.get("attempts")
        self.repro = error.get("repro")
        super().__init__(
            f"{self.kind}: {error.get('message', '(no message)')}")


class ServeTransportError(ConnectionError):
    """The daemon could not be reached (or kept dropping us)."""


class ServeClient:
    """One connection to a serving daemon (reconnects as needed)."""

    def __init__(self, socket_path, *, timeout=120.0,
                 retry_overloaded=True):
        self.socket_path = socket_path
        self.timeout = timeout
        self.retry_overloaded = retry_overloaded
        self._sock = None
        self._reader = None
        self._next_id = 0

    # -- transport -----------------------------------------------------------

    def _connect(self):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self):
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _read_response(self, rid) -> dict:
        """The next well-formed response for *rid*, skipping garbage."""
        for _ in range(MAX_GARBAGE_LINES):
            line = self._reader.readline()
            if not line:
                raise ConnectionError("connection closed by daemon")
            if not line.strip():
                continue
            try:
                response = decode(line)
            except ProtocolError:
                continue  # injected garbage / corrupted line: resync
            if response.get("id") == rid:
                return response
        raise ConnectionError("no response found on stream "
                              f"(> {MAX_GARBAGE_LINES} garbage lines)")

    def request(self, request: dict) -> dict:
        """Send one request, return its raw response envelope.

        Reconnects and resends on transport failure (EOF, timeout,
        refused) — idempotent by construction, since the daemon dedups
        identical requests and memoises results.
        """
        if "id" not in request:
            self._next_id += 1
            request = dict(request, id=f"c{self._next_id}")
        payload = encode(request)
        last_error = None
        for attempt in range(TRANSPORT_RETRIES + 1):
            try:
                if self._sock is None:
                    self._connect()
                self._sock.sendall(payload)
                return self._read_response(request["id"])
            except (OSError, ConnectionError) as error:
                last_error = error
                self.close()
                time.sleep(min(0.05 * (attempt + 1), 0.5))
        raise ServeTransportError(
            f"daemon at {self.socket_path} unreachable after "
            f"{TRANSPORT_RETRIES + 1} attempts: {last_error!r}")

    # -- the convenient face -------------------------------------------------

    def response(self, op: str, **fields) -> dict:
        """Full response envelope for one op (retrying overload sheds)."""
        request = {"op": op, **fields}
        for _ in range(OVERLOAD_RETRIES):
            response = self.request(dict(request))
            error = response.get("error")
            if (not response.get("ok") and error is not None
                    and error.get("kind") == "overloaded"
                    and self.retry_overloaded):
                time.sleep(error.get("retry_after") or 0.05)
                continue
            return response
        raise ServeError(error)

    def call(self, op: str, **fields):
        """Result payload for one op; raises :class:`ServeError`."""
        response = self.response(op, **fields)
        if response.get("ok"):
            return response["result"]
        raise ServeError(response.get("error", {}))

    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        return self.call("stats")
