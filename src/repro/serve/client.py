"""Client for the serving daemon's JSON-lines socket protocol.

:class:`ServeClient` is deliberately paranoid about the transport,
because the daemon's connection layer is where ``REPRO_FAULT_SERVE``
and ``REPRO_FAULT_NET`` inject faults: a dropped response (EOF or a
TCP reset mid-request) reconnects and resends — safe because every
evaluation is a pure function and the daemon dedups/memoises, so a
resend coalesces instead of recomputing — garbage lines on the stream
are skipped until a well-formed response with the matching request id
appears, and stalls/partitions are bounded by the socket timeout.
``overloaded`` responses are retried after the daemon's ``retry_after``
hint; every other error surfaces as a structured :class:`ServeError`.

Addresses follow the :mod:`repro.serve.transport` scheme —
``unix:/path`` (or a bare path) and ``tcp://host:port``, the latter
authenticated with *auth_key* — so the client is transport-agnostic:
the wire protocol and error taxonomy are identical either way.

Reconnect backoff is exponential from *backoff* capped at
*backoff_cap*, plus uniform jitter bounded by *jitter* (the jitter
cap) so a fleet of clients hammering a recovering daemon doesn't
reconnect in lockstep; *max_retries* bounds the resend budget.  The
``counters`` dict (``client_reconnects`` / ``client_failovers`` /
``client_hedges``) feeds the load generator's ``--profile`` metrics;
the failover/hedge slots are owned by
:class:`~repro.serve.cluster.ClusterClient`, which aggregates its
members' counters into the same block.
"""

from __future__ import annotations

import random
import time

from .protocol import ProtocolError, decode, encode
from .transport import AuthError, connect as transport_connect

#: Default resend budget across reconnects for one request.
TRANSPORT_RETRIES = 8

#: Give up waiting out ``overloaded`` responses after this many sheds.
OVERLOAD_RETRIES = 200

#: Skip at most this many non-protocol lines while hunting for the
#: response (the ``garbage`` serve fault writes such lines).
MAX_GARBAGE_LINES = 64

#: Fresh client counter block (shared with :class:`ClusterClient`).
CLIENT_COUNTER_KEYS = (
    "client_reconnects", "client_failovers", "client_hedges",
)


def reconnect_delay(attempt: int, *, base=0.05, cap=0.5, jitter=0.1,
                    rng=None) -> float:
    """Backoff before transport retry *attempt* (1-based).

    Exponential from *base*, capped at *cap*, plus uniform jitter in
    ``[0, jitter]`` — the jitter *cap* bounds the random part
    absolutely, so the worst-case delay is exactly ``cap + jitter``
    and a test can pin the whole schedule by passing ``jitter=0``.
    """
    delay = min(cap, base * (2 ** max(0, attempt - 1)))
    if jitter:
        delay += (rng or random).random() * jitter
    return delay


class ServeError(RuntimeError):
    """A structured error response from the daemon.

    Mirrors the protocol's error object: ``kind`` (one of
    :data:`repro.serve.protocol.ERROR_KINDS`), ``message``, and the
    optional ``retry_after`` / ``attempts`` / ``repro`` fields.
    """

    def __init__(self, error: dict):
        self.kind = error.get("kind", "internal")
        self.retry_after = error.get("retry_after")
        self.attempts = error.get("attempts")
        self.repro = error.get("repro")
        super().__init__(
            f"{self.kind}: {error.get('message', '(no message)')}")


class ServeTransportError(ConnectionError):
    """The daemon could not be reached (or kept dropping us)."""


class ServeClient:
    """One connection to a serving daemon (reconnects as needed)."""

    def __init__(self, address, *, timeout=120.0,
                 retry_overloaded=True, auth_key=None,
                 max_retries=TRANSPORT_RETRIES, backoff=0.05,
                 backoff_cap=0.5, jitter=0.1):
        self.address = address
        self.timeout = timeout
        self.retry_overloaded = retry_overloaded
        self.auth_key = auth_key
        self.max_retries = max(0, int(max_retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.counters = dict.fromkeys(CLIENT_COUNTER_KEYS, 0)
        self._sock = None
        self._reader = None
        self._connected_once = False
        self._next_id = 0

    # -- transport -----------------------------------------------------------

    def _connect(self):
        sock = transport_connect(self.address, timeout=self.timeout,
                                 auth_key=self.auth_key)
        self._sock = sock
        self._reader = sock.makefile("rb")
        if self._connected_once:
            self.counters["client_reconnects"] += 1
        self._connected_once = True

    def close(self):
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def _read_response(self, rid) -> dict:
        """The next well-formed response for *rid*, skipping garbage."""
        for _ in range(MAX_GARBAGE_LINES):
            line = self._reader.readline()
            if not line:
                raise ConnectionError("connection closed by daemon")
            if not line.strip():
                continue
            try:
                response = decode(line)
            except ProtocolError:
                continue  # injected garbage / corrupted line: resync
            if response.get("id") == rid:
                return response
        raise ConnectionError("no response found on stream "
                              f"(> {MAX_GARBAGE_LINES} garbage lines)")

    def request(self, request: dict) -> dict:
        """Send one request, return its raw response envelope.

        Reconnects and resends on transport failure (EOF, reset,
        timeout, refused) — idempotent by construction, since the
        daemon dedups identical requests and memoises results.  An
        authentication rejection is *not* retried: a wrong key stays
        wrong, and hammering the daemon with it only feeds its
        ``auth_failed`` counter.
        """
        if "id" not in request:
            self._next_id += 1
            request = dict(request, id=f"c{self._next_id}")
        payload = encode(request)
        last_error = None
        for attempt in range(self.max_retries + 1):
            try:
                if self._sock is None:
                    self._connect()
                self._sock.sendall(payload)
                return self._read_response(request["id"])
            except AuthError:
                self.close()
                raise
            except (OSError, ConnectionError) as error:
                last_error = error
                self.close()
                time.sleep(reconnect_delay(
                    attempt + 1, base=self.backoff,
                    cap=self.backoff_cap, jitter=self.jitter))
        raise ServeTransportError(
            f"daemon at {self.address} unreachable after "
            f"{self.max_retries + 1} attempts: {last_error!r}")

    # -- the convenient face -------------------------------------------------

    def response(self, op: str, **fields) -> dict:
        """Full response envelope for one op (retrying overload sheds)."""
        request = {"op": op, **fields}
        for _ in range(OVERLOAD_RETRIES):
            response = self.request(dict(request))
            error = response.get("error")
            if (not response.get("ok") and error is not None
                    and error.get("kind") == "overloaded"
                    and self.retry_overloaded):
                time.sleep(error.get("retry_after") or 0.05)
                continue
            return response
        raise ServeError(error)

    def call(self, op: str, **fields):
        """Result payload for one op; raises :class:`ServeError`."""
        response = self.response(op, **fields)
        if response.get("ok"):
            return response["result"]
        raise ServeError(response.get("error", {}))

    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        return self.call("stats")
