"""Analysis-as-a-service: the persistent evaluation daemon.

The ROADMAP's serving-layer step: every compile/simulate/WCET/sweep
query in this repo is a pure function of ``(image content key, memory
configuration)``, which makes a long-running daemon both easy to build
and easy to make *robust* — identical requests coalesce, results
memoise, failed workers are rebuilt and the retried request returns
the same bytes it always would have.

The package splits along the robustness spine:

* :mod:`repro.serve.supervisor` — the supervised worker pool (per-task
  timeouts, retry with backoff, pool kill+rebuild on crashed or hung
  workers), refactored out of ``experiments/common.py`` so the sweep
  runner and the daemon share one hardened scheduler;
* :mod:`repro.serve.protocol` — the JSON-lines request/response
  protocol and its structured error taxonomy;
* :mod:`repro.serve.worker` — the worker-side request evaluator (the
  only place requests touch :class:`~repro.workflow.Workflow`);
* :mod:`repro.serve.daemon` — admission control (in-flight dedup,
  bounded queue with backpressure, per-request deadlines), the socket
  front ends (Unix + authenticated TCP) and graceful drain;
* :mod:`repro.serve.transport` — the ``unix:/path`` /
  ``tcp://host:port`` address scheme and the HMAC-SHA256
  challenge/response handshake gating the TCP transport;
* :mod:`repro.serve.client` — the fault-tolerant single-daemon client
  (reconnect with jittered backoff) used by the tests, the CLI and
  the load generator;
* :mod:`repro.serve.cluster` — :class:`~repro.serve.cluster.
  ClusterClient`: rendezvous-hash request routing over N daemons,
  health-probed failover and optional tail hedging;
* :mod:`repro.serve.loadgen` — ``repro-serve-load``, the headline
  scale benchmark (thousands of mixed cold/warm queries, optional
  fault injection via the ``REPRO_FAULT_*`` environment knobs,
  cluster mode with daemon-kill chaos);
* :mod:`repro.serve.cli` — ``repro-serve`` (also ``repro-cc serve``).

See ``docs/serving.md`` for the protocol, error taxonomy, operational
knobs and drain semantics.
"""
