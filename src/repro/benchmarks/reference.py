"""Bit-exact Python reference models of the mini-C benchmarks.

Each function mirrors its benchmark's algorithm at Python level (same LCG,
same integer semantics) and returns the expected console output.  The test
suite runs the compiled T16 binaries on the simulator and requires exact
agreement — a strong end-to-end oracle over compiler, linker and ISS.
"""

from __future__ import annotations

_M32 = 0xFFFFFFFF


def _s32(value: int) -> int:
    """Wrap to signed 32-bit (mini-C ``int`` semantics)."""
    value &= _M32
    return value - (1 << 32) if value & 0x80000000 else value


def _s16(value: int) -> int:
    value &= 0xFFFF
    return value - (1 << 16) if value & 0x8000 else value


class _Lcg:
    def __init__(self, seed):
        self.state = seed

    def next(self):
        self.state = _s32(self.state * 1103515245 + 12345)
        return (self.state >> 16) & 32767


# ---------------------------------------------------------------------------
# MultiSort
# ---------------------------------------------------------------------------

def multisort_expected():
    """Expected console output of multisort.mc."""
    lcg = _Lcg(2024)
    data = [lcg.next() for _ in range(64)]
    checksum = 0
    for _ in range(6):  # six sorts over the same data
        for value in sorted(data):
            checksum = _s32(checksum * 31 + value) & 1048575
    checksum = (checksum % 65521) + (checksum // 4096)
    return [str(checksum)], checksum & 255


def sort_wc_expected():
    """Expected console output of sort_wc.mc."""
    checksum = 0
    for value in range(1, 65):
        checksum = _s32(checksum * 31 + value) & 1048575
    return [str(checksum)], checksum & 255


# ---------------------------------------------------------------------------
# IMA ADPCM
# ---------------------------------------------------------------------------

_INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]
_STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]


def _ima_code(indata):
    valpred, index = 0, 0
    step = _STEP_TABLE[index]
    out = []
    buffer = 0
    bufferstep = True
    for val in indata:
        diff = val - valpred
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        delta |= sign
        index += _INDEX_TABLE[delta]
        index = max(0, min(88, index))
        step = _STEP_TABLE[index]
        if bufferstep:
            buffer = (delta << 4) & 240
        else:
            out.append((delta & 15) | buffer)
        bufferstep = not bufferstep
    if not bufferstep:
        out.append(buffer)
    return out


def _ima_decode(codes, count):
    valpred, index = 0, 0
    step = _STEP_TABLE[index]
    out = []
    bufferstep = False
    buffer = 0
    position = 0
    for _ in range(count):
        if bufferstep:
            delta = buffer & 15
        else:
            buffer = codes[position]
            position += 1
            delta = (buffer >> 4) & 15
        bufferstep = not bufferstep
        index += _INDEX_TABLE[delta]
        index = max(0, min(88, index))
        sign = delta & 8
        delta &= 7
        vpdiff = step >> 3
        if delta & 4:
            vpdiff += step
        if delta & 2:
            vpdiff += step >> 1
        if delta & 1:
            vpdiff += step >> 2
        valpred = valpred - vpdiff if sign else valpred + vpdiff
        valpred = max(-32768, min(32767, valpred))
        step = _STEP_TABLE[index]
        out.append(valpred)
    return out


def adpcm_expected():
    """Expected console output of adpcm.mc."""
    lcg = _Lcg(54321)
    pcm_in = []
    for n in range(128):
        sample = _s16(((n & 31) << 9) - 8192 + (lcg.next() >> 3))
        pcm_in.append(sample)
    packed = _ima_code(pcm_in)
    pcm_out = _ima_decode(packed, 128)
    checksum = 0
    for n in range(64):
        checksum = _s32(checksum * 31 + packed[n]) & 1048575
    for n in range(128):
        checksum = _s32(checksum * 31 + (pcm_out[n] & 255)) & 1048575
    return [str(checksum)], checksum & 255


# ---------------------------------------------------------------------------
# G.721
# ---------------------------------------------------------------------------

_POWER2 = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
           16384]
_QTAB = [-124, 80, 178, 246, 300, 349, 400]
_DQLNTAB = [-2048, 4, 135, 213, 273, 323, 373, 425,
            425, 373, 323, 273, 213, 135, 4, -2048]
_WITAB = [-12, 18, 41, 64, 112, 198, 355, 1122,
          1122, 355, 198, 112, 64, 41, 18, -12]
_FITAB = [0, 0, 0, 512, 1024, 2048, 3072, 4096,
          4096, 3072, 2048, 1024, 512, 0, 0, 0]


class _G721State:
    def __init__(self):
        self.yl = 34816
        self.yu = 544
        self.dms = 0
        self.dml = 0
        self.ap = 0
        self.a = [0, 0]
        self.b = [0] * 6
        self.pk = [0, 0]
        self.dq = [32] * 6
        self.sr = [32, 32]
        self.td = 0


def _quan(val, table):
    for i, entry in enumerate(table):
        if val < entry:
            return i
    return len(table)


def _fmult(an, srn):
    anmag = an if an > 0 else (-an) & 8191
    anexp = _quan(anmag, _POWER2) - 6
    if anmag == 0:
        anmant = 32
    elif anexp >= 0:
        anmant = anmag >> anexp
    else:
        anmant = anmag << -anexp
    wanexp = anexp + ((srn >> 6) & 15) - 13
    wanmant = (anmant * (srn & 63) + 48) >> 4
    if wanexp >= 0:
        retval = 0 if wanexp > 15 else (wanmant << wanexp) & 32767
    else:
        retval = wanmant >> -wanexp
    return -retval if (an ^ srn) < 0 else retval


def _predictor_zero(state):
    total = _fmult(state.b[0] >> 2, state.dq[0])
    for i in range(1, 6):
        total += _fmult(state.b[i] >> 2, state.dq[i])
    return total


def _predictor_pole(state):
    return _fmult(state.a[1] >> 2, state.sr[1]) + \
        _fmult(state.a[0] >> 2, state.sr[0])


def _step_size(state):
    if state.ap >= 256:
        return state.yu
    y = state.yl >> 6
    dif = state.yu - y
    al = state.ap >> 2
    if dif > 0:
        y += (dif * al) >> 6
    elif dif < 0:
        y += (dif * al + 63) >> 6
    return y


def _quantize(d, y):
    dqm = -d if d < 0 else d
    exp = _quan(dqm >> 1, _POWER2)
    mant = ((dqm << 7) >> exp) & 127
    dl = (exp << 7) + mant
    dln = dl - (y >> 2)
    i = _quan(dln, _QTAB)
    if d < 0:
        return (7 << 1) + 1 - i
    if i == 0:
        return (7 << 1) + 1
    return i


def _reconstruct(sign, dqln, y):
    dql = dqln + (y >> 2)
    if dql < 0:
        return -32768 if sign else 0
    dex = (dql >> 7) & 15
    dqt = 128 + (dql & 127)
    dq = (dqt << 7) >> (14 - dex)
    return dq - 32768 if sign else dq


def _update(state, y, wi, fi, dq, sr, dqsez):
    a2p = 0
    pk0 = 1 if dqsez < 0 else 0
    mag = dq & 32767
    ylint = state.yl >> 15
    ylfrac = (state.yl >> 10) & 31
    thr1 = (32 + ylfrac) << ylint
    thr2 = 31 << 10 if ylint > 9 else thr1
    dqthr = (thr2 + (thr2 >> 1)) >> 1
    if state.td == 0 or mag <= dqthr:
        tr = 0
    else:
        tr = 1

    state.yu = _s16(y + ((wi - y) >> 5))
    if state.yu < 544:
        state.yu = 544
    elif state.yu > 5120:
        state.yu = 5120
    state.yl = _s32(state.yl + state.yu + ((-state.yl) >> 6))

    if tr == 1:
        state.a = [0, 0]
        state.b = [0] * 6
    else:
        pks1 = pk0 ^ state.pk[0]
        a2p = state.a[1] - (state.a[1] >> 7)
        if dqsez != 0:
            fa1 = state.a[0] if pks1 else -state.a[0]
            if fa1 < -8191:
                a2p -= 256
            elif fa1 > 8191:
                a2p += 255
            else:
                a2p += fa1 >> 5
            if pk0 ^ state.pk[1]:
                if a2p <= -12160:
                    a2p = -12288
                elif a2p >= 12416:
                    a2p = 12288
                else:
                    a2p -= 128
            elif a2p <= -12416:
                a2p = -12288
            elif a2p >= 12160:
                a2p = 12288
            else:
                a2p += 128
        state.a[1] = _s16(a2p)
        state.a[0] = _s16(state.a[0] - (state.a[0] >> 8))
        if dqsez != 0:
            if pks1 == 0:
                state.a[0] = _s16(state.a[0] + 192)
            else:
                state.a[0] = _s16(state.a[0] - 192)
        a1ul = 15360 - a2p
        if state.a[0] < -a1ul:
            state.a[0] = _s16(-a1ul)
        elif state.a[0] > a1ul:
            state.a[0] = _s16(a1ul)
        for cnt in range(6):
            state.b[cnt] = _s16(state.b[cnt] - (state.b[cnt] >> 8))
            if mag:
                if (dq ^ state.dq[cnt]) >= 0:
                    state.b[cnt] = _s16(state.b[cnt] + 128)
                else:
                    state.b[cnt] = _s16(state.b[cnt] - 128)

    for cnt in range(5, 0, -1):
        state.dq[cnt] = state.dq[cnt - 1]
    if mag == 0:
        state.dq[0] = 32 if dq >= 0 else -992
    else:
        exp = _quan(mag, _POWER2)
        tmp = (exp << 6) + ((mag << 6) >> exp)
        state.dq[0] = _s16(tmp) if dq >= 0 else _s16(tmp - 1024)

    state.sr[1] = state.sr[0]
    if sr == 0:
        state.sr[0] = 32
    elif sr > 0:
        exp = _quan(sr, _POWER2)
        state.sr[0] = _s16((exp << 6) + ((sr << 6) >> exp))
    elif sr > -32768:
        mag = -sr
        exp = _quan(mag, _POWER2)
        state.sr[0] = _s16((exp << 6) + ((mag << 6) >> exp) - 1024)
    else:
        state.sr[0] = -992

    state.pk[1] = state.pk[0]
    state.pk[0] = pk0
    if tr == 1:
        state.td = 0
    elif a2p < -11776:
        state.td = 1
    else:
        state.td = 0

    state.dms = _s16(state.dms + ((fi - state.dms) >> 5))
    state.dml = _s16(state.dml + (((fi << 2) - state.dml) >> 7))
    if tr == 1:
        state.ap = 256
    elif y < 1536 or state.td == 1:
        state.ap = _s16(state.ap + ((512 - state.ap) >> 4))
    else:
        tmp = (state.dms << 2) - state.dml
        if tmp < 0:
            tmp = -tmp
        if tmp >= (state.dml >> 3):
            state.ap = _s16(state.ap + ((512 - state.ap) >> 4))
        else:
            state.ap = _s16(state.ap + ((-state.ap) >> 4))


def _g721_encode(state, sl):
    sl >>= 2
    sezi = _predictor_zero(state)
    sez = sezi >> 1
    se = (sezi + _predictor_pole(state)) >> 1
    d = sl - se
    y = _step_size(state)
    i = _quantize(d, y)
    dq = _reconstruct(i & 8, _DQLNTAB[i], y)
    sr = se - (dq & 16383) if dq < 0 else se + dq
    dqsez = sr + sez - se
    _update(state, y, _WITAB[i] << 5, _FITAB[i], dq, sr, dqsez)
    return i


def _g721_decode(state, i):
    i &= 15
    sezi = _predictor_zero(state)
    sez = sezi >> 1
    se = (sezi + _predictor_pole(state)) >> 1
    y = _step_size(state)
    dq = _reconstruct(i & 8, _DQLNTAB[i], y)
    sr = se - (dq & 16383) if dq < 0 else se + dq
    dqsez = sr + sez - se
    _update(state, y, _WITAB[i] << 5, _FITAB[i], dq, sr, dqsez)
    return _s32(sr << 2)


def g721_expected():
    """Expected console output of g721.mc."""
    lcg = _Lcg(12345)
    inbuf = [_s16(lcg.next() - 16384) for _ in range(64)]
    enc = _G721State()
    dec = _G721State()
    checksum = 0
    codes = []
    for sample in inbuf:
        code = _g721_encode(enc, sample)
        codes.append(code)
        checksum = _s32(checksum * 31 + code) & 1048575
    for code in codes:
        sample = _g721_decode(dec, code)
        checksum = _s32(checksum * 31 + (sample & 255)) & 1048575
    return [str(checksum)], checksum & 255


# ---------------------------------------------------------------------------
# Extended suite (Malardalen-style kernels)
# ---------------------------------------------------------------------------

def fir_expected():
    """Expected console output of fir.mc."""
    coeffs = [-6, -4, 13, 16, -18, -41, 23, 154, 222, 154,
              23, -41, -18, 16, 13, -4, -6, 0, -6, -4,
              13, 16, -18, -41, 23, 154, 222, 154, 23, -41,
              -18, 16, 13, -4, -6]
    lcg = _Lcg(7777)
    signal = [(lcg.next() >> 4) - 1024 for _ in range(128)]
    checksum = 0
    for i in range(128):
        acc = sum(coeffs[k] * signal[i - k]
                  for k in range(35) if i - k >= 0)
        out = _s32(acc) >> 8
        checksum = _s32(checksum * 31 + out) & 1048575
    return [str(checksum)], checksum & 255


def crc_expected():
    """Expected console output of crc.mc."""
    lcg = _Lcg(31337)
    message = [lcg.next() & 255 for _ in range(64)]
    crc = 0xFFFF
    for byte in message:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return [str(crc)], crc & 255


def matmult_expected():
    """Expected console output of matmult.mc."""
    def fill(seed):
        lcg = _Lcg(seed)
        return [_s16((lcg.next() & 255) - 128) for _ in range(144)]

    mat_a = fill(42)
    mat_b = fill(77)
    checksum = 0
    product = [0] * 144
    for i in range(12):
        for j in range(12):
            acc = sum(mat_a[i * 12 + k] * mat_b[k * 12 + j]
                      for k in range(12))
            product[i * 12 + j] = _s32(acc)
    for value in product:
        checksum = _s32(checksum * 31 + value) & 1048575
    return [str(checksum)], checksum & 255
