"""Benchmark programs (the paper's Table 2) and their reference oracles."""

from .suite import BENCHMARKS, Benchmark, get, table2_rows

__all__ = ["BENCHMARKS", "Benchmark", "get", "table2_rows"]
