"""Benchmark registry — the paper's Table 2.

================ =========================================================
Name             Description
================ =========================================================
G.721            Speech encoding and decoding, CCITT ADPCM reference
                 implementation (MediaBench)
ADPCM            Adaptive Differential PCM coder/decoder, IMA/DVI variant
                 (MediaBench)
MultiSort        A mix of sorting algorithms commonly found in many
                 applications
SortWC           Insertion sort with a known worst-case input (precision
                 check, §4 of the paper)
================ =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from importlib import resources

from . import reference


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark program."""

    name: str
    source_file: str
    description: str
    #: callable returning (expected console lines, expected exit code)
    expected: object
    #: part of the paper's Table 2 (BubbleWC is the §4 side experiment)
    in_table2: bool = True

    def source(self) -> str:
        package = resources.files("repro.benchmarks") / "sources"
        return (package / self.source_file).read_text()


BENCHMARKS = {
    "g721": Benchmark(
        name="G.721",
        source_file="g721.mc",
        description=("Speech encoding and decoding, CCITT ADPCM "
                     "reference implementation (MediaBench)"),
        expected=reference.g721_expected,
    ),
    "adpcm": Benchmark(
        name="ADPCM",
        source_file="adpcm.mc",
        description=("Adaptive Differential PCM coder/decoder, "
                     "IMA/DVI variant (MediaBench)"),
        expected=reference.adpcm_expected,
    ),
    "multisort": Benchmark(
        name="MultiSort",
        source_file="multisort.mc",
        description=("A mix of sorting algorithms commonly found in "
                     "many applications"),
        expected=reference.multisort_expected,
    ),
    "fir": Benchmark(
        name="FIR",
        source_file="fir.mc",
        description=("35-tap FIR filter, fixed point "
                     "(Malardalen-style, extended suite)"),
        expected=reference.fir_expected,
        in_table2=False,
    ),
    "crc": Benchmark(
        name="CRC",
        source_file="crc.mc",
        description=("CRC-16/CCITT, bit-serial and table-driven "
                     "(Malardalen-style, extended suite)"),
        expected=reference.crc_expected,
        in_table2=False,
    ),
    "matmult": Benchmark(
        name="MatMult",
        source_file="matmult.mc",
        description=("12x12 integer matrix multiplication "
                     "(Malardalen-style, extended suite)"),
        expected=reference.matmult_expected,
        in_table2=False,
    ),
    "sort_wc": Benchmark(
        name="SortWC",
        source_file="sort_wc.mc",
        description=("Insertion sort with a known worst-case input "
                     "(WCET precision check)"),
        expected=reference.sort_wc_expected,
        in_table2=False,
    ),
}


def get(name: str) -> Benchmark:
    return BENCHMARKS[name]


def table2_rows():
    """The rows of the paper's Table 2."""
    return [(b.name, b.description)
            for b in BENCHMARKS.values() if b.in_table2]
