"""The paper's Figure-1 workflow, as two one-call pipelines.

Left branch (scratchpad):
  compile -> profile (typical input, ARMulator role) -> energy knapsack
  -> link with SPM placement -> simulate -> WCET analysis (region
  annotations only).

Right branch (cache):
  compile -> link (cache is software-transparent: one executable serves
  all cache sizes) -> simulate with the cache model -> WCET analysis with
  the MUST cache analysis.

A :class:`Workflow` caches the compile and profile steps so a size sweep
only repeats the placement/simulation/analysis work, like the paper's
experimental setup.  Simulation itself is trace-driven wherever an
executable is evaluated under more than one memory timing: the dynamic
access stream is recorded once per image (:mod:`repro.sim.trace`) and
re-priced per configuration by the replay kernels
(:mod:`repro.sim.replay`), with same-geometry cache size sweeps served
by a single Mattson-style pass (:meth:`Workflow.cache_points`).  Results
are bit-identical to executing every point (the engine remains the
recorder and the ground truth).

Beyond the paper's two branches, the deeper pipelines of
:mod:`repro.memory.levels` get evaluation points too:
:meth:`Workflow.hybrid_point` (SPM with a cache behind it),
:meth:`Workflow.multilevel_point` (L1+L2) and
:meth:`Workflow.split_point` (split I/D caches).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .energy.model import EnergyModel
from .link.linker import link
from .memory.cache import CacheConfig
from .memory.hierarchy import SystemConfig
from .minic.frontend import compile_source
from .sim.profile import ProgramProfile, build_profile
from .sim.replay import (
    grid_geometry,
    replay,
    replay_grid,
    replay_sweep,
    sweep_geometry,
)
from .sim.simulator import SimResult, simulate
from .sim.trace import trace_for
from .spm.allocator import Allocation, allocate_energy_optimal
from .spm.wcet_driven import allocate_wcet_driven
from .wcet.analyzer import WCETResult, analyze_wcet

#: The paper's size sweep: 64 bytes to 8 kilobytes.
PAPER_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass
class EvaluationPoint:
    """One (system configuration, executable) measurement."""

    config: SystemConfig
    image: object
    sim: SimResult
    wcet: WCETResult
    allocation: Allocation = None

    @property
    def ratio(self) -> float:
        """WCET overestimation vs. the typical-input simulation."""
        return self.wcet.wcet / self.sim.cycles

    def row(self) -> dict:
        """Flat record for tables/reports."""
        return {
            "config": self.config.name,
            "sim_cycles": self.sim.cycles,
            "wcet_cycles": self.wcet.wcet,
            "ratio": round(self.ratio, 3),
        }


class Workflow:
    """Compile once; evaluate any number of memory configurations."""

    def __init__(self, source: str, entry: str = "main",
                 max_steps: int = 200_000_000,
                 energy_model: EnergyModel = None):
        self.compiled = compile_source(source, entry=entry)
        self.max_steps = max_steps
        self.energy_model = energy_model or EnergyModel()
        self._profile = None
        self._baseline_image = None
        self._points = {}  # (kind, parameters) -> EvaluationPoint

    @property
    def program(self):
        return self.compiled.program

    # -- shared steps -----------------------------------------------------------

    def baseline_image(self):
        """All-objects-in-main-memory executable (also the cache binary)."""
        if self._baseline_image is None:
            self._baseline_image = link(self.program, spm_size=0,
                                        config_name="baseline")
        return self._baseline_image

    def profile(self) -> ProgramProfile:
        """Typical-input access profile (drives the energy knapsack)."""
        if self._profile is None:
            result = simulate(self.baseline_image(),
                              SystemConfig.uncached(),
                              max_steps=self.max_steps, profile=True)
            self._profile = build_profile(self.baseline_image(), result)
        return self._profile

    def warm(self, profile: bool = False) -> "Workflow":
        """Precompute the shared steps every evaluation point needs.

        Links the baseline executable (and, for scratchpad/hybrid
        sweeps, runs the typical-input profile) so sweep workers — or a
        process about to fork them — pay the one-off costs exactly once
        instead of once per task.
        """
        self.baseline_image()
        if profile:
            self.profile()
        return self

    # -- left branch: scratchpad ---------------------------------------------------

    def allocate(self, spm_size: int, method: str = "energy",
                 backing_cache: CacheConfig = None) -> Allocation:
        """*backing_cache* tells the WCET-driven allocator what sits
        behind the scratchpad in a hybrid pipeline."""
        if method == "energy":
            return allocate_energy_optimal(
                self.program, self.profile(), spm_size,
                model=self.energy_model)
        if method == "wcet":
            baseline = (SystemConfig.cached(backing_cache)
                        if backing_cache is not None else None)
            return allocate_wcet_driven(self.program, spm_size,
                                        baseline_config=baseline)
        raise ValueError(f"unknown allocation method {method!r}")

    def spm_point(self, spm_size: int,
                  method: str = "energy") -> EvaluationPoint:
        """Evaluate one scratchpad capacity (allocate, link, sim, WCET)."""
        key = ("spm", spm_size, method)
        if key in self._points:
            return self._points[key]
        allocation = self.allocate(spm_size, method)
        image = link(self.program, spm_size=spm_size,
                     spm_objects=allocation.objects,
                     config_name=f"spm{spm_size}")
        config = SystemConfig.scratchpad(spm_size)
        sim = simulate(image, config, max_steps=self.max_steps)
        wcet = analyze_wcet(image, config)
        point = EvaluationPoint(config=config, image=image, sim=sim,
                                wcet=wcet, allocation=allocation)
        self._points[key] = point
        return point

    def spm_sweep(self, sizes=PAPER_SIZES, method: str = "energy"):
        return [self.spm_point(size, method) for size in sizes]

    # -- trace-driven simulation -------------------------------------------------

    def _traced_sim(self, image, config: SystemConfig,
                    spm_size: int = 0) -> SimResult:
        """Simulate via the recorded trace (recording it on first use)."""
        trace = trace_for(image, spm_size, max_steps=self.max_steps)
        return replay(trace, config, max_steps=self.max_steps)

    def _cache_sims(self, caches) -> dict:
        """One :class:`SimResult` per cache config, trace-replayed.

        Same-geometry LRU groups are served from a single pass over the
        baseline trace — a stack-distance size sweep when the whole
        group is direct-mapped (the paper's size sweeps), the per-set
        Mattson geometry-grid kernel when associativities mix; anything
        else replays per config.  All of it reuses the one recorded
        trace of the shared executable.
        """
        trace = trace_for(self.baseline_image(), 0,
                          max_steps=self.max_steps)
        groups = {}
        singles = []
        for cache in dict.fromkeys(caches):
            config = SystemConfig.cached(cache)
            key = grid_geometry(config)
            if key is None:
                singles.append((cache, config))
            else:
                groups.setdefault(key, []).append((cache, config))
        sims = {}
        for items in groups.values():
            if len(items) == 1:
                singles.extend(items)
                continue
            configs = [config for _, config in items]
            if all(sweep_geometry(config) is not None
                   for config in configs):
                results = replay_sweep(trace, configs,
                                       max_steps=self.max_steps)
            else:
                results = replay_grid(trace, configs,
                                      max_steps=self.max_steps)
            for (cache, _), sim in zip(items, results):
                sims[cache] = sim
        for cache, config in singles:
            sims[cache] = replay(trace, config, max_steps=self.max_steps)
        return sims

    def cache_sims(self, caches) -> dict:
        """Trace-replayed :class:`SimResult` per cache config, no WCET.

        The geometry-grid entry point: hand any mix of single-level
        cache configs (sizes × associativities) and compatible groups
        collapse into single sweep/grid passes over the one recorded
        trace.  Returns ``{cache_config: SimResult}``.
        """
        return self._cache_sims(list(dict.fromkeys(caches)))

    def sim_for(self, config: SystemConfig) -> SimResult:
        """Trace-replayed simulation of the shared executable, no WCET.

        Accepts any non-scratchpad level pipeline (placement would make
        the executable config-dependent — use :meth:`spm_point` /
        :meth:`hybrid_point` for those).  The serving daemon's
        ``simulate`` op is answered from here.
        """
        if config.spm_size:
            raise ValueError("use hybrid_point/spm_point for SPM pipelines")
        return self._traced_sim(self.baseline_image(), config)

    # -- right branch: cache ----------------------------------------------------------

    def cache_point(self, cache: CacheConfig,
                    persistence: bool = False) -> EvaluationPoint:
        """Evaluate one cache configuration on the shared executable."""
        return self.cache_points([(cache, persistence)])[0]

    def cache_points(self, specs):
        """Evaluate ``(cache, persistence)`` specs, batching the sims.

        The sweep-aware planner: every spec's simulation comes from the
        shared executable's recorded trace, with compatible-geometry
        size sweeps collapsed into one single-pass replay, and WCET
        analysis runs once per distinct spec.  Returns points in spec
        order (memoized like :meth:`cache_point` always was).
        """
        specs = [(cache, bool(persistence)) for cache, persistence in specs]
        pending = [
            spec for spec in dict.fromkeys(specs)
            if ("cache",) + spec not in self._points]
        if pending:
            image = self.baseline_image()
            # Persistence only changes the WCET side; a point already
            # evaluated under the other persistence setting donates its
            # simulation instead of replaying again.
            sims = {}
            for cache, persistence in pending:
                other = self._points.get(("cache", cache, not persistence))
                if other is not None:
                    sims[cache] = other.sim
            fresh = [cache for cache, _ in pending if cache not in sims]
            if fresh:
                sims.update(self._cache_sims(fresh))
            for cache, persistence in pending:
                config = SystemConfig.cached(cache)
                wcet = analyze_wcet(image, config,
                                    persistence=persistence)
                self._points[("cache", cache, persistence)] = \
                    EvaluationPoint(config=config, image=image,
                                    sim=sims[cache], wcet=wcet)
        return [self._points[("cache",) + spec] for spec in specs]

    def cache_sweep(self, sizes=PAPER_SIZES, line_size: int = 16,
                    assoc: int = 1, unified: bool = True,
                    persistence: bool = False):
        return self.cache_points([
            (CacheConfig(size=size, line_size=line_size, assoc=assoc,
                         unified=unified), persistence)
            for size in sizes])

    # -- deeper pipelines (the future-work shapes) ------------------------------

    def multilevel_point(self, l1: CacheConfig, l2: CacheConfig,
                         persistence: bool = False) -> EvaluationPoint:
        """Evaluate an L1+L2 pipeline on the shared executable."""
        config = SystemConfig.two_level(l1, l2)
        return self.config_point(config, persistence=persistence)

    def split_point(self, icache: CacheConfig, dcache: CacheConfig,
                    persistence: bool = False) -> EvaluationPoint:
        """Evaluate split L1 instruction/data caches."""
        config = SystemConfig.split_l1(icache, dcache)
        return self.config_point(config, persistence=persistence)

    def hybrid_point(self, spm_size: int, cache: CacheConfig,
                     method: str = "energy",
                     persistence: bool = False) -> EvaluationPoint:
        """Scratchpad allocation with a cache behind it for the rest."""
        key = ("hybrid", spm_size, cache, method, persistence)
        if key in self._points:
            return self._points[key]
        allocation = self.allocate(spm_size, method, backing_cache=cache)
        image = link(self.program, spm_size=spm_size,
                     spm_objects=allocation.objects,
                     config_name=f"spm{spm_size}+cache{cache.size}")
        config = SystemConfig.hybrid(spm_size, cache)
        sim = self._traced_sim(image, config, spm_size=spm_size)
        wcet = analyze_wcet(image, config, persistence=persistence)
        point = EvaluationPoint(config=config, image=image, sim=sim,
                                wcet=wcet, allocation=allocation)
        self._points[key] = point
        return point

    def config_point(self, config: SystemConfig,
                     persistence: bool = False) -> EvaluationPoint:
        """Evaluate an arbitrary level pipeline on the shared executable.

        The pipeline must not contain an SPM level (placement would be
        needed) — use :meth:`hybrid_point` / :meth:`spm_point` for those.
        """
        if config.spm_size:
            raise ValueError("use hybrid_point/spm_point for SPM pipelines")
        # Levels are frozen/hashable and capture the full geometry (names
        # alone would collide across e.g. associativity sweeps).
        key = ("config", config.levels, persistence)
        if key in self._points:
            return self._points[key]
        image = self.baseline_image()
        sim = self._traced_sim(image, config)
        wcet = analyze_wcet(image, config, persistence=persistence)
        point = EvaluationPoint(config=config, image=image, sim=sim,
                                wcet=wcet)
        self._points[key] = point
        return point

    # -- baseline -----------------------------------------------------------------------

    def uncached_point(self) -> EvaluationPoint:
        key = ("uncached",)
        if key in self._points:
            return self._points[key]
        image = self.baseline_image()
        config = SystemConfig.uncached()
        sim = self._traced_sim(image, config)
        wcet = analyze_wcet(image, config)
        point = EvaluationPoint(config=config, image=image, sim=sim,
                                wcet=wcet)
        self._points[key] = point
        return point
