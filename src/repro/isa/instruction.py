"""Instruction representation shared by assembler, simulator and analyser.

An :class:`Instr` is a decoded (or not-yet-encoded) T16 instruction.  The
same object type flows through the whole stack:

* the mini-C code generator emits ``Instr`` objects with *symbolic* branch
  targets (label strings in :attr:`Instr.target`);
* the assembler/encoder resolves labels and produces halfwords;
* the decoder reconstructs ``Instr`` objects from memory for the simulator
  and for the WCET analyser's CFG reconstruction.
"""

from __future__ import annotations

from .opcodes import (
    BRANCH_OPS,
    FOUR_BYTE_OPS,
    LOAD_WIDTH,
    STORE_WIDTH,
    Cond,
    Op,
)
from .registers import reg_name


class Instr:
    """One T16 instruction.

    Attributes default to ``None``/empty so factories only set what the
    opcode uses.  ``imm`` holds the *semantic* immediate (byte offsets for
    memory ops, already scaled), not raw encoding fields.
    """

    __slots__ = ("op", "rd", "rn", "rm", "imm", "cond", "reglist",
                 "with_link", "target", "note")

    def __init__(self, op, rd=None, rn=None, rm=None, imm=None, cond=None,
                 reglist=(), with_link=False, target=None, note=None):
        self.op = op
        self.rd = rd
        self.rn = rn
        self.rm = rm
        self.imm = imm
        self.cond = cond
        self.reglist = tuple(reglist)
        #: PUSH: include lr; POP: include pc.
        self.with_link = with_link
        #: Symbolic branch target (label name) before encoding, or the
        #: resolved absolute address after decoding.
        self.target = target
        #: Optional tool metadata (e.g. a data-access annotation attached by
        #: the compiler); never part of the encoding.
        self.note = note

    @property
    def size(self) -> int:
        """Encoded size in bytes (2, or 4 for BL)."""
        return 4 if self.op in FOUR_BYTE_OPS else 2

    @property
    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    @property
    def load_width(self):
        """Data-read width in bytes, or None if the op does not load."""
        if self.op in LOAD_WIDTH:
            return LOAD_WIDTH[self.op]
        if self.op is Op.POP:
            return 4
        return None

    @property
    def store_width(self):
        """Data-write width in bytes, or None if the op does not store."""
        if self.op in STORE_WIDTH:
            return STORE_WIDTH[self.op]
        if self.op is Op.PUSH:
            return 4
        return None

    def __eq__(self, other):
        if not isinstance(other, Instr):
            return NotImplemented
        return all(
            getattr(self, slot) == getattr(other, slot)
            for slot in self.__slots__ if slot != "note"
        )

    def __hash__(self):
        return hash((self.op, self.rd, self.rn, self.rm, self.imm,
                     self.cond, self.reglist, self.with_link, self.target))

    def __repr__(self):
        from .disassembler import format_instr
        try:
            return f"<Instr {format_instr(self)}>"
        except Exception:
            return f"<Instr {self.op.name}>"


# ---------------------------------------------------------------------------
# Factories.  Codegen and tests build instructions through these so operand
# mistakes fail fast rather than at encode time.
# ---------------------------------------------------------------------------

def _check_low(reg, what="register"):
    if not isinstance(reg, int) or not 0 <= reg <= 7:
        raise ValueError(f"{what} must be r0-r7, got {reg!r}")
    return reg


def _check_range(value, lo, hi, what):
    if not isinstance(value, int) or not lo <= value <= hi:
        raise ValueError(f"{what} out of range [{lo}, {hi}]: {value!r}")
    return value


def movi(rd, imm):
    return Instr(Op.MOVI, rd=_check_low(rd), imm=_check_range(imm, 0, 255, "imm8"))


def cmpi(rd, imm):
    return Instr(Op.CMPI, rd=_check_low(rd), imm=_check_range(imm, 0, 255, "imm8"))


def addi(rd, imm):
    return Instr(Op.ADDI, rd=_check_low(rd), imm=_check_range(imm, 0, 255, "imm8"))


def subi(rd, imm):
    return Instr(Op.SUBI, rd=_check_low(rd), imm=_check_range(imm, 0, 255, "imm8"))


def add_r(rd, rn, rm):
    return Instr(Op.ADDR, rd=_check_low(rd), rn=_check_low(rn), rm=_check_low(rm))


def sub_r(rd, rn, rm):
    return Instr(Op.SUBR, rd=_check_low(rd), rn=_check_low(rn), rm=_check_low(rm))


def add3(rd, rn, imm):
    return Instr(Op.ADD3, rd=_check_low(rd), rn=_check_low(rn),
                 imm=_check_range(imm, 0, 7, "imm3"))


def sub3(rd, rn, imm):
    return Instr(Op.SUB3, rd=_check_low(rd), rn=_check_low(rn),
                 imm=_check_range(imm, 0, 7, "imm3"))


def shift_i(op, rd, rm, imm):
    if op not in (Op.LSLI, Op.LSRI, Op.ASRI):
        raise ValueError(f"not an immediate shift: {op}")
    return Instr(op, rd=_check_low(rd), rm=_check_low(rm),
                 imm=_check_range(imm, 0, 31, "imm5"))


def alu(op, rd, rm):
    """Two-address ALU op: rd = rd <op> rm (TST/CMP/CMN only set flags)."""
    from .opcodes import ALU_INDEX
    if op not in ALU_INDEX:
        raise ValueError(f"not a two-address ALU op: {op}")
    return Instr(op, rd=_check_low(rd), rm=_check_low(rm))


def movr(rd, rm):
    return Instr(Op.MOVR, rd=_check_low(rd), rm=_check_low(rm))


def ldr_pc(rd, byte_offset=None, target=None):
    """PC-relative literal load; offset resolved at assembly if symbolic."""
    if byte_offset is not None:
        _check_range(byte_offset, 0, 1020, "pc offset")
        if byte_offset % 4:
            raise ValueError("pc-relative offset must be word aligned")
    return Instr(Op.LDRPC, rd=_check_low(rd), imm=byte_offset, target=target)


def add_pc(rd, byte_offset):
    _check_range(byte_offset, 0, 1020, "pc offset")
    if byte_offset % 4:
        raise ValueError("pc-relative offset must be word aligned")
    return Instr(Op.ADDPC, rd=_check_low(rd), imm=byte_offset)


def ldr_sp(rd, byte_offset):
    _check_range(byte_offset, 0, 1020, "sp offset")
    if byte_offset % 4:
        raise ValueError("sp-relative offset must be word aligned")
    return Instr(Op.LDRSP, rd=_check_low(rd), imm=byte_offset)


def str_sp(rd, byte_offset):
    _check_range(byte_offset, 0, 1020, "sp offset")
    if byte_offset % 4:
        raise ValueError("sp-relative offset must be word aligned")
    return Instr(Op.STRSP, rd=_check_low(rd), imm=byte_offset)


def add_sp_i(rd, byte_offset):
    _check_range(byte_offset, 0, 1020, "sp offset")
    if byte_offset % 4:
        raise ValueError("sp-relative offset must be word aligned")
    return Instr(Op.ADDSPI, rd=_check_low(rd), imm=byte_offset)


def sp_adjust(delta_bytes):
    """sp += delta_bytes (multiple of 4, |delta| <= 508)."""
    _check_range(delta_bytes, -508, 508, "sp adjustment")
    if delta_bytes % 4:
        raise ValueError("sp adjustment must be a multiple of 4")
    return Instr(Op.SPADJ, imm=delta_bytes)


_IMM_MEM_SCALE = {Op.STRWI: 4, Op.LDRWI: 4, Op.STRHI: 2, Op.LDRHI: 2,
                  Op.STRBI: 1, Op.LDRBI: 1}


def mem_i(op, rd, rn, byte_offset):
    """Immediate-offset load/store; offset is in bytes, width-scaled."""
    scale = _IMM_MEM_SCALE.get(op)
    if scale is None:
        raise ValueError(f"not an immediate-offset memory op: {op}")
    _check_range(byte_offset, 0, 31 * scale, "mem offset")
    if byte_offset % scale:
        raise ValueError(f"offset {byte_offset} not aligned to {scale}")
    return Instr(op, rd=_check_low(rd), rn=_check_low(rn), imm=byte_offset)


_REG_MEM_OPS = frozenset({
    Op.STRW_R, Op.STRH_R, Op.STRB_R, Op.LDRSB_R,
    Op.LDRW_R, Op.LDRH_R, Op.LDRB_R, Op.LDRSH_R,
})


def mem_r(op, rd, rn, rm):
    """Register-offset load/store: address = rn + rm."""
    if op not in _REG_MEM_OPS:
        raise ValueError(f"not a register-offset memory op: {op}")
    return Instr(op, rd=_check_low(rd), rn=_check_low(rn), rm=_check_low(rm))


def push(reglist, lr=False):
    regs = tuple(sorted(set(reglist)))
    for reg in regs:
        _check_low(reg, "push register")
    return Instr(Op.PUSH, reglist=regs, with_link=lr)


def pop(reglist, pc=False):
    regs = tuple(sorted(set(reglist)))
    for reg in regs:
        _check_low(reg, "pop register")
    return Instr(Op.POP, reglist=regs, with_link=pc)


def b(target):
    return Instr(Op.B, target=target)


def bcc(cond, target):
    if not isinstance(cond, Cond):
        raise ValueError(f"bad condition: {cond!r}")
    if cond is Cond.AL:
        return b(target)
    return Instr(Op.BCC, cond=cond, target=target)


def bl(target):
    return Instr(Op.BL, target=target)


def bx(rm):
    if rm == 14:  # lr
        return Instr(Op.BX, rm=rm)
    return Instr(Op.BX, rm=_check_low(rm))


def swi(number):
    return Instr(Op.SWI, imm=_check_range(number, 0, 255, "swi number"))


def nop():
    return Instr(Op.NOP)


def describe_operands(instr: Instr) -> str:
    """Human-readable operand summary (used in diagnostics)."""
    parts = []
    for slot in ("rd", "rn", "rm"):
        value = getattr(instr, slot)
        if value is not None:
            parts.append(f"{slot}={reg_name(value)}")
    if instr.imm is not None:
        parts.append(f"imm={instr.imm}")
    if instr.cond is not None:
        parts.append(f"cond={instr.cond.name}")
    if instr.target is not None:
        parts.append(f"target={instr.target}")
    return ", ".join(parts)
