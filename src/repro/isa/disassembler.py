"""Textual disassembly of T16 instructions."""

from __future__ import annotations

from .opcodes import ALU_INDEX, Op
from .registers import reg_name


_SHIFT_NAMES = {Op.LSLI: "lsl", Op.LSRI: "lsr", Op.ASRI: "asr"}
_MEM_I_NAMES = {Op.STRWI: "str", Op.LDRWI: "ldr", Op.STRHI: "strh",
                Op.LDRHI: "ldrh", Op.STRBI: "strb", Op.LDRBI: "ldrb"}
_MEM_R_NAMES = {Op.STRW_R: "str", Op.LDRW_R: "ldr", Op.STRH_R: "strh",
                Op.LDRH_R: "ldrh", Op.STRB_R: "strb", Op.LDRB_R: "ldrb",
                Op.LDRSH_R: "ldrsh", Op.LDRSB_R: "ldrsb"}


def _target(instr) -> str:
    if isinstance(instr.target, int):
        return f"{instr.target:#x}"
    return str(instr.target)


def format_instr(instr) -> str:
    """Render *instr* as one line of assembly text."""
    op = instr.op
    rd = reg_name(instr.rd) if instr.rd is not None else None
    rn = reg_name(instr.rn) if instr.rn is not None else None
    rm = reg_name(instr.rm) if instr.rm is not None else None

    if op in _SHIFT_NAMES:
        return f"{_SHIFT_NAMES[op]} {rd}, {rm}, #{instr.imm}"
    if op is Op.ADDR:
        return f"add {rd}, {rn}, {rm}"
    if op is Op.SUBR:
        return f"sub {rd}, {rn}, {rm}"
    if op is Op.ADD3:
        return f"add {rd}, {rn}, #{instr.imm}"
    if op is Op.SUB3:
        return f"sub {rd}, {rn}, #{instr.imm}"
    if op is Op.MOVI:
        return f"mov {rd}, #{instr.imm}"
    if op is Op.CMPI:
        return f"cmp {rd}, #{instr.imm}"
    if op is Op.ADDI:
        return f"add {rd}, #{instr.imm}"
    if op is Op.SUBI:
        return f"sub {rd}, #{instr.imm}"
    if op in ALU_INDEX:
        return f"{op.name.lower()} {rd}, {rm}"
    if op is Op.MOVR:
        return f"mov {rd}, {rm}"
    if op is Op.BX:
        return f"bx {reg_name(instr.rm)}"
    if op is Op.LDRPC:
        if instr.target is not None and not isinstance(instr.target, int):
            return f"ldr {rd}, ={instr.target}"
        return f"ldr {rd}, [pc, #{instr.imm}]"
    if op is Op.ADDPC:
        return f"add {rd}, pc, #{instr.imm}"
    if op is Op.LDRSP:
        return f"ldr {rd}, [sp, #{instr.imm}]"
    if op is Op.STRSP:
        return f"str {rd}, [sp, #{instr.imm}]"
    if op is Op.ADDSPI:
        return f"add {rd}, sp, #{instr.imm}"
    if op is Op.SPADJ:
        if instr.imm < 0:
            return f"sub sp, #{-instr.imm}"
        return f"add sp, #{instr.imm}"
    if op in _MEM_I_NAMES:
        return f"{_MEM_I_NAMES[op]} {rd}, [{rn}, #{instr.imm}]"
    if op in _MEM_R_NAMES:
        return f"{_MEM_R_NAMES[op]} {rd}, [{rn}, {rm}]"
    if op in (Op.PUSH, Op.POP):
        regs = [reg_name(r) for r in instr.reglist]
        if instr.with_link:
            regs.append("lr" if op is Op.PUSH else "pc")
        return f"{op.name.lower()} {{{', '.join(regs)}}}"
    if op is Op.SWI:
        return f"swi #{instr.imm}"
    if op is Op.BCC:
        return f"b{instr.cond.name.lower()} {_target(instr)}"
    if op is Op.B:
        return f"b {_target(instr)}"
    if op is Op.BL:
        return f"bl {_target(instr)}"
    if op is Op.NOP:
        return "nop"
    raise ValueError(f"cannot format {op!r}")


def disassemble_words(halfwords, base_addr: int = 0):
    """Disassemble a sequence of halfwords; yields (addr, Instr) pairs."""
    from .encoding import decode
    index = 0
    words = list(halfwords)
    while index < len(words):
        addr = base_addr + index * 2
        nxt = words[index + 1] if index + 1 < len(words) else None
        instr = decode(words[index], addr, nxt)
        yield addr, instr
        index += instr.size // 2
