"""T16: a THUMB-like 16-bit instruction set (ISA layer).

Public surface:

* :mod:`repro.isa.opcodes` — :class:`Op`, :class:`Cond` and opcode metadata
* :mod:`repro.isa.instruction` — :class:`Instr` plus operand-checked factories
* :mod:`repro.isa.encoding` — :func:`encode` / :func:`decode`
* :mod:`repro.isa.assembler` — two-pass text assembler
* :mod:`repro.isa.disassembler` — :func:`format_instr`
"""

from .opcodes import Cond, Op
from .instruction import Instr
from .encoding import EncodingError, IllegalInstruction, decode, encode
from .assembler import AsmError, Assembler, Data, Label, assemble
from .disassembler import disassemble_words, format_instr
from .registers import LR, PC, SP, parse_reg, reg_name

__all__ = [
    "Cond", "Op", "Instr", "EncodingError", "IllegalInstruction",
    "decode", "encode", "AsmError", "Assembler", "Data", "Label",
    "assemble", "disassemble_words", "format_instr",
    "LR", "PC", "SP", "parse_reg", "reg_name",
]
