"""Binary encoding and decoding of T16 instructions.

Encoding layout (bits 15..11 = major opcode unless noted):

====== ===========================================================
major  format
====== ===========================================================
00000  LSLI  imm5[10:6] rm[5:3] rd[2:0]
00001  LSRI  (same fields)
00010  ASRI  (same fields)
00011  add/sub: sub[10:9] (00 ADDR, 01 SUBR, 10 ADD3, 11 SUB3),
       rm-or-imm3[8:6], rn[5:3], rd[2:0]
00100  MOVI  rd[10:8] imm8[7:0]
00101  CMPI  ...
00110  ADDI  ...
00111  SUBI  ...
01000  bit10=0: ALU subop[9:6] rm[5:3] rd[2:0]
       bit10=1: subop[9:6]=0 MOVR rm[5:3] rd[2:0]; =1 BX rm4[6:3]
01001  LDRPC rd[10:8] imm8[7:0] (words)
01010  reg-offset stores: sub[10:9] 00 STRW_R 01 STRH_R 10 STRB_R
       11 LDRSB_R; rm[8:6] rn[5:3] rd[2:0]
01011  reg-offset loads: 00 LDRW_R 01 LDRH_R 10 LDRB_R 11 LDRSH_R
01100  STRWI imm5[10:6] (words) rn[5:3] rd[2:0]
01101  LDRWI
01110  STRBI (bytes)
01111  LDRBI
10000  STRHI (halfwords)
10001  LDRHI
10010  STRSP rd[10:8] imm8[7:0] (words)
10011  LDRSP
10100  ADDPC rd[10:8] imm8[7:0] (words)
10101  ADDSPI
10110  SPADJ sign[7] imm7[6:0] (words)
10111  PUSH/POP: L[10] (0 push, 1 pop), M[8], reglist[7:0]
11000  SWI imm8[7:0]
1101x  BCC cond[11:8] soff8[7:0]   (top four bits 1101)
11100  B soff11[10:0]
11101  BL prefix, off[10:0] (high part)
11110  BL suffix, off[10:0] (low part)
11111  NOP (remaining bits zero)
====== ===========================================================

Branch target arithmetic (THUMB-style, pc reads as instruction address + 4):

* ``BCC``: target = addr + 4 + soff8 * 2
* ``B``:   target = addr + 4 + soff11 * 2
* ``BL``:  target = addr + 4 + signext22(hi11 << 11 | lo11) * 2
* ``LDRPC``/``ADDPC`` base = (addr + 4) & ~3
"""

from __future__ import annotations

from .instruction import Instr
from .opcodes import ALU_INDEX, ALU_ORDER, Cond, Op


class EncodingError(Exception):
    """Instruction cannot be encoded (bad fields or out-of-range target)."""


class IllegalInstruction(Exception):
    """Halfword does not decode to a valid T16 instruction."""

    def __init__(self, halfword, addr=None):
        self.halfword = halfword
        self.addr = addr
        where = f" at {addr:#x}" if addr is not None else ""
        super().__init__(f"illegal instruction {halfword:#06x}{where}")


def _signed(value: int, bits: int) -> int:
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _fit_signed(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{what} out of range [{lo}, {hi}]: {value}")
    return value & ((1 << bits) - 1)


_SHIFT_MAJORS = {Op.LSLI: 0b00000, Op.LSRI: 0b00001, Op.ASRI: 0b00010}
_IMM8_MAJORS = {Op.MOVI: 0b00100, Op.CMPI: 0b00101,
                Op.ADDI: 0b00110, Op.SUBI: 0b00111}
_ADDSUB_SUB = {Op.ADDR: 0, Op.SUBR: 1, Op.ADD3: 2, Op.SUB3: 3}
_STORE_R_SUB = {Op.STRW_R: 0, Op.STRH_R: 1, Op.STRB_R: 2, Op.LDRSB_R: 3}
_LOAD_R_SUB = {Op.LDRW_R: 0, Op.LDRH_R: 1, Op.LDRB_R: 2, Op.LDRSH_R: 3}
_MEM_I_MAJORS = {Op.STRWI: (0b01100, 4), Op.LDRWI: (0b01101, 4),
                 Op.STRBI: (0b01110, 1), Op.LDRBI: (0b01111, 1),
                 Op.STRHI: (0b10000, 2), Op.LDRHI: (0b10001, 2)}
_SP_MAJORS = {Op.STRSP: 0b10010, Op.LDRSP: 0b10011}
_PCADR_MAJORS = {Op.LDRPC: 0b01001, Op.ADDPC: 0b10100}


def encode(instr: Instr, addr: int = 0, resolve=None) -> list[int]:
    """Encode *instr* at byte address *addr* into a list of halfwords.

    *resolve* maps a symbolic target (``instr.target``) to an absolute byte
    address; it is required when the instruction still carries a label.
    Numeric ``instr.target`` values are treated as already-absolute.
    """
    op = instr.op

    def target_addr():
        target = instr.target
        if isinstance(target, int):
            return target
        if resolve is None:
            raise EncodingError(f"unresolved target {target!r} in {op.name}")
        return resolve(target)

    if op in _SHIFT_MAJORS:
        return [(_SHIFT_MAJORS[op] << 11) | (instr.imm << 6)
                | (instr.rm << 3) | instr.rd]
    if op in _ADDSUB_SUB:
        field = instr.rm if op in (Op.ADDR, Op.SUBR) else instr.imm
        return [(0b00011 << 11) | (_ADDSUB_SUB[op] << 9) | (field << 6)
                | (instr.rn << 3) | instr.rd]
    if op in _IMM8_MAJORS:
        return [(_IMM8_MAJORS[op] << 11) | (instr.rd << 8) | instr.imm]
    if op in ALU_INDEX:
        return [(0b01000 << 11) | (ALU_INDEX[op] << 6)
                | (instr.rm << 3) | instr.rd]
    if op is Op.MOVR:
        return [(0b01000 << 11) | (1 << 10) | (0 << 6)
                | (instr.rm << 3) | instr.rd]
    if op is Op.BX:
        return [(0b01000 << 11) | (1 << 10) | (1 << 6) | (instr.rm & 0xF)]
    if op in _PCADR_MAJORS:
        imm = instr.imm
        if instr.target is not None and op is Op.LDRPC:
            base = (addr + 4) & ~3
            delta = target_addr() - base
            if delta < 0 or delta % 4:
                raise EncodingError(
                    f"literal at {target_addr():#x} not addressable from "
                    f"{addr:#x}")
            imm = delta
        if imm is None:
            raise EncodingError(f"{op.name} needs an offset or target")
        if imm % 4 or not 0 <= imm <= 1020:
            raise EncodingError(f"bad pc-relative offset {imm}")
        return [(_PCADR_MAJORS[op] << 11) | (instr.rd << 8) | (imm // 4)]
    if op in _STORE_R_SUB:
        return [(0b01010 << 11) | (_STORE_R_SUB[op] << 9) | (instr.rm << 6)
                | (instr.rn << 3) | instr.rd]
    if op in _LOAD_R_SUB:
        return [(0b01011 << 11) | (_LOAD_R_SUB[op] << 9) | (instr.rm << 6)
                | (instr.rn << 3) | instr.rd]
    if op in _MEM_I_MAJORS:
        major, scale = _MEM_I_MAJORS[op]
        return [(major << 11) | ((instr.imm // scale) << 6)
                | (instr.rn << 3) | instr.rd]
    if op in _SP_MAJORS:
        return [(_SP_MAJORS[op] << 11) | (instr.rd << 8) | (instr.imm // 4)]
    if op is Op.ADDSPI:
        return [(0b10101 << 11) | (instr.rd << 8) | (instr.imm // 4)]
    if op is Op.SPADJ:
        words = abs(instr.imm) // 4
        sign = 1 if instr.imm < 0 else 0
        if words > 127:
            raise EncodingError(f"sp adjustment too large: {instr.imm}")
        return [(0b10110 << 11) | (sign << 7) | words]
    if op in (Op.PUSH, Op.POP):
        bits = 0
        for reg in instr.reglist:
            bits |= 1 << reg
        load_bit = 1 if op is Op.POP else 0
        m_bit = 1 if instr.with_link else 0
        return [(0b10111 << 11) | (load_bit << 10) | (m_bit << 8) | bits]
    if op is Op.SWI:
        return [(0b11000 << 11) | instr.imm]
    if op is Op.BCC:
        off = (target_addr() - (addr + 4)) // 2
        return [(0b1101 << 12) | (int(instr.cond) << 8)
                | _fit_signed(off, 8, "conditional branch offset")]
    if op is Op.B:
        off = (target_addr() - (addr + 4)) // 2
        return [(0b11100 << 11) | _fit_signed(off, 11, "branch offset")]
    if op is Op.BL:
        off = (target_addr() - (addr + 4)) // 2
        bits = _fit_signed(off, 22, "call offset")
        return [(0b11101 << 11) | ((bits >> 11) & 0x7FF),
                (0b11110 << 11) | (bits & 0x7FF)]
    if op is Op.NOP:
        return [0b11111 << 11]
    raise EncodingError(f"cannot encode op {op!r}")


def decode(halfword: int, addr: int = 0, next_halfword=None) -> Instr:
    """Decode one instruction starting with *halfword* at *addr*.

    ``BL`` requires *next_halfword* (the suffix).  Branch targets come back
    as resolved absolute addresses in :attr:`Instr.target`; pc-relative
    loads get both ``imm`` (byte offset) and ``target`` (absolute literal
    address).
    """
    if not 0 <= halfword <= 0xFFFF:
        raise IllegalInstruction(halfword, addr)
    major = halfword >> 11

    if (halfword >> 12) == 0b1101:
        cond_bits = (halfword >> 8) & 0xF
        if cond_bits >= 14:
            raise IllegalInstruction(halfword, addr)
        off = _signed(halfword & 0xFF, 8) * 2
        return Instr(Op.BCC, cond=Cond(cond_bits), target=addr + 4 + off)

    if major in (0b00000, 0b00001, 0b00010):
        op = (Op.LSLI, Op.LSRI, Op.ASRI)[major]
        return Instr(op, rd=halfword & 7, rm=(halfword >> 3) & 7,
                     imm=(halfword >> 6) & 31)
    if major == 0b00011:
        sub = (halfword >> 9) & 3
        field = (halfword >> 6) & 7
        rn = (halfword >> 3) & 7
        rd = halfword & 7
        if sub == 0:
            return Instr(Op.ADDR, rd=rd, rn=rn, rm=field)
        if sub == 1:
            return Instr(Op.SUBR, rd=rd, rn=rn, rm=field)
        if sub == 2:
            return Instr(Op.ADD3, rd=rd, rn=rn, imm=field)
        return Instr(Op.SUB3, rd=rd, rn=rn, imm=field)
    if major in (0b00100, 0b00101, 0b00110, 0b00111):
        op = (Op.MOVI, Op.CMPI, Op.ADDI, Op.SUBI)[major - 0b00100]
        return Instr(op, rd=(halfword >> 8) & 7, imm=halfword & 0xFF)
    if major == 0b01000:
        if halfword & (1 << 10):
            sub = (halfword >> 6) & 0xF
            if sub == 0:
                return Instr(Op.MOVR, rd=halfword & 7,
                             rm=(halfword >> 3) & 7)
            if sub == 1:
                return Instr(Op.BX, rm=halfword & 0xF)
            raise IllegalInstruction(halfword, addr)
        sub = (halfword >> 6) & 0xF
        return Instr(ALU_ORDER[sub], rd=halfword & 7,
                     rm=(halfword >> 3) & 7)
    if major == 0b01001:
        offset = (halfword & 0xFF) * 4
        return Instr(Op.LDRPC, rd=(halfword >> 8) & 7, imm=offset,
                     target=((addr + 4) & ~3) + offset)
    if major == 0b01010:
        ops = (Op.STRW_R, Op.STRH_R, Op.STRB_R, Op.LDRSB_R)
        return Instr(ops[(halfword >> 9) & 3], rd=halfword & 7,
                     rn=(halfword >> 3) & 7, rm=(halfword >> 6) & 7)
    if major == 0b01011:
        ops = (Op.LDRW_R, Op.LDRH_R, Op.LDRB_R, Op.LDRSH_R)
        return Instr(ops[(halfword >> 9) & 3], rd=halfword & 7,
                     rn=(halfword >> 3) & 7, rm=(halfword >> 6) & 7)
    if major in (m for m, _s in _MEM_I_MAJORS.values()):
        for op, (m, scale) in _MEM_I_MAJORS.items():
            if m == major:
                return Instr(op, rd=halfword & 7, rn=(halfword >> 3) & 7,
                             imm=((halfword >> 6) & 31) * scale)
    if major in (0b10010, 0b10011):
        op = Op.STRSP if major == 0b10010 else Op.LDRSP
        return Instr(op, rd=(halfword >> 8) & 7, imm=(halfword & 0xFF) * 4)
    if major == 0b10100:
        offset = (halfword & 0xFF) * 4
        return Instr(Op.ADDPC, rd=(halfword >> 8) & 7, imm=offset)
    if major == 0b10101:
        return Instr(Op.ADDSPI, rd=(halfword >> 8) & 7,
                     imm=(halfword & 0xFF) * 4)
    if major == 0b10110:
        words = halfword & 0x7F
        sign = -1 if halfword & (1 << 7) else 1
        return Instr(Op.SPADJ, imm=sign * words * 4)
    if major == 0b10111:
        reglist = tuple(r for r in range(8) if halfword & (1 << r))
        with_link = bool(halfword & (1 << 8))
        op = Op.POP if halfword & (1 << 10) else Op.PUSH
        return Instr(op, reglist=reglist, with_link=with_link)
    if major == 0b11000:
        return Instr(Op.SWI, imm=halfword & 0xFF)
    if major == 0b11100:
        off = _signed(halfword & 0x7FF, 11) * 2
        return Instr(Op.B, target=addr + 4 + off)
    if major == 0b11101:
        if next_halfword is None or (next_halfword >> 11) != 0b11110:
            raise IllegalInstruction(halfword, addr)
        bits = ((halfword & 0x7FF) << 11) | (next_halfword & 0x7FF)
        off = _signed(bits, 22) * 2
        return Instr(Op.BL, target=addr + 4 + off)
    if major == 0b11110:
        raise IllegalInstruction(halfword, addr)  # stray BL suffix
    if major == 0b11111:
        if halfword == (0b11111 << 11):
            return Instr(Op.NOP)
        raise IllegalInstruction(halfword, addr)
    raise IllegalInstruction(halfword, addr)
