"""Opcode and condition-code definitions for the T16 instruction set.

T16 is a THUMB-like 16-bit instruction set: all instructions occupy one
16-bit halfword except ``BL``, which (as in THUMB) is encoded as a
prefix/suffix halfword pair and is treated as a single 4-byte instruction by
the assembler, simulator and WCET analyser.

The set is deliberately small but complete enough to compile real C-style
programs: three-address add/sub, immediate ALU forms, the THUMB two-address
ALU group, load/store with immediate and register offsets for 8/16/32-bit
data, SP-relative and PC-relative (literal pool) accesses, PUSH/POP,
conditional branches, BL/BX and SWI.
"""

from __future__ import annotations

import enum


class Op(enum.IntEnum):
    """T16 operations (post-decode, one per executable behaviour)."""

    # Shifts by immediate.
    LSLI = enum.auto()
    LSRI = enum.auto()
    ASRI = enum.auto()
    # Three-address add/subtract.
    ADDR = enum.auto()   # rd = rn + rm
    SUBR = enum.auto()   # rd = rn - rm
    ADD3 = enum.auto()   # rd = rn + imm3
    SUB3 = enum.auto()   # rd = rn - imm3
    # Immediate move/compare/add/sub (8-bit immediate).
    MOVI = enum.auto()
    CMPI = enum.auto()
    ADDI = enum.auto()
    SUBI = enum.auto()
    # Two-address ALU group (THUMB data-processing).
    AND = enum.auto()
    EOR = enum.auto()
    LSL = enum.auto()
    LSR = enum.auto()
    ASR = enum.auto()
    ADC = enum.auto()
    SBC = enum.auto()
    ROR = enum.auto()
    TST = enum.auto()
    NEG = enum.auto()
    CMP = enum.auto()
    CMN = enum.auto()
    ORR = enum.auto()
    MUL = enum.auto()
    BIC = enum.auto()
    MVN = enum.auto()
    # Register move / branch-exchange.
    MOVR = enum.auto()   # rd = rm (sets NZ)
    BX = enum.auto()     # pc = rm
    # PC-relative literal load and address generation.
    LDRPC = enum.auto()  # rd = mem32[align4(pc + 4) + imm8 * 4]
    ADDPC = enum.auto()  # rd = align4(pc + 4) + imm8 * 4
    # SP-relative load/store and address generation.
    LDRSP = enum.auto()
    STRSP = enum.auto()
    ADDSPI = enum.auto()  # rd = sp + imm8 * 4
    SPADJ = enum.auto()   # sp = sp + simm (multiple of 4)
    # Register-offset load/store.
    STRW_R = enum.auto()
    STRH_R = enum.auto()
    STRB_R = enum.auto()
    LDRSB_R = enum.auto()
    LDRW_R = enum.auto()
    LDRH_R = enum.auto()
    LDRB_R = enum.auto()
    LDRSH_R = enum.auto()
    # Immediate-offset load/store.
    STRWI = enum.auto()  # [rn + imm5 * 4]
    LDRWI = enum.auto()
    STRBI = enum.auto()  # [rn + imm5]
    LDRBI = enum.auto()
    STRHI = enum.auto()  # [rn + imm5 * 2]
    LDRHI = enum.auto()
    # Stack multiple.
    PUSH = enum.auto()
    POP = enum.auto()
    # Control flow.
    BCC = enum.auto()    # conditional branch
    B = enum.auto()      # unconditional branch
    BL = enum.auto()     # branch with link (4 bytes)
    SWI = enum.auto()    # software interrupt (system call)
    NOP = enum.auto()


class Cond(enum.IntEnum):
    """Branch condition codes (ARM semantics)."""

    EQ = 0   # Z
    NE = 1   # !Z
    HS = 2   # C          (unsigned >=)
    LO = 3   # !C         (unsigned <)
    MI = 4   # N
    PL = 5   # !N
    VS = 6   # V
    VC = 7   # !V
    HI = 8   # C and !Z   (unsigned >)
    LS = 9   # !C or Z    (unsigned <=)
    GE = 10  # N == V
    LT = 11  # N != V
    GT = 12  # !Z and N == V
    LE = 13  # Z or N != V
    AL = 14  # always


#: Condition-code inverses (for branch relaxation and codegen).
COND_INVERSE = {
    Cond.EQ: Cond.NE, Cond.NE: Cond.EQ, Cond.HS: Cond.LO, Cond.LO: Cond.HS,
    Cond.MI: Cond.PL, Cond.PL: Cond.MI, Cond.VS: Cond.VC, Cond.VC: Cond.VS,
    Cond.HI: Cond.LS, Cond.LS: Cond.HI, Cond.GE: Cond.LT, Cond.LT: Cond.GE,
    Cond.GT: Cond.LE, Cond.LE: Cond.GT,
}

#: Two-address ALU opcodes in their THUMB encoding order (sub-opcode index).
ALU_ORDER = (
    Op.AND, Op.EOR, Op.LSL, Op.LSR, Op.ASR, Op.ADC, Op.SBC, Op.ROR,
    Op.TST, Op.NEG, Op.CMP, Op.CMN, Op.ORR, Op.MUL, Op.BIC, Op.MVN,
)

ALU_INDEX = {op: i for i, op in enumerate(ALU_ORDER)}

#: Ops that read memory (data side), with access width in bytes.
LOAD_WIDTH = {
    Op.LDRPC: 4, Op.LDRSP: 4,
    Op.LDRW_R: 4, Op.LDRH_R: 2, Op.LDRB_R: 1,
    Op.LDRSH_R: 2, Op.LDRSB_R: 1,
    Op.LDRWI: 4, Op.LDRHI: 2, Op.LDRBI: 1,
}

#: Ops that write memory (data side), with access width in bytes.
STORE_WIDTH = {
    Op.STRSP: 4,
    Op.STRW_R: 4, Op.STRH_R: 2, Op.STRB_R: 1,
    Op.STRWI: 4, Op.STRHI: 2, Op.STRBI: 1,
}

#: Ops that terminate a basic block.
BRANCH_OPS = frozenset({Op.BCC, Op.B, Op.BL, Op.BX, Op.SWI})

#: Ops whose Instr.size is 4 bytes instead of 2.
FOUR_BYTE_OPS = frozenset({Op.BL})
