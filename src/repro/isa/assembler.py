"""Two-pass text assembler for T16.

The assembler exists for tests, examples and the hand-written parts of the
runtime; the mini-C compiler emits :class:`~repro.isa.instruction.Instr`
objects directly.  Syntax follows the disassembler's output, one statement
per line::

    loop:   add r0, r0, r1
            sub r2, #1
            bne loop
            .word 0x12345678
            .align 4

Supported directives: ``.word``, ``.half``, ``.byte``, ``.align``,
``.space``.  Labels end with a colon and may share a line with a statement.
"""

from __future__ import annotations

import re

from . import instruction as ins
from .encoding import EncodingError, encode
from .opcodes import Cond, Op
from .registers import parse_reg


class AsmError(Exception):
    """Syntax or semantic error in assembly text."""

    def __init__(self, message, line_no=None):
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)


class Label:
    """A position marker inside an assembled item stream."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return f"<Label {self.name}>"


class Data:
    """Raw bytes (constants, tables) inside an item stream."""

    __slots__ = ("payload", "align")

    def __init__(self, payload, align=1):
        self.payload = bytes(payload)
        self.align = align

    def __repr__(self):
        return f"<Data {len(self.payload)}B align={self.align}>"


class Align:
    """Alignment request inside an item stream."""

    __slots__ = ("boundary",)

    def __init__(self, boundary):
        self.boundary = boundary


class WordRef:
    """A 32-bit data word holding ``address_of(symbol) + addend``.

    Used for literal-pool entries that refer to linker-placed objects
    (the moral equivalent of a data relocation).
    """

    __slots__ = ("symbol", "addend")

    align = 4

    def __init__(self, symbol, addend=0):
        self.symbol = symbol
        self.addend = addend

    def resolve_payload(self, resolve) -> bytes:
        value = (resolve(self.symbol) + self.addend) & 0xFFFFFFFF
        return value.to_bytes(4, "little")

    def __repr__(self):
        if self.addend:
            return f"<WordRef {self.symbol}+{self.addend}>"
        return f"<WordRef {self.symbol}>"


_MEM_RE = re.compile(
    r"^\[\s*(?P<base>\w+)\s*(?:,\s*(?:#(?P<imm>-?\w+)|(?P<rm>\w+)))?\s*\]$")

_COND_SUFFIXES = {c.name.lower(): c for c in Cond if c is not Cond.AL}


def _parse_imm(text, line_no):
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AsmError(f"bad immediate {text!r}", line_no) from exc


def _split_operands(rest):
    """Split an operand string at top-level commas ('{..}' and '[..]' nest)."""
    parts, depth, current = [], 0, []
    for char in rest:
        if char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Assembler:
    """Assembles text into an item stream and then into bytes."""

    def __init__(self):
        self.items = []

    # -- pass 1: parse -----------------------------------------------------

    def parse(self, text: str) -> list:
        """Parse assembly *text* into a list of Label/Instr/Data items."""
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.split(";")[0].split("@")[0].strip()
            if not line:
                continue
            while True:
                match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
                if not match:
                    break
                self.items.append(Label(match.group(1)))
                line = match.group(2).strip()
            if not line:
                continue
            if line.startswith("."):
                self._parse_directive(line, line_no)
            else:
                self.items.append(self._parse_instr(line, line_no))
        return self.items

    def _parse_directive(self, line, line_no):
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".align":
            self.items.append(Align(_parse_imm(rest, line_no)))
        elif name == ".space":
            self.items.append(Data(b"\0" * _parse_imm(rest, line_no)))
        elif name in (".word", ".half", ".byte"):
            width = {".word": 4, ".half": 2, ".byte": 1}[name]
            payload = bytearray()
            for field in _split_operands(rest):
                try:
                    value = int(field, 0)
                except ValueError:
                    if width != 4:
                        raise AsmError(
                            f"symbol reference needs .word: {field!r}",
                            line_no) from None
                    if payload:
                        self.items.append(Data(payload, align=width))
                        payload = bytearray()
                    self.items.append(WordRef(field))
                    continue
                payload += (value & ((1 << (8 * width)) - 1)).to_bytes(
                    width, "little")
            if payload:
                self.items.append(Data(payload, align=width))
        else:
            raise AsmError(f"unknown directive {name}", line_no)

    def _parse_instr(self, line, line_no):
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        ops = _split_operands(rest)
        try:
            return self._build(mnem, ops, line_no)
        except (ValueError, EncodingError) as exc:
            raise AsmError(str(exc), line_no) from exc

    def _build(self, mnem, ops, line_no):
        def reg(i):
            return parse_reg(ops[i])

        def imm(i):
            if not ops[i].startswith("#"):
                raise AsmError(f"expected immediate, got {ops[i]!r}", line_no)
            return _parse_imm(ops[i][1:], line_no)

        if mnem == "nop":
            return ins.nop()
        if mnem == "swi":
            return ins.swi(imm(0))
        if mnem == "bx":
            return ins.bx(reg(0))
        if mnem == "bl":
            return ins.bl(ops[0])
        if mnem == "b":
            return ins.b(ops[0])
        if mnem.startswith("b") and mnem[1:] in _COND_SUFFIXES:
            return ins.bcc(_COND_SUFFIXES[mnem[1:]], ops[0])
        if mnem in ("push", "pop"):
            body = ops[0].strip()
            if not (body.startswith("{") and body.endswith("}")):
                raise AsmError("push/pop need a register list", line_no)
            names = [x.strip() for x in body[1:-1].split(",") if x.strip()]
            regs, extra = [], False
            for name in names:
                index = parse_reg(name)
                if index >= 8:
                    extra = True
                else:
                    regs.append(index)
            if mnem == "push":
                return ins.push(regs, lr=extra)
            return ins.pop(regs, pc=extra)

        if mnem in ("lsl", "lsr", "asr") and len(ops) == 3:
            op = {"lsl": Op.LSLI, "lsr": Op.LSRI, "asr": Op.ASRI}[mnem]
            return ins.shift_i(op, reg(0), parse_reg(ops[1]), imm(2))

        if mnem in ("ldr", "str", "ldrb", "strb", "ldrh", "strh",
                    "ldrsb", "ldrsh"):
            return self._build_mem(mnem, ops, line_no)

        if mnem == "mov":
            if ops[1].startswith("#"):
                return ins.movi(reg(0), imm(1))
            return ins.movr(reg(0), parse_reg(ops[1]))
        if mnem == "cmp":
            if ops[1].startswith("#"):
                return ins.cmpi(reg(0), imm(1))
            return ins.alu(Op.CMP, reg(0), parse_reg(ops[1]))
        if mnem in ("add", "sub"):
            return self._build_addsub(mnem, ops, line_no)

        two_addr = {"and": Op.AND, "eor": Op.EOR, "orr": Op.ORR,
                    "bic": Op.BIC, "mul": Op.MUL, "adc": Op.ADC,
                    "sbc": Op.SBC, "ror": Op.ROR, "tst": Op.TST,
                    "neg": Op.NEG, "cmn": Op.CMN, "mvn": Op.MVN,
                    "lsl": Op.LSL, "lsr": Op.LSR, "asr": Op.ASR}
        if mnem in two_addr and len(ops) == 2:
            return ins.alu(two_addr[mnem], reg(0), parse_reg(ops[1]))
        raise AsmError(f"unknown instruction {mnem!r}", line_no)

    def _build_addsub(self, mnem, ops, line_no):
        rd = parse_reg(ops[0])
        if len(ops) == 2:
            if ops[0].lower() == "sp":
                delta = _parse_imm(ops[1][1:], line_no)
                return ins.sp_adjust(delta if mnem == "add" else -delta)
            value = _parse_imm(ops[1][1:], line_no)
            return ins.addi(rd, value) if mnem == "add" else ins.subi(rd, value)
        base = ops[1].lower()
        if mnem == "add" and base == "sp":
            return ins.add_sp_i(rd, _parse_imm(ops[2][1:], line_no))
        if mnem == "add" and base == "pc":
            return ins.add_pc(rd, _parse_imm(ops[2][1:], line_no))
        rn = parse_reg(ops[1])
        if ops[2].startswith("#"):
            value = _parse_imm(ops[2][1:], line_no)
            factory = ins.add3 if mnem == "add" else ins.sub3
            return factory(rd, rn, value)
        rm = parse_reg(ops[2])
        factory = ins.add_r if mnem == "add" else ins.sub_r
        return factory(rd, rn, rm)

    def _build_mem(self, mnem, ops, line_no):
        rd = parse_reg(ops[0])
        addr_text = ops[1].strip()
        if mnem == "ldr" and addr_text.startswith("="):
            return ins.ldr_pc(rd, target=addr_text[1:])
        match = _MEM_RE.match(addr_text)
        if not match:
            raise AsmError(f"bad address operand {addr_text!r}", line_no)
        base = match.group("base").lower()
        offs = match.group("imm")
        rm = match.group("rm")
        offset = _parse_imm(offs, line_no) if offs else 0
        if base == "sp":
            factory = ins.ldr_sp if mnem == "ldr" else ins.str_sp
            if mnem not in ("ldr", "str"):
                raise AsmError("only word access allowed via sp", line_no)
            return factory(rd, offset)
        if base == "pc":
            if mnem != "ldr":
                raise AsmError("only ldr allowed via pc", line_no)
            return ins.ldr_pc(rd, byte_offset=offset)
        rn = parse_reg(base)
        if rm is not None:
            reg_ops = {"ldr": Op.LDRW_R, "str": Op.STRW_R,
                       "ldrh": Op.LDRH_R, "strh": Op.STRH_R,
                       "ldrb": Op.LDRB_R, "strb": Op.STRB_R,
                       "ldrsh": Op.LDRSH_R, "ldrsb": Op.LDRSB_R}
            return ins.mem_r(reg_ops[mnem], rd, rn, parse_reg(rm))
        imm_ops = {"ldr": Op.LDRWI, "str": Op.STRWI, "ldrh": Op.LDRHI,
                   "strh": Op.STRHI, "ldrb": Op.LDRBI, "strb": Op.STRBI}
        if mnem not in imm_ops:
            raise AsmError(f"{mnem} requires a register offset", line_no)
        return ins.mem_i(imm_ops[mnem], rd, rn, offset)


def layout_items(items, base_addr=0):
    """Assign addresses to an item stream (pass A of assembly).

    Returns ``(placed, symbols, size)``: *placed* is a list of
    ``(addr, item)`` pairs (padding materialised as :class:`Data`),
    *symbols* maps locally defined labels to absolute addresses, *size* is
    the total byte size.  Layout never depends on symbol values, so it can
    run before any symbol is resolved — this is what lets the linker size
    sections first and place them second.
    """
    symbols = {}
    addr = base_addr
    placed = []

    def pad_to(align):
        nonlocal addr
        pad = (-addr) % align
        if pad:
            placed.append((addr, Data(b"\0" * pad)))
            addr += pad

    for item in items:
        if isinstance(item, Label):
            symbols[item.name] = addr
        elif isinstance(item, Align):
            pad_to(item.boundary)
        elif isinstance(item, WordRef):
            pad_to(4)
            placed.append((addr, item))
            addr += 4
        elif isinstance(item, Data):
            pad_to(item.align)
            placed.append((addr, item))
            addr += len(item.payload)
        else:  # instruction
            pad_to(2)
            placed.append((addr, item))
            addr += item.size
    return placed, symbols, addr - base_addr


def encode_placed(placed, resolve):
    """Encode a placed item stream (pass B).  Returns raw bytes."""
    blob = bytearray()
    expected = placed[0][0] if placed else 0
    for item_addr, item in placed:
        assert item_addr == expected, "layout/encode address drift"
        if isinstance(item, WordRef):
            payload = item.resolve_payload(resolve)
        elif isinstance(item, Data):
            payload = item.payload
        else:
            payload = bytearray()
            for halfword in encode(item, item_addr, resolve):
                payload += halfword.to_bytes(2, "little")
        blob += payload
        expected = item_addr + len(payload)
    return bytes(blob)


def relax_branches(items, prefix="relax"):
    """Rewrite out-of-range conditional branches (THUMB-style relaxation).

    A ``bcc target`` whose offset exceeds the signed-8 encoding becomes::

        b<inv-cc> .L<prefix>_rx<n>
        b target
        .L<prefix>_rx<n>:

    Layout is iterated until stable, since each rewrite grows the code and
    may push other branches out of range.  *prefix* keeps the generated
    labels unique when several item streams are later linked together.
    """
    from .instruction import Instr
    from .opcodes import COND_INVERSE, Op

    items = list(items)
    counter = 0
    while True:
        placed, symbols, _size = layout_items(items, 0)
        addr_of = {id(item): addr for addr, item in placed}
        new_items = []
        changed = False
        for item in items:
            if (isinstance(item, Instr) and item.op is Op.BCC
                    and isinstance(item.target, str)
                    and item.target in symbols):
                offset = (symbols[item.target]
                          - (addr_of[id(item)] + 4)) // 2
                if not -128 <= offset <= 127:
                    counter += 1
                    skip = f".L{prefix}_rx{counter}"
                    new_items.append(Instr(Op.BCC,
                                           cond=COND_INVERSE[item.cond],
                                           target=skip))
                    new_items.append(Instr(Op.B, target=item.target))
                    new_items.append(Label(skip))
                    changed = True
                    continue
            new_items.append(item)
        items = new_items
        if not changed:
            return items


def assemble_items(items, base_addr=0, extern=None):
    """Lay out and encode an item stream.

    Returns ``(code_bytes, symbols)`` where *symbols* maps label names to
    absolute addresses.  *extern* resolves symbols not defined locally.
    """
    placed, symbols, _size = layout_items(items, base_addr)

    def resolve(name):
        if name in symbols:
            return symbols[name]
        if extern is not None:
            value = extern(name)
            if value is not None:
                return value
        raise EncodingError(f"undefined symbol {name!r}")

    return encode_placed(placed, resolve), symbols


def assemble(text, base_addr=0, extern=None):
    """Assemble *text*; returns ``(code_bytes, symbols)``."""
    items = Assembler().parse(text)
    return assemble_items(items, base_addr, extern)
