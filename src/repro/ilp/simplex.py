"""Dense two-phase primal simplex.

Standard-form solver used for every LP in the package (IPET longest-path
LPs, knapsack relaxations).  The problems are small (tens to a few hundred
variables), so a dense numpy tableau with Bland's anti-cycling rule is both
simple and dependable.  Results are cross-checked against
``scipy.optimize.linprog`` in the test suite.

Formulation accepted by :func:`solve_lp`::

    minimise    c @ x
    subject to  a_ub @ x <= b_ub
                a_eq @ x == b_eq
                lo <= x <= hi   (lo finite; hi may be +inf)

Internally variables are shifted to x' = x - lo >= 0 and finite upper
bounds become extra <= rows.
"""

from __future__ import annotations

import math

try:  # the LP solver needs numpy; importing the package must not
    import numpy as np
except ImportError:  # pragma: no cover - the numpy-less CI job
    np = None

from .model import EQ, GE, LE, Model, Solution, Status

_EPS = 1e-9
_BLAND_TRIGGER = 200  # fall back to Bland's rule after this many pivots


class _Tableau:
    """Simplex tableau: rows = constraints (+objective row last)."""

    def __init__(self, a, b, c):
        m, n = a.shape
        self.m, self.n = m, n
        self.t = np.zeros((m + 1, n + 1))
        self.t[:m, :n] = a
        self.t[:m, n] = b
        self.t[m, :n] = c
        self.basis = [-1] * m

    def pivot(self, row, col):
        t = self.t
        t[row] /= t[row, col]
        factors = t[:, col].copy()
        factors[row] = 0.0
        t -= np.outer(factors, t[row])
        t[:, col] = 0.0
        t[row, col] = 1.0
        self.basis[row] = col

    def run(self, max_iter=20000):
        """Optimise; returns a Status string."""
        t = self.t
        m, n = self.m, self.n
        for iteration in range(max_iter):
            costs = t[m, :n]
            if iteration < _BLAND_TRIGGER:
                col = int(np.argmin(costs))
                if costs[col] >= -_EPS:
                    return Status.OPTIMAL
            else:  # Bland: smallest index with negative reduced cost
                negatives = np.nonzero(costs < -_EPS)[0]
                if negatives.size == 0:
                    return Status.OPTIMAL
                col = int(negatives[0])
            column = t[:m, col]
            positive = column > _EPS
            if not positive.any():
                return Status.UNBOUNDED
            ratios = np.full(m, math.inf)
            ratios[positive] = t[:m, n][positive] / column[positive]
            if iteration < _BLAND_TRIGGER:
                row = int(np.argmin(ratios))
            else:  # Bland tie-break on smallest basis index
                best = ratios.min()
                ties = [r for r in range(m)
                        if ratios[r] <= best + _EPS]
                row = min(ties, key=lambda r: self.basis[r])
            self.pivot(row, col)
        return Status.ITERATION_LIMIT


def solve_lp(c, a_ub=None, b_ub=None, a_eq=None, b_eq=None, bounds=None,
             maximize=False):
    """Solve an LP; returns ``(status, x, objective)``.

    *bounds* is a list of ``(lo, hi)`` per variable; default ``(0, inf)``.
    """
    if np is None:
        raise RuntimeError("the LP solver requires numpy")
    c = np.asarray(c, dtype=float)
    n = c.size
    a_ub = np.zeros((0, n)) if a_ub is None else np.asarray(a_ub, float)
    b_ub = np.zeros(0) if b_ub is None else np.asarray(b_ub, float)
    a_eq = np.zeros((0, n)) if a_eq is None else np.asarray(a_eq, float)
    b_eq = np.zeros(0) if b_eq is None else np.asarray(b_eq, float)
    if bounds is None:
        bounds = [(0.0, math.inf)] * n
    lo = np.array([b[0] for b in bounds], dtype=float)
    hi = np.array([b[1] for b in bounds], dtype=float)
    if not np.all(np.isfinite(lo)):
        raise ValueError("all lower bounds must be finite")
    if np.any(lo > hi):
        return Status.INFEASIBLE, None, math.nan

    sign = -1.0 if maximize else 1.0
    c_work = sign * c

    # Shift x = lo + y, y >= 0.
    b_ub_s = b_ub - a_ub @ lo if a_ub.size else b_ub
    b_eq_s = b_eq - a_eq @ lo if a_eq.size else b_eq
    shift_obj = float(c_work @ lo)

    # Finite upper bounds -> y_i <= hi_i - lo_i rows.
    ub_rows = []
    ub_rhs = []
    for i in range(n):
        if math.isfinite(hi[i]):
            row = np.zeros(n)
            row[i] = 1.0
            ub_rows.append(row)
            ub_rhs.append(hi[i] - lo[i])
    if ub_rows:
        a_ub_s = np.vstack([a_ub, np.array(ub_rows)]) if a_ub.size else \
            np.array(ub_rows)
        b_ub_s = np.concatenate([b_ub_s, np.array(ub_rhs)])
    else:
        a_ub_s = a_ub

    m_ub = a_ub_s.shape[0]
    m_eq = a_eq.shape[0]
    m = m_ub + m_eq

    # Rows with negative rhs are negated so b >= 0 (flips <= to >=, which
    # then needs a surplus + artificial; handled uniformly below).
    # Build the phase-1 tableau with slacks for <=, surplus+artificial for
    # >= (post-negation) and artificials for ==.
    rows = []
    rhs = []
    senses = []
    for i in range(m_ub):
        row = a_ub_s[i].copy()
        b_val = b_ub_s[i]
        if b_val < 0:
            rows.append(-row)
            rhs.append(-b_val)
            senses.append(GE)
        else:
            rows.append(row)
            rhs.append(b_val)
            senses.append(LE)
    for i in range(m_eq):
        row = a_eq[i].copy()
        b_val = b_eq_s[i]
        if b_val < 0:
            rows.append(-row)
            rhs.append(-b_val)
        else:
            rows.append(row)
            rhs.append(b_val)
        senses.append(EQ)

    n_slack = sum(1 for s in senses if s in (LE, GE))
    n_art = sum(1 for s in senses if s in (GE, EQ))
    total = n + n_slack + n_art

    a_full = np.zeros((m, total))
    art_cols = []
    slack_cursor = n
    art_cursor = n + n_slack
    for i, sense in enumerate(senses):
        a_full[i, :n] = rows[i]
        if sense == LE:
            a_full[i, slack_cursor] = 1.0
            slack_cursor += 1
        elif sense == GE:
            a_full[i, slack_cursor] = -1.0
            slack_cursor += 1
            a_full[i, art_cursor] = 1.0
            art_cols.append((i, art_cursor))
            art_cursor += 1
        else:
            a_full[i, art_cursor] = 1.0
            art_cols.append((i, art_cursor))
            art_cursor += 1
    b_full = np.asarray(rhs, dtype=float)

    # ---- phase 1: drive artificials to zero --------------------------------
    if art_cols:
        c1 = np.zeros(total)
        for _row, col in art_cols:
            c1[col] = 1.0
        tab = _Tableau(a_full, b_full, c1)
        # Initial basis: slacks for LE rows, artificials elsewhere.
        slack_cursor = n
        art_iter = iter(art_cols)
        for i, sense in enumerate(senses):
            if sense == LE:
                tab.basis[i] = slack_cursor
                slack_cursor += 1
            else:
                if sense == GE:
                    slack_cursor += 1
                tab.basis[i] = next(art_iter)[1]
        # Price out the initial basis in the cost row.
        for i in range(m):
            if c1[tab.basis[i]]:
                tab.t[tab.m] -= tab.t[i] * c1[tab.basis[i]]
        status = tab.run()
        if status != Status.OPTIMAL:
            return Status.INFEASIBLE, None, math.nan
        if -tab.t[tab.m, -1] > 1e-7:
            return Status.INFEASIBLE, None, math.nan
        # Pivot any artificial still in the basis out (degenerate rows).
        art_set = {col for _row, col in art_cols}
        for i in range(m):
            if tab.basis[i] in art_set:
                row_vals = tab.t[i, :n + n_slack]
                candidates = np.nonzero(np.abs(row_vals) > _EPS)[0]
                if candidates.size:
                    tab.pivot(i, int(candidates[0]))
        keep = n + n_slack
        a2 = np.zeros((m, keep))
        a2[:, :] = tab.t[:m, :keep]
        b2 = tab.t[:m, -1].copy()
        basis = [bi if bi < keep else -1 for bi in tab.basis]
    else:
        a2 = a_full
        b2 = b_full
        keep = total
        basis = list(range(n, n + n_slack))

    # ---- phase 2: original objective -----------------------------------------
    c2 = np.zeros(keep)
    c2[:n] = c_work
    tab = _Tableau(a2, b2, c2)
    tab.basis = basis
    for i in range(m):
        if tab.basis[i] >= 0 and c2[tab.basis[i]]:
            tab.t[tab.m] -= tab.t[i] * c2[tab.basis[i]]
    status = tab.run()
    if status == Status.UNBOUNDED:
        return Status.UNBOUNDED, None, math.nan
    if status != Status.OPTIMAL:
        return status, None, math.nan

    y = np.zeros(keep)
    for i in range(m):
        if tab.basis[i] >= 0:
            y[tab.basis[i]] = tab.t[i, -1]
    x = y[:n] + lo
    objective = float(c @ x)
    return Status.OPTIMAL, x, objective


def solve_lp_model(model: Model) -> Solution:
    """Solve a :class:`~repro.ilp.model.Model` as a pure LP."""
    if np is None:
        raise RuntimeError("the LP solver requires numpy")
    n = len(model.vars)
    c = np.zeros(n)
    for index, coef in model.objective.items():
        c[index] = coef
    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for coeffs, sense, rhs in model.constraints:
        row = np.zeros(n)
        for index, coef in coeffs.items():
            row[index] = coef
        if sense == LE:
            a_ub.append(row)
            b_ub.append(rhs)
        elif sense == GE:
            a_ub.append(-row)
            b_ub.append(-rhs)
        else:
            a_eq.append(row)
            b_eq.append(rhs)
    bounds = [(v.lo, v.hi) for v in model.vars]
    status, x, objective = solve_lp(
        c,
        np.array(a_ub) if a_ub else None,
        np.array(b_ub) if b_ub else None,
        np.array(a_eq) if a_eq else None,
        np.array(b_eq) if b_eq else None,
        bounds,
        maximize=model.maximize,
    )
    if status != Status.OPTIMAL:
        return Solution(status=status)
    values = {v.name: float(x[v.index]) for v in model.vars}
    return Solution(status=status, objective=objective, values=values)
