"""Exact (I)LP solving: two-phase simplex + branch & bound (CPLEX role)."""

from .model import EQ, GE, LE, Model, Solution, Status, Var
from .simplex import solve_lp, solve_lp_model
from .branch_bound import solve_ilp

__all__ = [
    "EQ", "GE", "LE", "Model", "Solution", "Status", "Var",
    "solve_lp", "solve_lp_model", "solve_ilp",
]
