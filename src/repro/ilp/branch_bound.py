"""Branch & bound on top of the simplex LP relaxation.

Depth-first with best-bound pruning.  The ILPs in this package (0/1
knapsack, IPET flow problems) have strong LP relaxations — IPET constraint
matrices are network-flow-like and usually integral — so the tree stays
tiny; the solver nevertheless handles general bounded integer programs.
"""

from __future__ import annotations

import math

from .model import Model, Solution, Status
from .simplex import solve_lp_model

_INT_TOL = 1e-6


def _fractional_var(model, values):
    """Pick the integer variable whose value is most fractional."""
    worst = None
    worst_frac = _INT_TOL
    for var in model.vars:
        if not var.integer:
            continue
        value = values[var.name]
        frac = abs(value - round(value))
        if frac > worst_frac:
            worst_frac = frac
            worst = var
    return worst


def _with_bounds(model, overrides):
    """Clone *model* with per-variable (lo, hi) overrides applied."""
    clone = Model(model.name, model.maximize)
    for var in model.vars:
        lo, hi = overrides.get(var.index, (var.lo, var.hi))
        clone.add_var(var.name, lo=lo, hi=hi, integer=var.integer)
    clone.constraints = list(model.constraints)
    clone.objective = dict(model.objective)
    return clone


def solve_ilp(model: Model, max_nodes=20000) -> Solution:
    """Solve *model* to integer optimality by branch & bound."""
    incumbent = None
    incumbent_obj = -math.inf if model.maximize else math.inf

    def better(a, b):
        return a > b + 1e-9 if model.maximize else a < b - 1e-9

    stack = [{}]  # bound-override dicts
    nodes = 0
    root_infeasible = True

    while stack and nodes < max_nodes:
        overrides = stack.pop()
        nodes += 1
        relaxed = _with_bounds(model, overrides)
        solution = solve_lp_model(relaxed)
        if solution.status == Status.UNBOUNDED and nodes == 1:
            return Solution(status=Status.UNBOUNDED)
        if not solution.is_optimal:
            continue
        root_infeasible = False
        if incumbent is not None and not better(solution.objective,
                                                incumbent_obj):
            continue  # bound: relaxation can't beat the incumbent
        branch_var = _fractional_var(model, solution.values)
        if branch_var is None:
            # Integral: round off float fuzz and accept.
            values = {
                v.name: (round(solution.values[v.name]) if v.integer
                         else solution.values[v.name])
                for v in model.vars
            }
            if incumbent is None or better(solution.objective,
                                           incumbent_obj):
                incumbent = Solution(status=Status.OPTIMAL,
                                     objective=solution.objective,
                                     values=values)
                incumbent_obj = solution.objective
            continue
        value = solution.values[branch_var.name]
        lo, hi = overrides.get(branch_var.index,
                               (branch_var.lo, branch_var.hi))
        down = dict(overrides)
        down[branch_var.index] = (lo, math.floor(value))
        up = dict(overrides)
        up[branch_var.index] = (math.ceil(value), hi)
        stack.append(down)
        stack.append(up)

    if incumbent is not None:
        return incumbent
    if nodes >= max_nodes and not root_infeasible:
        return Solution(status=Status.ITERATION_LIMIT)
    return Solution(status=Status.INFEASIBLE)
