"""Declarative (I)LP model builder.

The paper uses a commercial ILP solver (CPLEX) twice: for the knapsack
scratchpad allocation and — inside aiT's IPET stage — for the longest-path
problem.  This package replaces it with a small exact solver: a dense
two-phase simplex (:mod:`repro.ilp.simplex`) under branch & bound
(:mod:`repro.ilp.branch_bound`).

Example::

    model = Model("knapsack", maximize=True)
    x1 = model.add_var("x1", lo=0, hi=1, integer=True)
    x2 = model.add_var("x2", lo=0, hi=1, integer=True)
    model.add_le({x1: 30, x2: 50}, 60)       # capacity
    model.set_objective({x1: 10, x2: 12})
    solution = model.solve()
    assert solution.is_optimal
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


class Status:
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass(frozen=True)
class Var:
    """A decision variable (identified by model index)."""

    index: int
    name: str
    lo: float
    hi: float
    integer: bool

    def __repr__(self):
        return f"<Var {self.name}>"


@dataclass
class Solution:
    """Result of a solve."""

    status: str
    objective: float = math.nan
    values: dict = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status == Status.OPTIMAL

    def value(self, var) -> float:
        return self.values[var.name]

    def __getitem__(self, var):
        return self.values[var.name]


LE, GE, EQ = "<=", ">=", "=="


class Model:
    """A linear program with optional integrality restrictions."""

    def __init__(self, name="model", maximize=False):
        self.name = name
        self.maximize = maximize
        self.vars = []
        self.constraints = []   # (coeffs: {var_index: coef}, sense, rhs)
        self.objective = {}     # var_index -> coefficient

    # -- building -------------------------------------------------------------

    def add_var(self, name, lo=0.0, hi=math.inf, integer=False) -> Var:
        if lo > hi:
            raise ValueError(f"empty domain for {name}: [{lo}, {hi}]")
        if not math.isfinite(lo):
            raise ValueError(f"variable {name} needs a finite lower bound")
        var = Var(index=len(self.vars), name=name, lo=float(lo),
                  hi=float(hi), integer=integer)
        self.vars.append(var)
        return var

    def _coeff_map(self, coeffs):
        out = {}
        for var, coef in coeffs.items():
            if not isinstance(var, Var):
                raise TypeError(f"keys must be Var, got {var!r}")
            if coef:
                out[var.index] = out.get(var.index, 0.0) + float(coef)
        return out

    def add_le(self, coeffs, rhs):
        self.constraints.append((self._coeff_map(coeffs), LE, float(rhs)))

    def add_ge(self, coeffs, rhs):
        self.constraints.append((self._coeff_map(coeffs), GE, float(rhs)))

    def add_eq(self, coeffs, rhs):
        self.constraints.append((self._coeff_map(coeffs), EQ, float(rhs)))

    def set_objective(self, coeffs, maximize=None):
        self.objective = self._coeff_map(coeffs)
        if maximize is not None:
            self.maximize = maximize

    # -- solving ---------------------------------------------------------------

    def solve(self, integer=True) -> Solution:
        """Solve the model (ILP when *integer*, else the LP relaxation)."""
        from .branch_bound import solve_ilp
        from .simplex import solve_lp_model

        if integer and any(v.integer for v in self.vars):
            return solve_ilp(self)
        return solve_lp_model(self)

    # -- introspection -----------------------------------------------------------

    def stats(self) -> str:
        n_int = sum(1 for v in self.vars if v.integer)
        return (f"{self.name}: {len(self.vars)} vars ({n_int} integer), "
                f"{len(self.constraints)} constraints")
