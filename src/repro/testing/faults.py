"""Deterministic, environment-driven fault injection.

The resilience suite (``tests/test_resilience.py``) and the CI
crash-recovery smoke need to break the artifact store and the parallel
experiment runner *on purpose*, reproducibly, and across worker
process boundaries.  Everything here is driven by environment
variables, because environment is the one channel that survives both
``fork`` and ``spawn`` into :func:`repro.experiments.common.
evaluate_points` workers — no monkeypatching of live objects required.

Two injection points exist in production code, both gated on the
variable being set so the cost to a normal run is one ``os.environ``
lookup:

* ``REPRO_FAULT_STORE_WRITE`` — consulted by
  :meth:`repro.store.ArtifactStore.write` before committing an entry.
  Spec ``<kind>@<n>`` triggers on the *n*-th write of each process
  (1-based); ``<kind>@<n>+`` triggers on every write from the *n*-th
  on.  Kinds:

  - ``torn``   — commit a truncated envelope (a torn write that still
    got renamed, e.g. power loss after ``os.replace``);
  - ``enospc`` — raise ``OSError(ENOSPC)`` (disk full);
  - ``erofs``  — raise ``OSError(EROFS)`` (read-only filesystem).

* ``REPRO_FAULT_UNIT`` — consulted at the top of
  :func:`repro.experiments.common._run_unit` and of the serving
  daemon's worker entry (:func:`repro.serve.worker.serve_unit`).  Spec
  ``<action>@<n>[@<once-path>]`` triggers on the *n*-th unit a process
  runs; when *once-path* is given the trigger fires **at most once
  globally** (the first process to atomically create that file wins),
  which is how "crash once, then succeed on retry" is expressed.
  Actions:

  - ``crash`` — ``os._exit(13)``: the worker dies mid-unit, the pool
    breaks;
  - ``hang``  — sleep for an hour: only a per-unit timeout saves the
    sweep;
  - ``raise`` — raise :class:`FaultInjected` (an ordinary in-worker
    task failure, retried with backoff).

A third injection point lives in the serving daemon's connection
layer:

* ``REPRO_FAULT_SERVE`` — consulted by
  :meth:`repro.serve.daemon.ServeDaemon` just before each response is
  written.  Spec ``<kind>@<n>[+]`` counts responses per daemon
  process.  Kinds:

  - ``drop``    — close the connection without responding (the client
    sees EOF and must reconnect and resend);
  - ``stall``   — sleep briefly before responding (a slow network /
    overloaded peer);
  - ``garbage`` — write a non-protocol line before the real response
    (a corrupted stream the client must skip or resync past).

A fourth injection point sits below that, at the daemon's *socket*
transport — the network-chaos layer the cluster tier leans on:

* ``REPRO_FAULT_NET`` — spec ``<kind>@<n>[+]``, counted per daemon
  process (the fork hook below keeps ``@n`` meaningful in forked TCP
  daemons too).  ``refuse`` is consulted per **accepted connection**
  (before authentication); the other kinds per **response write**:

  - ``refuse``    — close the fresh connection immediately, as a dead
    or firewalled listener would;
  - ``partition`` — blackhole: stop writing to this connection but
    hold it open, so the client blocks until its own socket timeout
    (what a partitioned link looks like from user space);
  - ``slow``      — sleep before the write (a congested link);
  - ``reset``     — abort the connection (shutdown + ``SO_LINGER 0``
    close): the peer fails immediately — EOF mid-response or a hard
    TCP RST (``ECONNRESET``) — and any unsent data is dropped.

  Every kind is *survivable by construction* for a failover client:
  the request key is pure, so resending to the same daemon coalesces
  and failing over to a peer recomputes identical bytes.

File-corruption faults need no hooks at all: :func:`corrupt_file` /
:func:`truncate_file` mutate committed store entries directly, which
is exactly what a real bit flip or torn sector looks like to the
reader.

Counters are per-process; :func:`reset_fault_counters` reroots them
between test cases, and an ``os.register_at_fork`` hook reroots them
in every forked child.  The fork hook is what makes ``@<n>`` specs
(and the ``@once-path`` marker) mean the same thing in pool workers
as in a fresh process: a worker forked from a parent that already
consumed trigger counts would otherwise inherit them and count its
own first unit as the parent's *k*-th — so ``crash@1@path`` would
silently never fire in any worker once the parent had run one unit.
"""

from __future__ import annotations

import os
import time

#: Per-process trigger counters, keyed by injection point.
_COUNTS = {"store_write": 0, "unit": 0, "serve": 0, "net": 0}


class FaultInjected(RuntimeError):
    """The error raised by the ``raise`` unit-fault action."""


def reset_fault_counters():
    for key in _COUNTS:
        _COUNTS[key] = 0


if hasattr(os, "register_at_fork"):
    # Every forked child (pool workers above all) counts triggers from
    # zero, exactly like a spawned one; the @once-path file remains the
    # single cross-process at-most-once arbiter.
    os.register_at_fork(after_in_child=reset_fault_counters)


def _parse(spec: str):
    """``(head, n, repeat, extra)`` from ``head@n[+][@extra]``."""
    fields = spec.split("@")
    head = fields[0]
    count = fields[1] if len(fields) > 1 else "1"
    repeat = count.endswith("+")
    extra = fields[2] if len(fields) > 2 else None
    return head, int(count.rstrip("+")), repeat, extra


def _triggers(point: str, n: int, repeat: bool) -> bool:
    _COUNTS[point] += 1
    calls = _COUNTS[point]
    return calls >= n if repeat else calls == n


def _claim_once(path: str) -> bool:
    """Atomically claim a one-shot trigger across processes."""
    try:
        os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def store_write_fault():
    """The fault mode for this store write: torn/enospc/erofs or None.

    Called by :meth:`repro.store.ArtifactStore.write` only when
    ``REPRO_FAULT_STORE_WRITE`` is set.
    """
    spec = os.environ.get("REPRO_FAULT_STORE_WRITE")
    if not spec:
        return None
    kind, n, repeat, _ = _parse(spec)
    if kind not in ("torn", "enospc", "erofs"):
        raise ValueError(f"unknown store-write fault {kind!r}")
    if not _triggers("store_write", n, repeat):
        return None
    return kind


def serve_fault():
    """The fault mode for this daemon response, or None.

    Called by the serving daemon's response writer only when
    ``REPRO_FAULT_SERVE`` is set.
    """
    spec = os.environ.get("REPRO_FAULT_SERVE")
    if not spec:
        return None
    kind, n, repeat, _ = _parse(spec)
    if kind not in ("drop", "stall", "garbage"):
        raise ValueError(f"unknown serve fault {kind!r}")
    if not _triggers("serve", n, repeat):
        return None
    return kind


#: Which :func:`net_fault` stage each ``REPRO_FAULT_NET`` kind fires
#: at.  A spec names one kind, so only that kind's stage consumes the
#: counter — ``refuse@3`` counts accepted connections, ``reset@3``
#: counts response writes — keeping ``@n`` deterministic either way.
_NET_STAGES = {"refuse": "accept", "partition": "send",
               "slow": "send", "reset": "send"}


def net_fault(stage: str):
    """The injected network fault for this transport event, or None.

    Called by the serving daemon's socket layer only when
    ``REPRO_FAULT_NET`` is set: once per accepted connection with
    ``stage="accept"`` and once per response write with
    ``stage="send"``.  Returns the fault kind when the spec's kind
    belongs to *stage* and its trigger count is reached.
    """
    spec = os.environ.get("REPRO_FAULT_NET")
    if not spec:
        return None
    kind, n, repeat, _ = _parse(spec)
    if kind not in _NET_STAGES:
        raise ValueError(f"unknown net fault {kind!r}")
    if _NET_STAGES[kind] != stage:
        return None
    if not _triggers("net", n, repeat):
        return None
    return kind


def unit_fault():
    """Maybe crash/hang/fail the current evaluation unit.

    Called by :func:`repro.experiments.common._run_unit` and
    :func:`repro.serve.worker.serve_unit` only when
    ``REPRO_FAULT_UNIT`` is set.
    """
    spec = os.environ.get("REPRO_FAULT_UNIT")
    if not spec:
        return
    action, n, repeat, once = _parse(spec)
    if action not in ("crash", "hang", "raise"):
        raise ValueError(f"unknown unit fault {action!r}")
    if not _triggers("unit", n, repeat):
        return
    if once is not None and not _claim_once(once):
        return
    if action == "crash":
        os._exit(13)
    if action == "hang":
        time.sleep(3600.0)
    raise FaultInjected(f"injected unit fault ({spec})")


def corrupt_file(path, offset: int = -20):
    """Flip one byte of a committed entry (default: inside the payload)."""
    with open(path, "r+b") as handle:
        handle.seek(offset, os.SEEK_END if offset < 0 else os.SEEK_SET)
        byte = handle.read(1)
        handle.seek(-1, os.SEEK_CUR)
        handle.write(bytes([byte[0] ^ 0xFF]))


def truncate_file(path, keep_fraction: float = 0.5):
    """Truncate a committed entry, as a torn write would leave it."""
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))
