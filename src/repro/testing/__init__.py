"""Reusable test infrastructure (deterministic fault injection)."""

from .faults import (  # noqa: F401
    FaultInjected,
    corrupt_file,
    reset_fault_counters,
    store_write_fault,
    truncate_file,
    unit_fault,
)
