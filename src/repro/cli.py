"""repro-cc: command-line front end for the whole tool stack.

Subcommands (all take a mini-C source file):

* ``run``        — compile, link, simulate; print cycles and console
  (``--record-misses`` switches to the recording engine and reports the
  hottest fetch-miss addresses; ``--engine replay`` records the access
  trace once and re-prices it, bit-identical to ``--engine execute``)
* ``trace``      — record the dynamic access trace and summarise it
  (``--profile`` dumps the trace-cache and replay counters;
  ``--export FILE`` writes the portable text format ``ingest`` reads)
* ``ingest``     — parse a foreign address trace (Pin ``pinatrace`` /
  PredicMem-style CSV / the ``trace --export`` format) and price it
  under any modelled hierarchy, or ``--sweep`` cache sizes in one pass
* ``sweep``      — record the trace once and price a full
  (size × associativity) cache-geometry grid in one replay pass
* ``gen``        — the seeded workload generator (same as ``repro-gen``)
* ``serve``      — the analysis-as-a-service daemon (same as
  ``repro-serve``); ``cache stats --daemon ADDRESS`` (a socket path,
  ``unix:/path`` or ``tcp://host:port`` with ``--auth-key``) queries
  a running daemon's dedup/backpressure/supervision counters
* ``wcet``       — static WCET analysis; print the per-function report
* ``compare``    — the paper's experiment on one program: sim vs. WCET
* ``map``        — placement map (the linker's view)
* ``disasm``     — disassembly listing of the linked image
* ``annotations``— the aiT-style annotation file (Figure 2 format)

Memory-system options shared by all subcommands::

    --spm N [--alloc energy|wcet]   scratchpad of N bytes (knapsack-filled)
    --cache N [--assoc K] [--icache] [--line L]
    --dcache N                      split I/D: --cache is the I side
    --l2 N [--l2-assoc K] [--l2-line L]   unified L2 behind the L1
    --hybrid                        allow --spm AND --cache together
    (neither)                       plain main memory

Examples::

    repro-cc run task.c --spm 1024
    repro-cc sweep task.c --sizes 128,256,512,1024 --assoc 1,2,4
    repro-cc wcet task.c --cache 512 --persistence
    repro-cc compare task.c --spm 512
    repro-cc compare task.c --cache 256 --l2 2048
    repro-cc wcet task.c --cache 256 --dcache 256
    repro-cc run task.c --spm 512 --cache 256 --hybrid
"""

from __future__ import annotations

import argparse
import sys

from .isa.disassembler import format_instr
from .link.linker import link
from .memory.cache import CacheConfig
from .memory.hierarchy import SystemConfig
from .memory.levels import CacheLevel, MainMemoryLevel, SpmLevel
from .minic.frontend import compile_source
from .sim.profile import build_profile
from .sim.simulator import SimError, simulate
from .spm.allocator import allocate_energy_optimal
from .spm.wcet_driven import allocate_wcet_driven
from .wcet.analyzer import analyze_wcet
from .wcet.annotations import format_annotations, generate_annotations
from .wcet.cfg import build_all_cfgs


def _add_source_option(parser):
    parser.add_argument("source", help="mini-C source file")
    parser.add_argument("--entry", default="main",
                        help="entry function (default: main)")


def _add_memory_options(parser):
    parser.add_argument("--spm", type=int, metavar="BYTES",
                        help="scratchpad capacity")
    parser.add_argument("--alloc", choices=("energy", "wcet"),
                        default="energy",
                        help="scratchpad allocation objective")
    parser.add_argument("--cache", type=int, metavar="BYTES",
                        help="cache capacity")
    parser.add_argument("--assoc", type=int, default=1,
                        help="cache associativity (default 1)")
    parser.add_argument("--line", type=int, default=16,
                        help="cache line size in bytes (default 16)")
    parser.add_argument("--icache", action="store_true",
                        help="instruction-only cache (data bypasses)")
    parser.add_argument("--dcache", type=int, metavar="BYTES",
                        help="split I/D caches: --cache is the I side")
    parser.add_argument("--l2", type=int, metavar="BYTES",
                        help="unified second-level cache behind the L1")
    parser.add_argument("--l2-assoc", type=int, default=1,
                        help="L2 associativity (default 1)")
    parser.add_argument("--l2-line", type=int, default=16,
                        help="L2 line size in bytes (default 16)")
    parser.add_argument("--hybrid", action="store_true",
                        help="scratchpad with the cache behind it "
                             "(allows --spm together with --cache)")


def _add_kernel_option(parser):
    parser.add_argument("--kernel", choices=("auto", "scalar", "numpy"),
                        default=None,
                        help="replay backend (default: auto — numpy "
                             "when importable; also via "
                             "REPRO_REPLAY_KERNEL)")


def _apply_kernel(args):
    if getattr(args, "kernel", None) is None:
        return
    from .sim import kernels
    try:
        kernels.set_kernel(args.kernel)
    except RuntimeError as error:
        raise SystemExit(f"--kernel: {error}") from None


def _config_for(args) -> SystemConfig:
    """The SystemConfig the command-line options describe."""
    if args.spm and args.cache and not args.hybrid:
        raise SystemExit("choose --spm or --cache, not both "
                         "(or pass --hybrid for a scratchpad+cache "
                         "pipeline)")
    if (args.dcache or args.l2) and not args.cache:
        raise SystemExit("--dcache/--l2 need an L1 via --cache")
    if args.dcache and args.icache:
        raise SystemExit("--dcache already implies a split I/D level")
    levels = []
    name = []
    if args.spm:
        levels.append(SpmLevel(args.spm))
        name.append(f"spm{args.spm}")
    if args.cache:
        if args.dcache:
            icfg = CacheConfig(size=args.cache, line_size=args.line,
                               assoc=args.assoc, unified=False)
            dcfg = CacheConfig(size=args.dcache, line_size=args.line,
                               assoc=args.assoc)
            levels.append(CacheLevel.split(icfg, dcfg))
            name.append(f"i{args.cache}+d{args.dcache}")
        else:
            l1 = CacheConfig(size=args.cache, line_size=args.line,
                             assoc=args.assoc, unified=not args.icache)
            levels.append(CacheLevel.unified(l1) if l1.unified
                          else CacheLevel.instruction(l1))
            name.append(f"cache{args.cache}")
    if args.l2:
        l2 = CacheConfig(size=args.l2, line_size=args.l2_line,
                         assoc=args.l2_assoc)
        levels.append(CacheLevel.unified(l2, name="L2"))
        name.append(f"l2-{args.l2}")
    if not levels:
        return SystemConfig.uncached()
    levels.append(MainMemoryLevel())
    try:
        return SystemConfig.with_levels("+".join(name), levels)
    except ValueError as error:
        raise SystemExit(f"invalid memory pipeline: {error}") from None


def _build(args):
    """(image, config) for the requested memory system."""
    with open(args.source) as handle:
        compiled = compile_source(handle.read(), entry=args.entry)
    config = _config_for(args)
    if args.spm:
        if args.alloc == "energy":
            baseline = link(compiled.program)
            profile_run = simulate(baseline, SystemConfig.uncached(),
                                   profile=True)
            profile = build_profile(baseline, profile_run)
            allocation = allocate_energy_optimal(compiled.program,
                                                 profile, args.spm)
        else:
            backing = (SystemConfig.cached(config.cache)
                       if config.cache is not None else None)
            allocation = allocate_wcet_driven(compiled.program, args.spm,
                                              baseline_config=backing)
        image = link(compiled.program, spm_size=args.spm,
                     spm_objects=allocation.objects)
        return image, config
    return link(compiled.program), config


def _print_result(result, config):
    print(f"# {config.describe()}")
    print(f"# cycles:       {result.cycles}")
    print(f"# instructions: {result.instructions}")
    print(f"# exit code:    {result.exit_code}")
    if len(result.level_stats) > 1:
        for name, stats in result.level_stats.items():
            total = stats.hits + stats.misses
            print(f"# {name:5} cache:  {stats.hits} hits, "
                  f"{stats.misses} misses "
                  f"({100 * stats.misses / max(total, 1):.2f}% miss rate)")
    elif result.cache_stats is not None:
        stats = result.cache_stats
        total = stats.hits + stats.misses
        print(f"# cache:        {stats.hits} hits, {stats.misses} misses "
              f"({100 * stats.misses / max(total, 1):.2f}% miss rate)")


def cmd_run(args):
    image, config = _build(args)
    # Plain runs take the compiled fast engine; --record-misses opts
    # into the recording engine, which tracks misses per address;
    # --engine replay records the access trace and re-prices it.
    if args.engine == "replay":
        if args.record_misses:
            raise SystemExit("--record-misses needs the recording "
                             "engine; drop --engine replay")
        from .sim.replay import replay
        from .sim.trace import trace_for
        result = replay(trace_for(image, config.spm_size), config)
    else:
        result = simulate(image, config, record_misses=args.record_misses)
    for line in result.console:
        print(line)
    _print_result(result, config)
    if args.record_misses and result.fetch_misses:
        worst = sorted(result.fetch_misses.items(),
                       key=lambda kv: (-kv[1], kv[0]))[:5]
        print("# hottest fetch-miss addresses:")
        for addr, count in worst:
            print(f"#   {addr:#010x}  {count} misses")
    return 0


def _print_trace_summary(trace, heading):
    fetches, reads, writes = trace.counts_by_kind()
    print(f"# {heading}")
    print(f"# accesses:     {trace.accesses} ({fetches} fetches, "
          f"{reads} reads, {writes} writes)")
    print(f"# spm-resident: {sum(trace.spm_counts)}")
    print(f"# base cycles:  {trace.base_cycles}")
    print(f"# instructions: {trace.instructions}")
    print(f"# exit code:    {trace.exit_code}")


def cmd_trace(args):
    image, config = _build(args)
    from .sim.trace import trace_counters, trace_for
    trace = trace_for(image, config.spm_size)
    if args.export:
        from .sim.ingest import save_trace
        save_trace(trace, args.export)
        print(f"# exported {len(trace.ops)} records to {args.export}")
    _print_trace_summary(trace, config.describe())
    if args.profile:
        # One replay under the requested hierarchy, so the counters
        # show which kernel (scalar/numpy) served it.
        from .sim.replay import replay
        before = dict(trace_counters())
        replay(trace, config)
        after = trace_counters()
        served = [key for key in ("replay_numpy", "replay_scalar",
                                  "sweep_numpy", "sweep_scalar",
                                  "grid_numpy", "grid_scalar")
                  if after[key] > before.get(key, 0)]
        print(f"# replay served by: {', '.join(served) or 'cache'}")
        print("# trace counters:")
        for key, value in sorted(after.items()):
            print(f"#   {key:16} {value:>8}")
    return 0


def cmd_ingest(args):
    """Price a foreign address trace under the modelled hierarchies."""
    from .memory.cache import CacheConfig as _CacheConfig
    from .sim.ingest import TraceFormatError, load_trace
    from .sim.replay import replay, replay_sweep
    try:
        trace = load_trace(args.trace, fmt=args.format)
    except TraceFormatError as error:
        raise SystemExit(f"ingest: {error}") from None
    config = _config_for(args)
    _print_trace_summary(trace, f"ingested: {args.trace}")
    try:
        if args.sweep:
            sizes = [int(field) for field in args.sweep.split(",")]
            configs = [
                SystemConfig.cached(_CacheConfig(
                    size=size, line_size=args.line,
                    unified=not args.icache)) for size in sizes]
            for cfg, result in zip(configs, replay_sweep(trace, configs)):
                print(f"# {cfg.cache.size:>7} B cache: "
                      f"{result.cycles} cycles")
            return 0
        _print_result(replay(trace, config), config)
    except (ValueError, SimError) as error:
        raise SystemExit(f"ingest: {error}") from None
    return 0




def cmd_sweep(args):
    """Price a whole (size × associativity) cache grid in one pass."""
    from .sim.replay import replay_grid
    from .sim.trace import trace_counters, trace_for
    with open(args.source) as handle:
        compiled = compile_source(handle.read(), entry=args.entry)
    image = link(compiled.program)
    try:
        sizes = [int(field) for field in args.sizes.split(",")]
        assocs = [int(field) for field in args.assoc.split(",")]
    except ValueError:
        raise SystemExit("sweep: --sizes/--assoc take comma-separated "
                         "integers") from None
    grid, skipped = [], []
    for size in sizes:
        for assoc in assocs:
            if size >= args.line * assoc:
                grid.append(SystemConfig.cached(CacheConfig(
                    size=size, line_size=args.line, assoc=assoc,
                    unified=not args.icache)))
            else:
                skipped.append((size, assoc))
    trace = trace_for(image, 0)
    before = dict(trace_counters())
    try:
        results = replay_grid(trace, grid)
    except (ValueError, SimError) as error:
        raise SystemExit(f"sweep: {error}") from None
    cycles = {(cfg.cache.size, cfg.cache.assoc): result.cycles
              for cfg, result in zip(grid, results)}
    side = "instruction" if args.icache else "unified"
    print(f"# {side} cache grid, {args.line}-byte lines, "
          f"{len(grid)} points in one pass")
    header = "".join(f"{f'assoc={a}':>14}" for a in assocs)
    print(f"# {'size':>7}{header}")
    for size in sizes:
        cells = "".join(
            f"{cycles[(size, assoc)]:>14}" if (size, assoc) in cycles
            else f"{'-':>14}" for assoc in assocs)
        print(f"# {size:>6}B{cells}")
    for size, assoc in skipped:
        print(f"# skipped {size}B assoc={assoc}: fewer than one set")
    after = trace_counters()
    served = [key for key in ("grid_numpy", "grid_scalar",
                              "sweep_numpy", "sweep_scalar",
                              "replay_numpy", "replay_scalar")
              if after[key] > before.get(key, 0)]
    print(f"# kernel: {', '.join(served) or 'cached'}")
    return 0


def cmd_wcet(args):
    image, config = _build(args)
    result = analyze_wcet(image, config, persistence=args.persistence)
    print(result.report())
    lo, hi = result.stack_range
    print(f"  stack bound: {hi - lo} bytes")
    if result.cache_result is not None:
        from .wcet.cacheanalysis import AH, FM
        print(f"  cache classification: "
              f"{result.cache_result.count(AH)} always-hit, "
              f"{result.cache_result.count(FM)} first-miss")
        hierarchy = result.hierarchy_result
        if hierarchy is not None and len(hierarchy.levels) > 1:
            for entry in hierarchy.levels[1:]:
                deeper = entry.iresult or entry.dresult
                print(f"  {entry.level.name} classification: "
                      f"{deeper.count(AH)} always-hit "
                      f"(of the L1 misses reaching it)")
    if args.profile:
        from .wcet.analyzer import analysis_counters
        print("  analysis counters:")
        for key, value in sorted(analysis_counters().items()):
            print(f"    {key:16} {value:>8}")
    return 0


def cmd_compare(args):
    image, config = _build(args)
    sim = simulate(image, config)
    wcet = analyze_wcet(image, config, persistence=args.persistence)
    print(f"{config.describe()}")
    print(f"  simulated (typical input): {sim.cycles:>12} cycles")
    print(f"  WCET bound:                {wcet.wcet:>12} cycles")
    print(f"  WCET / sim ratio:          {wcet.wcet / sim.cycles:>12.3f}")
    return 0


def cmd_map(args):
    image, _config = _build(args)
    print(image.map_report())
    return 0


def cmd_disasm(args):
    image, _config = _build(args)
    cfgs = build_all_cfgs(image)
    for obj in sorted(image.code_objects, key=lambda o: o.base):
        print(f"\n{obj.name}:  ; {obj.region} @ {obj.base:#x}, "
              f"{obj.size} bytes")
        cfg = cfgs[obj.name]
        listing = sorted(
            (addr, instr)
            for block in cfg.blocks.values()
            for addr, instr in block.instrs)
        block_starts = set(cfg.blocks)
        for addr, instr in listing:
            marker = ">" if addr in block_starts else " "
            print(f"  {marker} {addr:#08x}  {format_instr(instr)}")
    return 0


def cmd_annotations(args):
    image, config = _build(args)
    print(format_annotations(generate_annotations(image, config)), end="")
    return 0


def cmd_cache(args):
    """Inspect / maintain an on-disk artifact store directory.

    Works on any store the trace or analysis layers write
    (``set_trace_cache_dir`` / ``set_analysis_cache_dir`` /
    ``evaluate_points`` worker caches): ``stats`` inventories it,
    ``verify`` re-checksums every entry (quarantining failures),
    ``gc`` enforces a byte cap (oldest-mtime entries evicted first)
    and reaps stale ``.tmp*`` orphans, ``clear`` empties it.
    """
    import os as _os

    if args.daemon:
        return _cache_daemon_stats(args)
    if not args.dir:
        raise SystemExit("cache: a store directory (or --daemon "
                         "SOCKET) is required")
    from .store import ArtifactStore
    store = ArtifactStore(args.dir)
    if not _os.path.isdir(args.dir):
        raise SystemExit(f"cache: no such directory: {args.dir}")
    if args.action == "stats":
        stats = store.stats()
        print(f"# store: {stats['root']}")
        print(f"# entries:     {stats['entries']}")
        print(f"# bytes:       {stats['bytes']}")
        print(f"# shards:      {stats['shards']}")
        print(f"# quarantined: {stats['quarantined_files']}")
        for key, value in sorted(stats["counters"].items()):
            print(f"#   {key:14} {value:>8}")
        return 0
    if args.action == "verify":
        outcome = store.verify()
        print(f"# verified {outcome['checked']} entries, "
              f"quarantined {outcome['quarantined']}")
        return 1 if outcome["quarantined"] else 0
    if args.action == "gc":
        if args.max_bytes is None:
            raise SystemExit("cache gc: --max-bytes is required")
        evicted = store.gc(args.max_bytes)
        reaped = store.counters["reaped"]
        print(f"# evicted {evicted} entries, reaped {reaped} "
              "stale tmp files")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"# removed {removed} entries")
        return 0
    raise SystemExit(f"cache: unknown action {args.action!r}")


def _cache_daemon_stats(args) -> int:
    """``repro-cc cache stats --daemon SOCKET``: a live daemon's view.

    Asks a running ``repro-serve`` for its serving counters (dedup
    coalesces, memo hits, sheds, worker retries/rebuilds) and its
    workers' shared store inventories — the daemon-side complement of
    the on-disk ``stats`` action.
    """
    if args.action != "stats":
        raise SystemExit("cache: --daemon supports only the stats "
                         "action (the daemon owns its stores)")
    from .serve.client import ServeClient, ServeTransportError
    from .serve.transport import AuthError, load_auth_key
    auth_key = None
    if args.auth_key:
        try:
            auth_key = load_auth_key(args.auth_key)
        except (OSError, ConnectionError) as error:
            raise SystemExit(f"cache: {error}") from None
    client = ServeClient(args.daemon, timeout=10.0,
                         auth_key=auth_key)
    try:
        stats = client.stats()
    except (ServeTransportError, AuthError) as error:
        raise SystemExit(f"cache: {error}") from None
    finally:
        client.close()
    counters = stats["counters"]
    memo = stats["memo"]
    supervisor = stats.get("supervisor", {})
    where = " ".join(stats.get("addresses") or [str(stats["socket"])])
    print(f"# daemon: {where} (pid {stats['pid']}, "
          f"up {stats['uptime_seconds']}s"
          f"{', draining' if stats['draining'] else ''})")
    print(f"# requests:     {counters['requests']} "
          f"({counters['ok']} ok, {counters['invalid']} invalid, "
          f"{counters['failed']} failed)")
    print(f"# computed:     {counters['computed']}")
    print(f"# coalesced:    {counters['coalesced']}")
    print(f"# memo hits:    {counters['memo_hits']} "
          f"({memo['entries']} entries, "
          f"{memo['evictions']} evictions)")
    print(f"# sheds:        {counters['sheds']}")
    print(f"# deadline:     {counters['deadline_expired']} expired")
    print(f"# supervision:  {supervisor.get('retries', 0)} retries, "
          f"{supervisor.get('timeouts', 0)} timeouts, "
          f"{supervisor.get('crashes', 0)} crashes, "
          f"{supervisor.get('rebuilds', 0)} rebuilds")
    for name, store in sorted(stats.get("stores", {}).items()):
        print(f"# store {name}: {store['entries']} entries, "
              f"{store['bytes']} bytes, "
              f"{store['quarantined']} quarantined")
    return 0


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "gen":
        # Everything after "gen" belongs to repro-gen's own parser
        # (argparse.REMAINDER cannot forward leading optionals).
        from .gen.cli import main as gen_main
        return gen_main(argv[1:])
    if argv and argv[0] == "serve":
        # Likewise for the serving daemon (repro-serve).
        from .serve.cli import main as serve_main
        return serve_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-cc",
        description="mini-C toolchain: simulate and bound embedded tasks")
    sub = parser.add_subparsers(dest="command", required=True)
    for name, func, needs_persistence in (
            ("run", cmd_run, False),
            ("trace", cmd_trace, False),
            ("wcet", cmd_wcet, True),
            ("compare", cmd_compare, True),
            ("map", cmd_map, False),
            ("disasm", cmd_disasm, False),
            ("annotations", cmd_annotations, False)):
        command = sub.add_parser(name)
        _add_source_option(command)
        _add_memory_options(command)
        if needs_persistence:
            command.add_argument(
                "--persistence", action="store_true",
                help="enable first-miss cache persistence analysis")
        if name == "run":
            command.add_argument(
                "--record-misses", action="store_true",
                help="use the recording engine and report the hottest "
                     "fetch-miss addresses")
            command.add_argument(
                "--engine", choices=("execute", "replay"),
                default="execute",
                help="execute the program, or record its access trace "
                     "and replay it (bit-identical results)")
            _add_kernel_option(command)
        if name == "trace":
            command.add_argument(
                "--profile", action="store_true",
                help="print trace-cache and replay counters after "
                     "the dump")
            command.add_argument(
                "--export", metavar="FILE",
                help="also write the trace in the portable text "
                     "format (gzip when FILE ends in .gz)")
            _add_kernel_option(command)
        if name == "wcet":
            command.add_argument(
                "--profile", action="store_true",
                help="print analysis reuse-cache and state-interning "
                     "counters after the run")
        command.set_defaults(func=func)

    ingest = sub.add_parser(
        "ingest", help="replay a foreign address trace (Pin/PredicMem "
                       "style or the trace --export format)")
    ingest.add_argument("trace", help="trace file (.gz accepted)")
    ingest.add_argument("--format", default="auto",
                        choices=("auto", "repro", "pin", "predicmem"),
                        help="input format (default: auto-detect)")
    ingest.add_argument("--sweep", metavar="SIZES",
                        help="comma-separated cache sizes: price them "
                             "all in one single-pass replay")
    _add_memory_options(ingest)
    _add_kernel_option(ingest)
    ingest.set_defaults(func=cmd_ingest)

    sweep = sub.add_parser(
        "sweep", help="price a (size × associativity) cache-geometry "
                      "grid in one single-pass replay")
    _add_source_option(sweep)
    sweep.add_argument("--sizes",
                       default="64,128,256,512,1024,2048,4096,8192",
                       help="comma-separated cache sizes in bytes")
    sweep.add_argument("--assoc", default="1,2,4,8",
                       help="comma-separated associativities")
    sweep.add_argument("--line", type=int, default=16,
                       help="cache line size in bytes (default 16)")
    sweep.add_argument("--icache", action="store_true",
                       help="instruction-only grid (data bypasses)")
    _add_kernel_option(sweep)
    sweep.set_defaults(func=cmd_sweep)

    cache = sub.add_parser(
        "cache", help="inspect or maintain an on-disk artifact store "
                      "(trace / analysis cache directory)")
    cache.add_argument("action",
                       choices=("stats", "verify", "gc", "clear"),
                       help="stats: inventory + counters; verify: "
                            "re-checksum every entry, quarantine "
                            "failures; gc: enforce --max-bytes and "
                            "reap stale tmp files; clear: delete "
                            "every entry")
    cache.add_argument("dir", nargs="?", default=None,
                       help="store directory (omit with --daemon)")
    cache.add_argument("--max-bytes", type=int, default=None,
                       metavar="N", help="byte cap for gc (oldest "
                                         "entries evicted first)")
    cache.add_argument("--daemon", default=None, metavar="ADDRESS",
                       help="stats of a running repro-serve daemon "
                            "instead of an on-disk store; a socket "
                            "path, unix:/path, or tcp://host:port "
                            "(the latter needs --auth-key)")
    cache.add_argument("--auth-key", default=None, metavar="FILE",
                       help="shared-secret file for a tcp:// daemon")
    cache.set_defaults(func=cmd_cache)

    sub.add_parser("gen", add_help=False,
                   help="seeded mini-C workload generator (repro-gen)")
    sub.add_parser("serve", add_help=False,
                   help="analysis-as-a-service daemon (repro-serve)")

    args = parser.parse_args(argv)
    _apply_kernel(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
