"""Resilient content-addressed artifact store + bounded LRU caches.

Every expensive result in this repo — recorded traces, cache-analysis
fixpoints — is a pure function of ``(image content key, config)``, and
PRs 4–7 made them flow through content-addressed caches: an in-process
dict in front of an optional shared on-disk directory.  That substrate
is what the whole "trace once / analyse once, serve many" story rests
on, so it has to be *trustworthy*, not merely fast:

* a half-written or bit-flipped disk entry must be **detected and
  quarantined** (moved aside and counted), never silently unpickled
  into a wrong replay, and never silently swallowed either;
* a full disk, a read-only filesystem or a vanished directory must
  degrade the store to memory-only operation — one warning, counters
  keeping the story — instead of aborting a sweep;
* a crash between "open tmp file" and "atomic rename" must not leak
  the tmp file forever;
* the in-process layers must be bounded (the serving-daemon north star
  cannot tolerate caches that grow without limit).

:class:`ArtifactStore` is the one shared disk-cache implementation
behind :func:`repro.sim.trace.set_trace_cache_dir` and
:func:`repro.wcet.cacheanalysis.set_analysis_cache_dir`.  Entries are
pickles wrapped in a checksummed envelope::

    repro-store 1 <kind><checksum> <payload-length>\\n<payload>

where *kind* is ``s`` (64-bit word-sum, computed at memory bandwidth
through numpy when available — the envelope must cost a few percent
of the raw pickle round trip, not half of it) or ``c`` (``zlib.crc32``
for numpy-free environments); readers verify whichever kind the file
declares.  Entries are written atomically
(``{path}.tmp{pid}`` + ``os.replace``) into
2-hex-character shard directories named by the sha256 of the entry key.
Loads verify the envelope before unpickling; failures move the file to
the store's ``corrupt/`` subdirectory and count in ``corrupt``.  The
store garbage-collects by mtime (oldest first) under a byte cap, reaps
stale ``.tmp*`` orphans, and can re-verify every entry in place
(``repro-cc cache verify``).

:class:`ShardedArtifactStore` composes N of those stores into one
partitioned keyspace for the serving cluster: every key is owned by
the shard that wins the rendezvous (HRW) hash over the shard roots —
the same :func:`rendezvous_rank` the cluster client routes requests
with, so a daemon's shard ordering and a client's daemon ordering
degrade identically when a node drops out.  Reads fall through to
peer shards on a primary miss (and read-repair the primary), writes
replicate to the first *R* ranked shards with the extra copies
written behind a queue thread so the caller never waits on
replication, and each member shard keeps its own quarantine and
degradation state — one shard on a full disk never stops the others.

:class:`LRUCache` is the bounded in-process companion: a move-to-front
dict with an eviction counter, used for the trace table, the analysis
reuse table and the per-trace replay-kernel memo.

Deterministic fault injection for all of this lives in
:mod:`repro.testing.faults`; the write path consults it only when the
``REPRO_FAULT_STORE_WRITE`` environment variable is set, so the
production path never imports the testing package.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
import zlib
from collections import OrderedDict

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy job
    _np = None

#: Envelope magic + format version.  Bump on layout changes: old
#: entries then quarantine-free miss (the magic no longer matches and
#: unversioned files are treated as corrupt, which is what they are).
_MAGIC = b"repro-store 1 "

#: ``<kind:1><checksum:016x> <length:016x>`` after the magic, padded
#: with spaces to 56 bytes so the payload starts 8-byte aligned (the
#: word-sum checksum then verifies straight out of the read blob at
#: full numpy speed, no copy).
_HEADER_LEN = 56
_PAD = b" " * (_HEADER_LEN - len(_MAGIC) - 1 - 16 - 1 - 16 - 1) + b"\n"

_MASK64 = (1 << 64) - 1

#: ``.tmp*`` orphans older than this many seconds are reaped.  The
#: grace period protects a concurrent worker's in-flight write: tmp
#: files live for milliseconds, never minutes.
TMP_MAX_AGE = 300.0

#: Consecutive write failures before the store stops touching the disk
#: for writes (reads keep being attempted: a full disk still serves).
_DEGRADE_AFTER = 3

#: Fresh per-store counter block (:meth:`ArtifactStore.counters`).
STORE_COUNTER_KEYS = (
    "hits", "misses", "corrupt", "writes", "write_errors",
    "write_skips", "evictions", "reaped",
)

#: Extra counters a :class:`ShardedArtifactStore` adds on top of the
#: aggregated per-shard block.
SHARD_COUNTER_KEYS = ("peer_hits", "read_repairs", "replica_writes")


def rendezvous_rank(key: str, nodes) -> list:
    """*nodes* ranked by HRW (rendezvous) hash for *key*.

    Highest-random-weight hashing: every participant computes, with no
    coordination and no ring state, the same total order of nodes for
    a key, and removing a node never reorders the survivors — the key
    simply promotes its next-ranked node.  Used for both the cluster
    client's request routing and the sharded store's keyspace
    partition, so request ownership and artifact ownership move in
    lockstep when a daemon dies.
    """
    return sorted(
        nodes,
        key=lambda node: hashlib.sha256(
            f"{node}|{key}".encode()).digest(),
        reverse=True)


def _fault_write_mode():
    """Injected write fault for this call, or None (the common case)."""
    if os.environ.get("REPRO_FAULT_STORE_WRITE"):
        from .testing.faults import store_write_fault
        return store_write_fault()
    return None


class LRUCache:
    """Bounded mapping with move-to-front reads and an eviction count.

    Drop-in for the plain dicts the in-process cache layers used to be
    (``get`` / ``[key] = value`` / ``clear`` / ``len``): inserting
    beyond *capacity* evicts the least recently used entry and bumps
    ``evictions`` (plus the optional *on_evict* callback, which the
    cache modules use to feed their ``--profile`` counter blocks).
    ``capacity`` None means unbounded.
    """

    def __init__(self, capacity=None, on_evict=None):
        self.capacity = capacity
        self.on_evict = on_evict
        self.evictions = 0
        self._data = OrderedDict()

    def get(self, key, default=None):
        try:
            self._data.move_to_end(key)
        except KeyError:
            return default
        return self._data[key]

    def __getitem__(self, key):
        self._data.move_to_end(key)
        return self._data[key]

    def __setitem__(self, key, value):
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        capacity = self.capacity
        if capacity is not None:
            while len(data) > capacity:
                data.popitem(last=False)
                self.evictions += 1
                if self.on_evict is not None:
                    self.on_evict()

    def __contains__(self, key):
        return key in self._data

    def __len__(self):
        return len(self._data)

    def set_capacity(self, capacity):
        """Change the bound, evicting immediately if now over it."""
        self.capacity = capacity
        if capacity is not None:
            data = self._data
            while len(data) > capacity:
                data.popitem(last=False)
                self.evictions += 1
                if self.on_evict is not None:
                    self.on_evict()

    def clear(self):
        self._data.clear()


def _sum64(buffer, offset: int = 0) -> int:
    """64-bit native-endian word-sum of ``buffer[offset:]`` + tail.

    Any single corrupted region changes the sum; the numpy path runs
    at memory bandwidth, which is what keeps the whole envelope inside
    the store-overhead budget (*offset* lets the verifier sum directly
    out of the read blob, no payload copy).  The numpy-free fallback
    (``array``) computes the identical value, so stores written with
    numpy verify without it and vice versa.
    """
    trim = (len(buffer) - offset) & ~7
    if _np is not None:
        total = int(_np.frombuffer(buffer, _np.uint8, trim, offset)
                    .view(_np.uint64).sum(dtype=_np.uint64))
    else:
        from array import array
        total = sum(array("Q", bytes(buffer[offset:offset + trim]))) \
            & _MASK64
    tail = bytes(buffer[offset + trim:])
    if tail:
        total = (total + int.from_bytes(tail, "little")) & _MASK64
    return total


def _header_for(payload) -> bytes:
    if _np is not None:
        return (_MAGIC + b"s%016x %016x" % (_sum64(payload),
                                            len(payload)) + _PAD)
    return (_MAGIC + b"c%016x %016x" % (zlib.crc32(payload),
                                        len(payload)) + _PAD)


def envelope(payload: bytes) -> bytes:
    """Wrap *payload* in the checksummed store envelope."""
    return _header_for(payload) + payload


def open_envelope(blob):
    """The payload inside *blob*, or None when the envelope is bad.

    Rejects short files, foreign magic, truncated or overlong payloads
    and checksum mismatches — every way a torn write, a bit flip or a
    stray file can present.  Returns a zero-copy view into *blob*
    (``pickle.loads`` and equality against bytes both accept it).
    """
    if len(blob) < _HEADER_LEN or not blob.startswith(_MAGIC):
        return None
    header = blob[len(_MAGIC):_HEADER_LEN]
    kind = header[:1]
    try:
        checksum = int(header[1:17], 16)
        length = int(header[18:34], 16)
    except ValueError:
        return None
    if len(blob) - _HEADER_LEN != length:
        return None
    if kind == b"s":
        if _sum64(blob, _HEADER_LEN) != checksum:
            return None
    elif kind == b"c":
        if zlib.crc32(memoryview(blob)[_HEADER_LEN:]) != checksum:
            return None
    else:
        return None
    return memoryview(blob)[_HEADER_LEN:]


class ArtifactStore:
    """One content-addressed, corruption-quarantining disk cache.

    *root* is created lazily on the first write.  *suffix* names the
    entry files (purely cosmetic — reads, GC and verification accept
    any non-tmp file in a shard directory, so one tool serves both the
    trace and the analysis layout).
    """

    def __init__(self, root, suffix: str = ".pkl", max_bytes=None):
        self.root = str(root)
        self.suffix = suffix
        #: Byte cap enforced opportunistically after writes (None = no
        #: cap; ``repro-cc cache gc`` enforces caps explicitly too).
        self.max_bytes = max_bytes
        self.degraded = False
        self._write_failures = 0
        self._warned = False
        self._reaped_on_start = False
        self._made_dirs = set()
        self._paths = LRUCache(capacity=1024)
        self.counters = dict.fromkeys(STORE_COUNTER_KEYS, 0)

    # -- paths ---------------------------------------------------------------

    @staticmethod
    def digest(key) -> str:
        return hashlib.sha256(repr(key).encode()).hexdigest()

    def path_for(self, key) -> str:
        # Memoised: a sweep loads and stores the same keys over and
        # over, and the digest + join otherwise run twice per entry.
        try:
            path = self._paths.get(key)
        except TypeError:  # unhashable key: compute directly
            path = None
        else:
            if path is not None:
                return path
        digest = self.digest(key)
        path = os.path.join(self.root, digest[:2], digest + self.suffix)
        try:
            self._paths[key] = path
        except TypeError:
            pass
        return path

    def corrupt_dir(self) -> str:
        return os.path.join(self.root, "corrupt")

    def _entries(self):
        """Every committed entry as ``(path, bytes, mtime)``."""
        entries = []
        try:
            shards = os.scandir(self.root)
        except OSError:
            return entries
        with shards:
            for shard in shards:
                if len(shard.name) != 2 or not shard.is_dir():
                    continue
                try:
                    files = os.scandir(shard.path)
                except OSError:
                    continue
                with files:
                    for entry in files:
                        if ".tmp" in entry.name or not entry.is_file():
                            continue
                        try:
                            stat = entry.stat()
                        except OSError:
                            continue
                        entries.append((entry.path, stat.st_size,
                                        stat.st_mtime))
        return entries

    # -- failure bookkeeping -------------------------------------------------

    def _quarantine(self, path):
        """Move a bad entry into ``corrupt/`` (unlink if even that
        fails) so it is counted once and never re-read as data.

        Safe against a live sibling process (a daemon next to a
        runner) racing us to the same conclusion: if the entry is
        already gone — quarantined or evicted by the sibling — there
        is nothing to move, and we only keep our own count of having
        observed the corruption.
        """
        self.counters["corrupt"] += 1
        target = os.path.join(self.corrupt_dir(), os.path.basename(path))
        try:
            os.makedirs(self.corrupt_dir(), exist_ok=True)
            os.replace(path, target)
        except FileNotFoundError:
            return  # a sibling already moved or removed it
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass

    def _write_failed(self, error):
        self.counters["write_errors"] += 1
        self._write_failures += 1
        if self._write_failures >= _DEGRADE_AFTER:
            self.degraded = True
        if not self._warned:
            self._warned = True
            warnings.warn(
                f"artifact store {self.root}: write failed ({error}); "
                "continuing memory-only (results are unaffected, only "
                "reuse across processes is lost)",
                RuntimeWarning, stacklevel=3)

    # -- the byte-level entry API -------------------------------------------

    def read(self, path):
        """The verified payload at *path*, quarantining on corruption."""
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            self.counters["misses"] += 1
            return None
        except OSError:
            self.counters["misses"] += 1
            return None
        payload = open_envelope(blob)
        if payload is None:
            self._quarantine(path)
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        return payload

    def write(self, path, payload: bytes) -> bool:
        """Atomically commit an enveloped *payload* at *path*.

        Never raises: write errors (including injected ``ENOSPC`` /
        ``EROFS`` faults) count, warn once, clean up the tmp file and
        — after repeated failures — degrade the store to memory-only
        writes.  A ``torn`` fault commits a truncated envelope, which
        the next :meth:`read` detects and quarantines.
        """
        if self.degraded:
            self.counters["write_skips"] += 1
            return False
        if not self._reaped_on_start:
            self._reaped_on_start = True
            self.reap_tmp()
        header = _header_for(payload)
        fault = _fault_write_mode()
        tmp = f"{path}.tmp{os.getpid()}"
        parent = os.path.dirname(path)
        try:
            if fault in ("enospc", "erofs"):
                import errno
                code = errno.ENOSPC if fault == "enospc" else errno.EROFS
                raise OSError(code, os.strerror(code), tmp)
            if parent not in self._made_dirs:
                os.makedirs(parent, exist_ok=True)
                self._made_dirs.add(parent)
            if fault == "torn":
                blob = header + bytes(payload)
                with open(tmp, "wb") as handle:
                    handle.write(blob[:max(_HEADER_LEN, len(blob) // 2)])
            elif hasattr(os, "writev"):
                # One gathered syscall, no concatenation copy of a
                # multi-hundred-KB pickle.
                fd = os.open(tmp,
                             os.O_WRONLY | os.O_CREAT | os.O_TRUNC,
                             0o666)
                try:
                    written = os.writev(fd, (header, payload))
                finally:
                    os.close(fd)
                if written != len(header) + len(payload):
                    raise OSError(f"short write ({written} bytes) "
                                  f"to {tmp}")
            else:  # pragma: no cover - platforms without writev
                with open(tmp, "wb") as handle:
                    handle.write(header)
                    handle.write(payload)
            os.replace(tmp, path)
        except OSError as error:
            try:  # crash-orphan cleanup: never leave our tmp behind
                os.unlink(tmp)
            except OSError:
                pass
            self._made_dirs.discard(parent)  # maybe it vanished: retry
            self._write_failed(error)
            return False
        self.counters["writes"] += 1
        self._write_failures = 0
        if self.max_bytes is not None \
                and self.counters["writes"] % 64 == 0:
            self.gc(self.max_bytes)
        return True

    # -- the pickle-level key API -------------------------------------------

    def load(self, key):
        """Unpickle the entry for *key*, or None (miss / quarantined).

        A payload that passes the checksum but fails to unpickle (a
        stale class layout, a foreign file someone enveloped by hand)
        is quarantined too: corrupt-for-our-purposes is corrupt.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self.counters["misses"] += 1
            return None
        payload = open_envelope(blob)
        if payload is None:
            self._quarantine(path)
            self.counters["misses"] += 1
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._quarantine(path)
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        return value

    def store(self, key, value) -> bool:
        return self.write(self.path_for(key),
                          pickle.dumps(value, pickle.HIGHEST_PROTOCOL))

    # -- maintenance ---------------------------------------------------------

    def reap_tmp(self, max_age: float = TMP_MAX_AGE) -> int:
        """Delete crash-orphaned ``*.tmp*`` files older than *max_age*.

        Runs once automatically before the first write of each store
        instance; ``repro-cc cache gc`` and the tests call it directly
        (with ``max_age=0`` to reap unconditionally).  The age gate is
        what makes this safe next to a live sibling process writing
        the same store: a sibling's in-flight ``.tmp<pid>`` file lives
        for milliseconds, never minutes.  Our *own* process's tmp
        files are never reaped at any age — this instance may be
        mid-write on another thread.
        """
        import time
        reaped = 0
        cutoff = time.time() - max_age
        own = f".tmp{os.getpid()}"
        try:
            shards = os.scandir(self.root)
        except OSError:
            return 0
        with shards:
            dirs = [shard.path for shard in shards
                    if len(shard.name) == 2 and shard.is_dir()]
        dirs.append(self.root)
        for directory in dirs:
            try:
                files = os.scandir(directory)
            except OSError:
                continue
            with files:
                for entry in files:
                    if ".tmp" not in entry.name or not entry.is_file():
                        continue
                    if entry.name.endswith(own):
                        continue
                    try:
                        if entry.stat().st_mtime <= cutoff:
                            os.unlink(entry.path)
                            reaped += 1
                    except OSError:
                        continue
        self.counters["reaped"] += reaped
        return reaped

    def gc(self, max_bytes: int) -> int:
        """Evict oldest-mtime entries until the store fits *max_bytes*.

        Also reaps stale tmp orphans.  Returns the number of entries
        evicted.  Tolerates a live sibling process gc-ing or rewriting
        the same store concurrently: an entry that vanished between
        the scan and our unlink still counts against the byte total
        (its bytes are gone either way), just not as our eviction.
        """
        self.reap_tmp()
        entries = sorted(self._entries(), key=lambda e: (e[2], e[0]))
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for path, size, _ in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except FileNotFoundError:
                total -= size  # a sibling beat us to it
                continue
            except OSError:
                continue
            total -= size
            evicted += 1
        self.counters["evictions"] += evicted
        return evicted

    def verify(self) -> dict:
        """Re-checksum every entry; quarantine and count failures."""
        checked = bad = 0
        for path, _, _ in self._entries():
            checked += 1
            try:
                with open(path, "rb") as handle:
                    blob = handle.read()
            except OSError:
                continue
            if open_envelope(blob) is None:
                self._quarantine(path)
                bad += 1
        return {"checked": checked, "quarantined": bad}

    def clear(self) -> int:
        """Delete every entry (and tmp orphans); keep quarantined files."""
        removed = 0
        self.reap_tmp(max_age=0.0)
        for path, _, _ in self._entries():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                continue
        return removed

    def stats(self) -> dict:
        """Disk-side inventory + this instance's counters."""
        entries = self._entries()
        shards = {os.path.basename(os.path.dirname(path))
                  for path, _, _ in entries}
        try:
            quarantined = len([
                name for name in os.listdir(self.corrupt_dir())])
        except OSError:
            quarantined = 0
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "shards": len(shards),
            "quarantined_files": quarantined,
            "degraded": self.degraded,
            "counters": dict(self.counters),
        }


class ShardedArtifactStore:
    """N :class:`ArtifactStore` shards behind one keyspace.

    Each key is *owned* by the shard that wins
    :func:`rendezvous_rank` over the shard root paths.  ``load`` asks
    the owner first and falls through the remaining ranked shards on a
    miss — a hit on a peer (a key rehomed by topology change, or an
    owner whose copy was corrupted and quarantined) counts in
    ``peer_hits`` and is *read-repaired* back into the owner.
    ``store`` writes the owner synchronously and, with ``replicas``
    R > 1, queues copies for the next R-1 ranked shards on a
    write-behind thread (:meth:`flush` drains it; tests and daemon
    shutdown call it so no replica is lost to process exit).

    Every shard keeps its own quarantine directory, degradation state
    and counters — a full disk under one shard degrades *that* shard
    while the others keep serving, and :attr:`counters` aggregates the
    per-shard blocks plus the sharding-specific extras.
    """

    def __init__(self, roots, suffix: str = ".pkl", max_bytes=None,
                 replicas: int = 1):
        roots = [str(root) for root in roots]
        if not roots:
            raise ValueError("sharded store needs at least one root")
        if len(set(roots)) != len(roots):
            raise ValueError(f"duplicate shard roots: {roots}")
        self.roots = roots
        self.replicas = max(1, min(int(replicas), len(roots)))
        self.shards = {root: ArtifactStore(root, suffix=suffix,
                                           max_bytes=max_bytes)
                       for root in roots}
        self._extra = dict.fromkeys(SHARD_COUNTER_KEYS, 0)
        self._queue = None
        self._writer = None

    #: Cosmetic root for status surfaces (``repro-cc cache stats``).
    @property
    def root(self) -> str:
        return "+".join(self.roots)

    @property
    def counters(self) -> dict:
        merged = dict.fromkeys(STORE_COUNTER_KEYS, 0)
        for shard in self.shards.values():
            for key in STORE_COUNTER_KEYS:
                merged[key] += shard.counters[key]
        merged.update(self._extra)
        return merged

    @property
    def degraded(self) -> bool:
        return all(shard.degraded for shard in self.shards.values())

    # -- placement -----------------------------------------------------------

    def ranked_for(self, key) -> list:
        """Shard roots in ownership order for *key* (owner first)."""
        return rendezvous_rank(ArtifactStore.digest(key), self.roots)

    def shard_for(self, key) -> ArtifactStore:
        """The shard that owns *key*."""
        return self.shards[self.ranked_for(key)[0]]

    def path_for(self, key) -> str:
        return self.shard_for(key).path_for(key)

    # -- write-behind plumbing -----------------------------------------------

    def _enqueue(self, root, key, value):
        if self._queue is None:
            import queue
            import threading
            self._queue = queue.Queue()

            def drain():
                while True:
                    item = self._queue.get()
                    try:
                        if item is None:
                            return
                        target, k, v = item
                        if self.shards[target].store(k, v):
                            self._extra["replica_writes"] += 1
                    finally:
                        self._queue.task_done()

            self._writer = threading.Thread(
                target=drain, name="store-replicator", daemon=True)
            self._writer.start()
        self._queue.put((root, key, value))

    def flush(self):
        """Block until every queued replica write has been attempted."""
        if self._queue is not None:
            self._queue.join()

    def close(self):
        """Flush and stop the write-behind thread (idempotent)."""
        if self._queue is not None:
            self._queue.join()
            self._queue.put(None)
            self._writer.join(timeout=5.0)
            self._queue = None
            self._writer = None

    # -- the pickle-level key API -------------------------------------------

    def load(self, key):
        """The owner's entry, read through peers on an owner miss."""
        ranked = self.ranked_for(key)
        value = self.shards[ranked[0]].load(key)
        if value is not None:
            return value
        for root in ranked[1:]:
            value = self.shards[root].load(key)
            if value is None:
                continue
            self._extra["peer_hits"] += 1
            # Read repair: rehome the entry so the owner answers the
            # next load directly (and the HRW invariant — owner has
            # the freshest copy — self-heals after corruption).
            if self.shards[ranked[0]].store(key, value):
                self._extra["read_repairs"] += 1
            return value
        return None

    def store(self, key, value) -> bool:
        ranked = self.ranked_for(key)
        committed = self.shards[ranked[0]].store(key, value)
        for root in ranked[1:self.replicas]:
            self._enqueue(root, key, value)
        return committed

    # -- maintenance (aggregated over the shards) ---------------------------

    def reap_tmp(self, max_age: float = TMP_MAX_AGE) -> int:
        return sum(shard.reap_tmp(max_age)
                   for shard in self.shards.values())

    def gc(self, max_bytes: int) -> int:
        # The cap is per shard: shards are independent disks in the
        # deployment this models, not slices of one budget.
        return sum(shard.gc(max_bytes)
                   for shard in self.shards.values())

    def verify(self) -> dict:
        self.flush()
        totals = {"checked": 0, "quarantined": 0}
        for shard in self.shards.values():
            report = shard.verify()
            totals["checked"] += report["checked"]
            totals["quarantined"] += report["quarantined"]
        return totals

    def clear(self) -> int:
        self.flush()
        return sum(shard.clear() for shard in self.shards.values())

    def stats(self) -> dict:
        shard_stats = [self.shards[root].stats()
                       for root in self.roots]
        return {
            "root": self.root,
            "entries": sum(s["entries"] for s in shard_stats),
            "bytes": sum(s["bytes"] for s in shard_stats),
            "shards": len(self.roots),
            "replicas": self.replicas,
            "quarantined_files": sum(s["quarantined_files"]
                                     for s in shard_stats),
            "degraded": self.degraded,
            "counters": dict(self.counters),
            "shard_stats": shard_stats,
        }


def env_capacity(name: str, default: int):
    """Integer cache-capacity knob from the environment (0 = unbounded)."""
    raw = os.environ.get(name)
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        return default
    return None if value <= 0 else value
