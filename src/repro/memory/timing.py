"""Cycle costs per memory access — the paper's Table 1, plus CPU overheads.

Table 1 of the paper ("Cycles per memory access (access + waitstates)"):

============== ============= ============
Access width   Main memory   Scratchpad
============== ============= ============
Byte (8 bit)   2             1
Half (16 bit)  2             1
Word (32 bit)  4             1
============== ============= ============

Main memory on the modelled AT91EB01-style board is 16 bits wide: an 8- or
16-bit access takes one access cycle plus one waitstate; a 32-bit access
takes two bus transfers (1 + 3 waitstates = 4 cycles).  The scratchpad runs
at processor speed: one cycle at any width.

The same module also centralises the (ARM7TDMI-flavoured) execution-cycle
model so the simulator and the WCET analyser cannot diverge:

* every instruction costs its fetch (a 16-bit access at the pc) plus
  :data:`EXTRA_CYCLES` for its class;
* taken branches add :data:`BRANCH_REFILL_CYCLES` for the pipeline refill;
* loads/stores add the data access at the operand width;
* PUSH/POP add one data access per transferred register.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Op
from .regions import RegionKind

#: Main-memory cycles by access width in bytes (Table 1).
MAIN_CYCLES = {1: 2, 2: 2, 4: 4}

#: Scratchpad cycles by access width in bytes (Table 1).
SPM_CYCLES = {1: 1, 2: 1, 4: 1}

#: Cycles for a cache hit (any width).
CACHE_HIT_CYCLES = 1

#: Extra pipeline-refill cycles for a taken branch / call / return.
BRANCH_REFILL_CYCLES = 2

#: Extra execute cycles beyond fetch + memory, per opcode.
EXTRA_CYCLES = {Op.MUL: 3, Op.SWI: 2}


@dataclass(frozen=True)
class AccessTiming:
    """Cycles per access for each region kind, by width in bytes."""

    main: dict = field(default_factory=lambda: dict(MAIN_CYCLES))
    spm: dict = field(default_factory=lambda: dict(SPM_CYCLES))

    def cycles(self, kind: str, width: int) -> int:
        """Cycle count for one uncached access of *width* bytes."""
        table = self.spm if kind == RegionKind.SPM else self.main
        try:
            return table[width]
        except KeyError:
            raise ValueError(f"unsupported access width {width}") from None

    def line_fill_cycles(self, line_size: int) -> int:
        """Cycles to fill a cache line from main memory.

        The line is transferred as 32-bit words with no burst support, as in
        the paper: a 16-byte line is 4 word accesses of 4 cycles each, i.e.
        "12 additional waitstates" on top of the 4 access cycles.
        """
        if line_size % 4:
            raise ValueError("line size must be a multiple of 4 bytes")
        return (line_size // 4) * self.main[4]

    @classmethod
    def table1(cls) -> "AccessTiming":
        """The exact timing of the paper's Table 1."""
        return cls()


def instruction_extra_cycles(op: Op) -> int:
    """Execute-stage cycles beyond fetch and data access for *op*."""
    return EXTRA_CYCLES.get(op, 0)
