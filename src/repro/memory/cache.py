"""Cache model (timing/tags only) — one instance per pipeline level.

The paper's experimental configuration is a **unified direct-mapped cache
with four 32-bit words per line** in front of 16-bit main memory, as found
in ARM7 family parts.  The model here generalises to set-associative LRU
(used for the paper's "future work" ablation) with direct-mapped as
associativity 1, and serves as the tag array for *any* level of the
composable pipeline in :mod:`repro.memory.levels` (L1, L2, or one side
of a split I/D pair).

The cache is *timing-only*: it tracks tags, not data.  With the modelled
write-through / no-write-allocate policy, backing RAM is always current, so
a tags-only model is cycle-exact while keeping the simulator simple.

Policy summary:

* read hit: :data:`~repro.memory.timing.CACHE_HIT_CYCLES` (1 cycle);
* read miss: full line fill (4 words x 4 cycles = 16 cycles, Table 1);
* write: write-through, no allocate — the store pays the main-memory cost
  for its width; a write hit leaves the line resident (RAM is updated, so
  tag contents stay valid), a write miss does not allocate.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class ReplacementPolicy:
    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of a cache.

    ``unified=True`` (the paper's experimental setup) caches instruction
    fetches *and* data; ``unified=False`` models the instruction-only
    cache named in the paper's future work — data bypasses the cache and
    pays main-memory cost directly.
    """

    size: int
    line_size: int = 16
    assoc: int = 1
    replacement: str = ReplacementPolicy.LRU
    unified: bool = True

    def __post_init__(self):
        if self.size <= 0 or self.size % (self.line_size * self.assoc):
            raise ValueError(
                f"cache size {self.size} not divisible into "
                f"{self.assoc}-way sets of {self.line_size}-byte lines")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line size must be a power of two")

    @property
    def num_sets(self) -> int:
        return self.size // (self.line_size * self.assoc)

    def set_index(self, addr: int) -> int:
        return (addr // self.line_size) % self.num_sets

    def block_of(self, addr: int) -> int:
        """Memory block number (line-granular address) of *addr*."""
        return addr // self.line_size

    def blocks_in_range(self, lo: int, hi: int):
        """All memory blocks overlapping byte range [lo, hi)."""
        if hi <= lo:
            return range(0)
        return range(lo // self.line_size, (hi - 1) // self.line_size + 1)

    def describe(self) -> str:
        ways = "direct mapped" if self.assoc == 1 else f"{self.assoc}-way"
        kind = "unified" if self.unified else "instruction"
        return (f"{self.size} B {kind} {ways} cache, "
                f"{self.line_size} B lines, {self.replacement} replacement")


@dataclass
class CacheStats:
    """Hit/miss counters split by access source."""

    fetch_hits: int = 0
    fetch_misses: int = 0
    read_hits: int = 0
    read_misses: int = 0
    write_hits: int = 0
    write_misses: int = 0

    @property
    def hits(self) -> int:
        return self.fetch_hits + self.read_hits + self.write_hits

    @property
    def misses(self) -> int:
        return self.fetch_misses + self.read_misses + self.write_misses


class Cache:
    """Stateful tags-only cache following :class:`CacheConfig`.

    ``RANDOM`` replacement is deterministic here (an LFSR victim counter),
    mirroring how ARM7 implements its "random" policy with a cheap counter;
    the paper notes random replacement mainly as an *analysis* obstacle.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        # Per set: list of tags, most-recently-used first (for LRU);
        # insertion order (for FIFO).
        self.sets = [[] for _ in range(config.num_sets)]
        self.stats = CacheStats()
        # Counters filled by the hierarchy's fast path (hit/miss per
        # access source, in CacheStats field order); folded into
        # ``stats`` by :meth:`flush_fast_counts`.
        self.fast_counts = [0, 0, 0, 0, 0, 0]
        self._victim = 1  # LFSR state for RANDOM

    def reset(self):
        # Clear in place: the fast-path closures built by
        # MemoryHierarchy bind the set lists and counter list directly.
        for ways in self.sets:
            del ways[:]
        self.stats = CacheStats()
        for i in range(6):
            self.fast_counts[i] = 0
        self._victim = 1

    def flush_fast_counts(self):
        """Fold the fast path's plain-int counters into ``stats``."""
        counts = self.fast_counts
        if any(counts):
            stats = self.stats
            stats.fetch_hits += counts[0]
            stats.fetch_misses += counts[1]
            stats.read_hits += counts[2]
            stats.read_misses += counts[3]
            stats.write_hits += counts[4]
            stats.write_misses += counts[5]
            for i in range(6):
                counts[i] = 0

    # -- internals ----------------------------------------------------------

    def _next_victim(self, ways: int) -> int:
        # 8-bit Galois LFSR, deterministic and seed-independent of workload.
        lfsr = self._victim
        lfsr = (lfsr >> 1) ^ (0xB8 if lfsr & 1 else 0)
        self._victim = lfsr or 1
        return self._victim % ways

    def _touch(self, addr: int, allocate: bool) -> bool:
        """Look up *addr*; optionally allocate on miss.  Returns hit."""
        config = self.config
        block = config.block_of(addr)
        index = config.set_index(addr)
        ways = self.sets[index]
        if block in ways:
            if config.replacement == ReplacementPolicy.LRU:
                ways.remove(block)
                ways.insert(0, block)
            return True
        if allocate:
            if len(ways) < config.assoc:
                ways.insert(0, block)
            elif config.replacement == ReplacementPolicy.RANDOM:
                ways[self._next_victim(config.assoc)] = block
            else:  # LRU and FIFO both evict the tail
                ways.pop()
                ways.insert(0, block)
        return False

    # -- public access operations -------------------------------------------

    def access(self, addr: int, kind: str) -> bool:
        """One access of *kind* (``"fetch"``/``"read"``/``"write"``).

        Returns the explicit hit/miss outcome — callers must never infer
        it from cycle counts (cycles are the hierarchy's business).
        """
        if kind == "fetch":
            return self.fetch(addr)
        if kind == "read":
            return self.read(addr)
        if kind == "write":
            return self.write(addr)
        raise ValueError(f"unknown access kind {kind!r}")

    def fetch(self, addr: int) -> bool:
        """Instruction fetch; returns hit and updates state/stats."""
        hit = self._touch(addr, allocate=True)
        if hit:
            self.stats.fetch_hits += 1
        else:
            self.stats.fetch_misses += 1
        return hit

    def read(self, addr: int) -> bool:
        """Data read; returns hit and updates state/stats."""
        hit = self._touch(addr, allocate=True)
        if hit:
            self.stats.read_hits += 1
        else:
            self.stats.read_misses += 1
        return hit

    def write(self, addr: int) -> bool:
        """Data write (write-through, no allocate); returns hit."""
        hit = self._touch(addr, allocate=False)
        if hit:
            self.stats.write_hits += 1
        else:
            self.stats.write_misses += 1
        return hit

    def contains(self, addr: int) -> bool:
        """Non-mutating lookup (for tests and assertions)."""
        config = self.config
        return config.block_of(addr) in self.sets[config.set_index(addr)]
