"""System configurations and the simulator-facing memory hierarchy.

A :class:`SystemConfig` is one point in the paper's design space:

* ``SystemConfig.scratchpad(n)`` — *n* bytes of SPM plus main memory
  (the paper's left branch, Figure 1);
* ``SystemConfig.cached(cfg)`` — main memory behind a unified cache
  (the right branch);
* ``SystemConfig.uncached()`` — main memory only (baseline / 0-byte SPM).

:class:`MemoryHierarchy` turns a config into a stateful cycle model the
simulator queries once per access.  The WCET analyser uses the same
:class:`~repro.memory.timing.AccessTiming` constants and
:class:`~repro.memory.cache.CacheConfig` geometry, so simulation and
analysis share one machine model by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cache import Cache, CacheConfig
from .regions import MemoryMap, RegionKind
from .timing import CACHE_HIT_CYCLES, AccessTiming


@dataclass(frozen=True)
class SystemConfig:
    """One memory-hierarchy configuration under study."""

    name: str
    spm_size: int = 0
    cache: Optional[CacheConfig] = None
    timing: AccessTiming = AccessTiming.table1()

    def __post_init__(self):
        if self.spm_size and self.cache is not None:
            raise ValueError(
                "the paper's systems have either a scratchpad or a cache")

    @classmethod
    def scratchpad(cls, spm_size: int, timing=None) -> "SystemConfig":
        return cls(name=f"spm{spm_size}", spm_size=spm_size,
                   timing=timing or AccessTiming.table1())

    @classmethod
    def cached(cls, cache: CacheConfig, timing=None) -> "SystemConfig":
        return cls(name=f"cache{cache.size}", cache=cache,
                   timing=timing or AccessTiming.table1())

    @classmethod
    def uncached(cls, timing=None) -> "SystemConfig":
        return cls(name="uncached", timing=timing or AccessTiming.table1())

    def memory_map(self) -> MemoryMap:
        if self.spm_size:
            return MemoryMap.with_spm(self.spm_size)
        return MemoryMap.main_only()

    def describe(self) -> str:
        if self.spm_size:
            return f"{self.spm_size} B scratchpad + main memory"
        if self.cache is not None:
            return self.cache.describe() + " + main memory"
        return "main memory only"


class MemoryHierarchy:
    """Stateful per-access cycle model used by the simulator."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.memory_map = config.memory_map()
        self.timing = config.timing
        self.cache = Cache(config.cache) if config.cache else None
        self._spm = self.memory_map.spm_region
        self._miss_cycles = (
            self.timing.line_fill_cycles(config.cache.line_size)
            if config.cache else 0)

    def reset(self):
        if self.cache:
            self.cache.reset()

    def fetch_cycles(self, addr: int) -> int:
        """Cycles for a 16-bit instruction fetch at *addr*."""
        if self._spm is not None and self._spm.contains(addr):
            return self.timing.cycles(RegionKind.SPM, 2)
        if self.cache is not None:
            if self.cache.fetch(addr):
                return CACHE_HIT_CYCLES
            return self._miss_cycles
        return self.timing.cycles(RegionKind.MAIN, 2)

    def read_cycles(self, addr: int, width: int) -> int:
        """Cycles for a data read of *width* bytes at *addr*."""
        if self._spm is not None and self._spm.contains(addr):
            return self.timing.cycles(RegionKind.SPM, width)
        if self.cache is not None and self.config.cache.unified:
            if self.cache.read(addr):
                return CACHE_HIT_CYCLES
            return self._miss_cycles
        return self.timing.cycles(RegionKind.MAIN, width)

    def write_cycles(self, addr: int, width: int) -> int:
        """Cycles for a data write of *width* bytes at *addr*."""
        if self._spm is not None and self._spm.contains(addr):
            return self.timing.cycles(RegionKind.SPM, width)
        if self.cache is not None and self.config.cache.unified:
            # Write-through, no allocate: pay the memory cost; keep tags
            # informed so later reads of a resident line still hit.
            self.cache.write(addr)
            return self.timing.cycles(RegionKind.MAIN, width)
        return self.timing.cycles(RegionKind.MAIN, width)

    @property
    def cache_stats(self):
        return self.cache.stats if self.cache else None
