"""System configurations and the simulator-facing memory hierarchy.

A :class:`SystemConfig` is one point in the design space.  The paper's
own three systems keep their dedicated constructors:

* ``SystemConfig.scratchpad(n)`` — *n* bytes of SPM plus main memory
  (the paper's left branch, Figure 1);
* ``SystemConfig.cached(cfg)`` — main memory behind a unified cache
  (the right branch);
* ``SystemConfig.uncached()`` — main memory only (baseline / 0-byte SPM).

Beyond the paper, a config is an ordered **level pipeline**
(:mod:`repro.memory.levels`): an optional SPM region, any number of
cache levels (unified, instruction-only, or split I/D), then main
memory.  The future-work shapes get constructors too:

* ``SystemConfig.hybrid(spm, cache)`` — SPM with a cache behind it;
* ``SystemConfig.two_level(l1, l2)`` — an L2 behind the L1;
* ``SystemConfig.split_l1(icache, dcache)`` — separate I/D caches;
* ``SystemConfig.with_levels(name, levels)`` — anything else.

:class:`MemoryHierarchy` turns a config into a stateful cycle model the
simulator queries once per access; every query returns an explicit
:class:`~repro.memory.levels.Access` outcome (cycles, hit/miss, serving
level).  The WCET analyser walks the *same* level specs and the same
:func:`~repro.memory.levels.serve_costs` table, so simulation and
analysis share one machine model by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .cache import Cache, CacheConfig, ReplacementPolicy
from .levels import (
    Access,
    CacheLevel,
    MainMemoryLevel,
    SpmLevel,
    cache_levels,
    data_path,
    fetch_path,
    level_labels,
    path_geometry,
    serve_costs,
    spm_level,
    validate_levels,
)
from .regions import MemoryMap, RegionKind
from .timing import AccessTiming


@dataclass(frozen=True)
class SystemConfig:
    """One memory-hierarchy configuration under study.

    ``levels`` is the authoritative description.  When it is omitted the
    legacy fields build the paper's shapes (and combining ``spm_size``
    with ``cache`` is rejected, exactly as before — hybrids must be
    spelled out via :meth:`hybrid` or ``levels``).  When ``levels`` is
    given, ``spm_size`` and ``cache`` are derived mirrors: the SPM
    capacity and the outermost cache config on the fetch (else data)
    path, kept so existing reporting code reads naturally.
    """

    name: str
    spm_size: int = 0
    cache: Optional[CacheConfig] = None
    timing: AccessTiming = AccessTiming.table1()
    levels: tuple = None

    def __post_init__(self):
        if self.levels is None:
            if self.spm_size and self.cache is not None:
                raise ValueError(
                    "the paper's systems have either a scratchpad or a "
                    "cache; build hybrids with SystemConfig.hybrid() or "
                    "an explicit level pipeline")
            derived = []
            if self.spm_size:
                derived.append(SpmLevel(self.spm_size))
            if self.cache is not None:
                if self.cache.unified:
                    derived.append(CacheLevel.unified(self.cache))
                else:
                    derived.append(CacheLevel.instruction(self.cache))
            derived.append(MainMemoryLevel())
            object.__setattr__(self, "levels", tuple(derived))
        else:
            levels = tuple(self.levels)
            validate_levels(levels)
            object.__setattr__(self, "levels", levels)
            spm = spm_level(levels)
            object.__setattr__(self, "spm_size", spm.size if spm else 0)
            caches = cache_levels(levels)
            primary = None
            if caches:
                primary = caches[0].icache or caches[0].dcache
            object.__setattr__(self, "cache", primary)

    # -- the paper's systems -------------------------------------------------

    @classmethod
    def scratchpad(cls, spm_size: int, timing=None) -> "SystemConfig":
        return cls(name=f"spm{spm_size}", spm_size=spm_size,
                   timing=timing or AccessTiming.table1())

    @classmethod
    def cached(cls, cache: CacheConfig, timing=None) -> "SystemConfig":
        return cls(name=f"cache{cache.size}", cache=cache,
                   timing=timing or AccessTiming.table1())

    @classmethod
    def uncached(cls, timing=None) -> "SystemConfig":
        return cls(name="uncached", timing=timing or AccessTiming.table1())

    # -- deeper pipelines (the future-work shapes) ---------------------------

    @classmethod
    def with_levels(cls, name: str, levels, timing=None) -> "SystemConfig":
        return cls(name=name, levels=tuple(levels),
                   timing=timing or AccessTiming.table1())

    @classmethod
    def hybrid(cls, spm_size: int, cache: CacheConfig,
               timing=None) -> "SystemConfig":
        """Scratchpad in front, a cache behind it for the rest."""
        level = (CacheLevel.unified(cache) if cache.unified
                 else CacheLevel.instruction(cache))
        return cls.with_levels(
            f"spm{spm_size}+cache{cache.size}",
            (SpmLevel(spm_size), level, MainMemoryLevel()), timing)

    @classmethod
    def two_level(cls, l1: CacheConfig, l2: CacheConfig, timing=None,
                  l2_hit_cycles: int = None) -> "SystemConfig":
        """L1 (unified or instruction-only) backed by a unified L2."""
        first = (CacheLevel.unified(l1) if l1.unified
                 else CacheLevel.instruction(l1))
        kwargs = {}
        if l2_hit_cycles is not None:
            kwargs["hit_cycles"] = l2_hit_cycles
        second = CacheLevel.unified(l2, name="L2", **kwargs)
        prefix = "cache" if l1.unified else "icache"
        return cls.with_levels(
            f"{prefix}{l1.size}+l2-{l2.size}",
            (first, second, MainMemoryLevel()), timing)

    @classmethod
    def split_l1(cls, icache: CacheConfig, dcache: CacheConfig,
                 timing=None) -> "SystemConfig":
        """Separate L1 instruction and data caches."""
        return cls.with_levels(
            f"i{icache.size}+d{dcache.size}",
            (CacheLevel.split(icache, dcache), MainMemoryLevel()), timing)

    # -- views ---------------------------------------------------------------

    @property
    def cache_level_specs(self):
        return cache_levels(self.levels)

    @property
    def has_cache(self) -> bool:
        return bool(self.cache_level_specs)

    def fetch_path(self):
        return fetch_path(self.levels)

    def data_path(self):
        return data_path(self.levels)

    def memory_map(self) -> MemoryMap:
        if self.spm_size:
            return MemoryMap.with_spm(self.spm_size)
        return MemoryMap.main_only()

    def describe(self) -> str:
        parts = []
        for level in self.levels:
            if isinstance(level, SpmLevel):
                parts.append(f"{level.size} B scratchpad")
            elif isinstance(level, CacheLevel):
                parts.append(level.describe())
        parts.append("main memory")
        if len(parts) == 1:
            return "main memory only"
        return " + ".join(parts)


class MemoryHierarchy:
    """Stateful per-access cycle model used by the simulator.

    Each cache level gets its own tag array (one shared array for a
    unified level, two for split I/D).  An access walks its path
    outermost-in until some level hits (or main memory serves it) and
    returns a precomputed :class:`Access` outcome whose cycle count
    comes from :func:`~repro.memory.levels.serve_costs` — the very table
    the WCET cost model prices misses with.
    """

    def __init__(self, config: SystemConfig):
        self.config = config
        self.memory_map = config.memory_map()
        self.timing = config.timing
        self._spm = self.memory_map.spm_region

        # Physical caches: one per unified level, two per split level.
        self.caches = {}  # display name -> Cache
        self._fetch_chain = []  # [(Cache, level name)]
        self._data_chain = []
        for level in config.cache_level_specs:
            labels = iter(level_labels(level))
            if level.shared:
                cache = Cache(level.icache)
                self.caches[next(labels)] = cache
                self._fetch_chain.append(cache)
                self._data_chain.append(cache)
                continue
            if level.icache is not None:
                cache = Cache(level.icache)
                self.caches[next(labels)] = cache
                self._fetch_chain.append(cache)
            if level.dcache is not None:
                cache = Cache(level.dcache)
                self.caches[next(labels)] = cache
                self._data_chain.append(cache)

        # Legacy single-cache view (simulator flags, cache_stats).
        self.cache = next(iter(self.caches.values()), None)

        timing = self.timing
        fetch_levels = config.fetch_path()
        data_levels = config.data_path()
        fetch_serve = serve_costs(path_geometry(fetch_levels, "i"), timing)
        data_serve = serve_costs(path_geometry(data_levels, "d"), timing)

        def outcomes(path_levels, serve):
            out = []
            for idx, cost in enumerate(serve):
                if idx < len(path_levels):
                    served = path_levels[idx].name
                else:
                    served = "main"
                out.append(Access(cost, idx > 0, served))
            return out

        self._fetch_out = outcomes(fetch_levels, fetch_serve)
        self._data_out = outcomes(data_levels, data_serve)
        spm_kind, main_kind = RegionKind.SPM, RegionKind.MAIN
        self._spm_out = {
            width: Access(timing.cycles(spm_kind, width), False, "spm")
            for width in (1, 2, 4)}
        self._main_out = {
            width: Access(timing.cycles(main_kind, width), False, "main")
            for width in (1, 2, 4)}

    def reset(self):
        for cache in self.caches.values():
            cache.reset()

    # -- access outcomes -----------------------------------------------------

    def fetch(self, addr: int) -> Access:
        """Outcome of a 16-bit instruction fetch at *addr*."""
        spm = self._spm
        if spm is not None and spm.contains(addr):
            return self._spm_out[2]
        chain = self._fetch_chain
        if not chain:
            return self._main_out[2]
        for idx, cache in enumerate(chain):
            if cache.fetch(addr):
                return self._fetch_out[idx]
        return self._fetch_out[len(chain)]

    def read(self, addr: int, width: int) -> Access:
        """Outcome of a data read of *width* bytes at *addr*."""
        spm = self._spm
        if spm is not None and spm.contains(addr):
            return self._spm_out[width]
        chain = self._data_chain
        if not chain:
            return self._main_out[width]
        for idx, cache in enumerate(chain):
            if cache.read(addr):
                return self._data_out[idx]
        return self._data_out[len(chain)]

    def write(self, addr: int, width: int) -> Access:
        """Outcome of a data write of *width* bytes at *addr*.

        Write-through, no allocate, at every level: the store pays the
        main-memory cost for its width; each level on the data path
        keeps its tags informed so resident lines stay warm.
        """
        spm = self._spm
        if spm is not None and spm.contains(addr):
            return self._spm_out[width]
        for cache in self._data_chain:
            cache.write(addr)
        return self._main_out[width]

    # -- legacy cycle-count helpers ------------------------------------------

    def fetch_cycles(self, addr: int) -> int:
        """Cycles for a 16-bit instruction fetch at *addr*."""
        return self.fetch(addr).cycles

    def read_cycles(self, addr: int, width: int) -> int:
        """Cycles for a data read of *width* bytes at *addr*."""
        return self.read(addr, width).cycles

    def write_cycles(self, addr: int, width: int) -> int:
        """Cycles for a data write of *width* bytes at *addr*."""
        return self.write(addr, width).cycles

    # -- fast path -----------------------------------------------------------
    #
    # The allocating accessors above return an Access object per query —
    # fine for the recording engine (profile / record_misses runs), far
    # too slow for the hot loop.  The factories below compile the same
    # machine model into closures that return *plain int* cycle counts
    # from precomputed SPM/main cost tables and the flat per-set tag
    # lists, updating each cache's ``fast_counts`` instead of its
    # CacheStats (call :meth:`flush_fast_stats` when a run finishes).
    # Tag-array behaviour is bit-identical to Cache.fetch/read/write.

    def _spm_end(self) -> int:
        return self._spm.end if self._spm is not None else 0

    def _make_touch(self, cache: Cache, base: int):
        """``touch(block, index) -> hit`` matching ``Cache._touch`` with
        ``allocate=True``; *base* indexes the hit counter (miss is
        ``base + 1``)."""
        config = cache.config
        sets = cache.sets
        counts = cache.fast_counts
        assoc = config.assoc
        lru = config.replacement == ReplacementPolicy.LRU
        rnd = config.replacement == ReplacementPolicy.RANDOM
        hit_i, miss_i = base, base + 1
        if assoc == 1:
            def touch(block, index):
                ways = sets[index]
                if ways and ways[0] == block:
                    counts[hit_i] += 1
                    return True
                if ways:
                    ways[0] = block
                else:
                    ways.append(block)
                counts[miss_i] += 1
                return False
        else:
            def touch(block, index):
                ways = sets[index]
                if block in ways:
                    if lru and ways[0] != block:
                        ways.remove(block)
                        ways.insert(0, block)
                    counts[hit_i] += 1
                    return True
                if len(ways) < assoc:
                    ways.insert(0, block)
                elif rnd:
                    ways[cache._next_victim(assoc)] = block
                else:  # LRU and FIFO both evict the tail
                    ways.pop()
                    ways.insert(0, block)
                counts[miss_i] += 1
                return False
        return touch

    def _make_write_touch(self, cache: Cache):
        """``touch(block, index)`` matching ``Cache.write`` (write-
        through, no allocate): refresh a resident line, count the rest."""
        sets = cache.sets
        counts = cache.fast_counts
        lru = cache.config.replacement == ReplacementPolicy.LRU

        def touch(block, index):
            ways = sets[index]
            if block in ways:
                if lru and ways[0] != block:
                    ways.remove(block)
                    ways.insert(0, block)
                counts[4] += 1
            else:
                counts[5] += 1
        return touch

    def fetch_fast_factory(self):
        """``make(addr) -> (() -> cycles)`` for 16-bit fetches at *addr*.

        The per-address factory folds the set index and block tag into
        the closure as constants, so the hot path is one list index and
        one compare for the common direct-mapped hit.
        """
        spm_end = self._spm_end()
        spm_cost = self._spm_out[2].cycles
        main_cost = self._main_out[2].cycles
        chain = self._fetch_chain
        costs = [out.cycles for out in self._fetch_out]

        if not chain:
            def make(addr):
                cost = spm_cost if 0 <= addr < spm_end else main_cost

                def fetch():
                    return cost
                return fetch
            return make

        geometry = [(c.config.line_size, c.config.num_sets) for c in chain]

        if len(chain) == 1 and chain[0].config.assoc == 1:
            cache = chain[0]
            sets = cache.sets
            counts = cache.fast_counts
            line, nsets = geometry[0]
            hit_cost, miss_cost = costs[0], costs[1]

            def make(addr):
                if 0 <= addr < spm_end:
                    def fetch():
                        return spm_cost
                    return fetch
                block = addr // line
                index = block % nsets

                def fetch():
                    ways = sets[index]
                    if ways and ways[0] == block:
                        counts[0] += 1
                        return hit_cost
                    if ways:
                        ways[0] = block
                    else:
                        ways.append(block)
                    counts[1] += 1
                    return miss_cost
                return fetch
            return make

        touches = [self._make_touch(cache, 0) for cache in chain]
        miss_cost = costs[len(chain)]

        def make(addr):
            if 0 <= addr < spm_end:
                def fetch():
                    return spm_cost
                return fetch
            pairs = [(addr // line, (addr // line) % nsets)
                     for line, nsets in geometry]
            touch0 = touches[0]
            block0, index0 = pairs[0]
            hit_cost = costs[0]
            deeper = tuple(
                (touches[i], pairs[i][0], pairs[i][1], costs[i])
                for i in range(1, len(touches)))

            def fetch():
                if touch0(block0, index0):
                    return hit_cost
                for touch, block, index, cost in deeper:
                    if touch(block, index):
                        return cost
                return miss_cost
            return fetch
        return make

    def data_fast_ops(self):
        """``(dread(addr, width), dwrite(addr, width))`` plain-int ops."""
        spm_end = self._spm_end()
        # Width-indexed cost tables (widths are 1, 2, 4).
        spm_tab = [None] * 5
        main_tab = [None] * 5
        for width in (1, 2, 4):
            spm_tab[width] = self._spm_out[width].cycles
            main_tab[width] = self._main_out[width].cycles
        chain = self._data_chain
        costs = [out.cycles for out in self._data_out]

        if not chain:
            if spm_end:
                def dread(addr, width):
                    return (spm_tab[width] if 0 <= addr < spm_end
                            else main_tab[width])
                dwrite = dread
            else:
                def dread(addr, width):
                    return main_tab[width]
                dwrite = dread
            return dread, dwrite

        write_touches = [self._make_write_touch(cache) for cache in chain]
        wgeometry = [(c.config.line_size, c.config.num_sets) for c in chain]

        if len(chain) == 1 and chain[0].config.assoc == 1:
            cache = chain[0]
            sets = cache.sets
            counts = cache.fast_counts
            line, nsets = wgeometry[0]
            hit_cost, miss_cost = costs[0], costs[1]

            def dread(addr, width):
                if 0 <= addr < spm_end:
                    return spm_tab[width]
                block = addr // line
                ways = sets[block % nsets]
                if ways and ways[0] == block:
                    counts[2] += 1
                    return hit_cost
                if ways:
                    ways[0] = block
                else:
                    ways.append(block)
                counts[3] += 1
                return miss_cost
        else:
            touches = [self._make_touch(cache, 2) for cache in chain]
            geometry = wgeometry
            deep_miss = costs[len(chain)]

            def dread(addr, width):
                if 0 <= addr < spm_end:
                    return spm_tab[width]
                depth = 0
                for touch, (line, nsets) in zip(touches, geometry):
                    block = addr // line
                    if touch(block, block % nsets):
                        return costs[depth]
                    depth += 1
                return deep_miss

        if len(chain) == 1:
            wtouch = write_touches[0]
            wline, wnsets = wgeometry[0]

            def dwrite(addr, width):
                if 0 <= addr < spm_end:
                    return spm_tab[width]
                block = addr // wline
                wtouch(block, block % wnsets)
                return main_tab[width]
        else:
            wpairs = tuple(zip(write_touches, wgeometry))

            def dwrite(addr, width):
                if 0 <= addr < spm_end:
                    return spm_tab[width]
                for touch, (line, nsets) in wpairs:
                    block = addr // line
                    touch(block, block % nsets)
                return main_tab[width]

        return dread, dwrite

    def flush_fast_stats(self):
        """Fold every cache's fast-path counters into its CacheStats."""
        for cache in self.caches.values():
            cache.flush_fast_counts()

    # -- statistics ----------------------------------------------------------

    @property
    def cache_stats(self):
        """Stats of the outermost cache (the paper's single-cache view)."""
        return self.cache.stats if self.cache else None

    @property
    def level_stats(self):
        """Hit/miss counters for every physical cache, by level name."""
        return {name: cache.stats for name, cache in self.caches.items()}
