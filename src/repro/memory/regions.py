"""Memory map: address regions with distinct timing attributes.

The modelled platform follows the paper's ATMEL AT91EB01-style layout:

* an optional scratchpad (SPM) mapped at the bottom of the address space —
  small, one cycle per access regardless of width;
* main memory at :data:`MAIN_BASE` — 16-bit wide, so 8/16-bit accesses take
  2 cycles and 32-bit accesses take 4 (Table 1);
* the stack at the top of main memory.

The paper's systems have either a scratchpad *or* a unified cache in
front of main memory; the level pipeline of
:class:`~repro.memory.hierarchy.SystemConfig` generalises this to any
ordered combination (hybrid SPM+cache, L1+L2, split I/D).  The address
*map* stays the same either way: caches are transparent, only the SPM
occupies address space.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Base address of the scratchpad region (when present).
SPM_BASE = 0x0000_0000

#: Base address of main memory.
MAIN_BASE = 0x0010_0000

#: Size of main memory in bytes (1 MiB: benchmarks + stack fit easily).
MAIN_SIZE = 0x0010_0000

#: Initial stack pointer (top of main memory, grows downwards).
STACK_TOP = MAIN_BASE + MAIN_SIZE


class RegionKind:
    """Region categories with distinct timing behaviour."""

    SPM = "spm"
    MAIN = "main"


@dataclass(frozen=True)
class Region:
    """One contiguous address range with uniform attributes."""

    name: str
    base: int
    size: int
    kind: str

    @property
    def end(self) -> int:
        """First address past the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class MemoryMap:
    """An ordered, non-overlapping set of regions."""

    def __init__(self, regions):
        self.regions = sorted(regions, key=lambda r: r.base)
        for left, right in zip(self.regions, self.regions[1:]):
            if left.overlaps(right):
                raise ValueError(
                    f"overlapping regions {left.name!r} and {right.name!r}")

    @classmethod
    def with_spm(cls, spm_size: int) -> "MemoryMap":
        """Scratchpad system: SPM at 0, main memory above."""
        regions = []
        if spm_size:
            regions.append(Region("scratchpad", SPM_BASE, spm_size,
                                  RegionKind.SPM))
        regions.append(Region("main", MAIN_BASE, MAIN_SIZE, RegionKind.MAIN))
        return cls(regions)

    @classmethod
    def main_only(cls) -> "MemoryMap":
        """Cache (or uncached) system: main memory only."""
        return cls.with_spm(0)

    def region_at(self, addr: int):
        """Return the region containing *addr*, or None."""
        for region in self.regions:
            if region.contains(addr):
                return region
        return None

    def kind_at(self, addr: int) -> str:
        region = self.region_at(addr)
        if region is None:
            raise ValueError(f"access outside mapped memory: {addr:#x}")
        return region.kind

    @property
    def spm_region(self):
        for region in self.regions:
            if region.kind == RegionKind.SPM:
                return region
        return None
