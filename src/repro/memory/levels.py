"""Composable memory-level pipeline shared by simulator and analyser.

The paper's experimental hardware offers exactly two hierarchies —
"SPM + main memory" or "one unified cache + main memory".  Its future-work
section (and Hardy & Puaut's multi-level extension of the MUST analysis)
asks what happens to predictability when the hierarchy deepens.  This
module is the answer's foundation: a :class:`~repro.memory.hierarchy.
SystemConfig` now carries an ordered *level pipeline*

    [optional SPM region] -> [cache levels L1, L2, ...] -> main memory

where each cache level may be unified, instruction-only, or split I/D,
and may sit behind a scratchpad (hybrid configurations).

Two consumers share the declarative specs below:

* :class:`~repro.memory.hierarchy.MemoryHierarchy` builds stateful
  per-level tag arrays for the simulator;
* :class:`~repro.wcet.costmodel.CostModel` walks the same specs to price
  worst-case accesses, using the *same* :func:`serve_costs` table.

Because both sides read one cost table, the simulator and the WCET
analyser cannot disagree about what a hit or a miss at any depth costs —
the single-model property the paper attributes to keeping simulation and
aiT on one machine description.

Fill cost model (write-through, no-allocate at every level, no bursts):

* a hit at level *k* costs that level's ``hit_cycles``;
* a miss at levels ``0..s-1`` served at level *s* refills each missed
  level's line from the level below it: word transfers at the supplier's
  ``hit_cycles`` between caches, and the paper's Table-1 line fill
  (``line_size/4`` word accesses) from main memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .cache import CacheConfig
from .timing import CACHE_HIT_CYCLES, AccessTiming


@dataclass(frozen=True)
class SpmLevel:
    """A scratchpad region at the bottom of the address space.

    Accesses inside the region complete at SPM speed and never touch the
    cache levels behind it; everything else falls through the pipeline.
    """

    size: int
    name: str = "spm"

    def __post_init__(self):
        if self.size <= 0:
            raise ValueError("scratchpad level needs a positive size")


@dataclass(frozen=True)
class CacheLevel:
    """One cache level: unified, instruction-only, or split I/D.

    ``icache`` serves instruction fetches, ``dcache`` serves data reads
    and writes.  ``shared=True`` means both point at one physical array
    (a unified cache); split I/D levels carry two independent configs.
    ``hit_cycles`` is the per-word latency of this level — L1 keeps the
    paper's 1-cycle hit, a deeper level may be slower.
    """

    name: str
    icache: Optional[CacheConfig] = None
    dcache: Optional[CacheConfig] = None
    shared: bool = False
    hit_cycles: int = CACHE_HIT_CYCLES

    def __post_init__(self):
        if self.icache is None and self.dcache is None:
            raise ValueError(f"cache level {self.name!r} serves nothing")
        if self.shared and self.icache is not self.dcache:
            raise ValueError(
                f"shared cache level {self.name!r} must use one config")
        if self.hit_cycles <= 0:
            raise ValueError("hit_cycles must be positive")

    @classmethod
    def unified(cls, config: CacheConfig, name: str = "L1",
                hit_cycles: int = CACHE_HIT_CYCLES) -> "CacheLevel":
        return cls(name=name, icache=config, dcache=config, shared=True,
                   hit_cycles=hit_cycles)

    @classmethod
    def instruction(cls, config: CacheConfig, name: str = "L1",
                    hit_cycles: int = CACHE_HIT_CYCLES) -> "CacheLevel":
        return cls(name=name, icache=config, hit_cycles=hit_cycles)

    @classmethod
    def split(cls, icache: CacheConfig, dcache: CacheConfig,
              name: str = "L1",
              hit_cycles: int = CACHE_HIT_CYCLES) -> "CacheLevel":
        return cls(name=name, icache=icache, dcache=dcache,
                   hit_cycles=hit_cycles)

    def describe(self) -> str:
        # The default L1 keeps the paper's phrasing (no level prefix);
        # deeper and split levels name themselves.
        if self.shared or self.dcache is None or self.icache is None:
            config = self.icache if self.icache is not None else self.dcache
            prefix = "" if self.name == "L1" else f"{self.name} "
            return prefix + config.describe()
        return (f"{self.name}I {self.icache.describe()} / "
                f"{self.name}D {self.dcache.describe()}")


@dataclass(frozen=True)
class MainMemoryLevel:
    """The terminal backing store (the paper's 16-bit main memory)."""

    name: str = "main"


def validate_levels(levels: Tuple) -> None:
    """Check that *levels* forms a legal pipeline.

    Rules: exactly one :class:`MainMemoryLevel`, last; at most one
    :class:`SpmLevel`, first; cache levels in between with line sizes
    non-decreasing (and divisible) along each of the fetch and data
    paths, so one lookup in a deeper level always covers a shallower
    level's refill.
    """
    if not levels or not isinstance(levels[-1], MainMemoryLevel):
        raise ValueError("level pipeline must end at main memory")
    body = levels[:-1]
    for level in body:
        if isinstance(level, MainMemoryLevel):
            raise ValueError("main memory must be the last level")
    spms = [lvl for lvl in body if isinstance(lvl, SpmLevel)]
    if len(spms) > 1:
        raise ValueError("at most one scratchpad level")
    if spms and not isinstance(body[0], SpmLevel):
        raise ValueError("the scratchpad must be the outermost level")
    caches = [lvl for lvl in body if isinstance(lvl, CacheLevel)]
    if len(caches) + len(spms) != len(body):
        raise ValueError(f"unknown level kinds in {body!r}")
    labels = [label for lvl in caches for label in level_labels(lvl)]
    if len(labels) != len(set(labels)):
        raise ValueError(f"cache level names must be unique: {labels}")
    for side in ("icache", "dcache"):
        path = [getattr(lvl, side) for lvl in caches
                if getattr(lvl, side) is not None]
        for outer, inner in zip(path, path[1:]):
            if inner.line_size % outer.line_size:
                raise ValueError(
                    "deeper cache lines must be a multiple of the "
                    f"shallower level's ({outer.line_size} -> "
                    f"{inner.line_size})")


def level_labels(level: CacheLevel) -> Tuple[str, ...]:
    """Display labels of a level's physical caches (``L1`` or
    ``L1I``/``L1D`` for a split level) — the keys of
    :attr:`~repro.memory.hierarchy.MemoryHierarchy.level_stats`."""
    if level.shared or level.dcache is None or level.icache is None:
        return (level.name,)
    return (f"{level.name}I", f"{level.name}D")


def cache_levels(levels: Tuple) -> Tuple[CacheLevel, ...]:
    """The cache levels of a pipeline, outermost first."""
    return tuple(lvl for lvl in levels if isinstance(lvl, CacheLevel))


def spm_level(levels: Tuple) -> Optional[SpmLevel]:
    for lvl in levels:
        if isinstance(lvl, SpmLevel):
            return lvl
    return None


def fetch_path(levels: Tuple) -> Tuple[CacheLevel, ...]:
    """Cache levels an instruction fetch traverses, outermost first."""
    return tuple(lvl for lvl in cache_levels(levels)
                 if lvl.icache is not None)


def data_path(levels: Tuple) -> Tuple[CacheLevel, ...]:
    """Cache levels a data access traverses, outermost first."""
    return tuple(lvl for lvl in cache_levels(levels)
                 if lvl.dcache is not None)


def path_geometry(path, side: str):
    """``(line_size, hit_cycles)`` per level of one access path."""
    attr = "icache" if side == "i" else "dcache"
    return tuple((getattr(lvl, attr).line_size, lvl.hit_cycles)
                 for lvl in path)


def serve_costs(geometry, timing: AccessTiming):
    """Cycle cost of an access by the level that ends up serving it.

    *geometry* is a ``(line_size, hit_cycles)`` sequence for the cache
    levels of one path, outermost first.  Returns a list ``costs`` of
    length ``len(geometry) + 1`` where ``costs[s]`` is the total cycles
    when the access misses levels ``0..s-1`` and is served at level *s*
    (``s == len(geometry)`` meaning main memory).  ``costs[0]`` is a
    plain level-0 hit.

    With a single cache this reproduces the paper's numbers exactly:
    ``[1, 16]`` for a 16-byte line over Table-1 main memory.
    """
    n = len(geometry)
    if n == 0:
        return []
    costs = [geometry[0][1]]
    for serving in range(1, n + 1):
        total = 0
        for i in range(serving):
            line_size = geometry[i][0]
            if i + 1 == n and serving == n:
                total += timing.line_fill_cycles(line_size)
            else:
                total += (line_size // 4) * geometry[i + 1][1]
        costs.append(total)
    return costs


class Access:
    """Explicit outcome of one memory access.

    Replaces the old convention of callers inferring a miss from
    ``cycles > CACHE_HIT_CYCLES``: the hierarchy states what happened.
    ``missed`` is True iff at least one cache level on the access path
    missed; ``served_by`` names the level that supplied the data.
    """

    __slots__ = ("cycles", "missed", "served_by")

    def __init__(self, cycles: int, missed: bool, served_by: str):
        self.cycles = cycles
        self.missed = missed
        self.served_by = served_by

    def __repr__(self):
        state = "miss" if self.missed else "hit"
        return (f"Access({self.cycles} cycles, {state}, "
                f"served by {self.served_by})")
