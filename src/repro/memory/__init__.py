"""Memory system: regions, Table-1 timing, cache models, hierarchies."""

from .regions import (
    MAIN_BASE,
    MAIN_SIZE,
    SPM_BASE,
    STACK_TOP,
    MemoryMap,
    Region,
    RegionKind,
)
from .timing import (
    BRANCH_REFILL_CYCLES,
    CACHE_HIT_CYCLES,
    MAIN_CYCLES,
    SPM_CYCLES,
    AccessTiming,
    instruction_extra_cycles,
)
from .cache import Cache, CacheConfig, CacheStats, ReplacementPolicy
from .levels import (
    Access,
    CacheLevel,
    MainMemoryLevel,
    SpmLevel,
    serve_costs,
    validate_levels,
)
from .hierarchy import MemoryHierarchy, SystemConfig

__all__ = [
    "MAIN_BASE", "MAIN_SIZE", "SPM_BASE", "STACK_TOP",
    "MemoryMap", "Region", "RegionKind",
    "BRANCH_REFILL_CYCLES", "CACHE_HIT_CYCLES", "MAIN_CYCLES", "SPM_CYCLES",
    "AccessTiming", "instruction_extra_cycles",
    "Cache", "CacheConfig", "CacheStats", "ReplacementPolicy",
    "Access", "CacheLevel", "MainMemoryLevel", "SpmLevel",
    "serve_costs", "validate_levels",
    "MemoryHierarchy", "SystemConfig",
]
