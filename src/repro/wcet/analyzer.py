"""The WCET analyser driver (the aiT role in the paper's Figure 1).

Pipeline, mirroring the separated cache/path architecture the paper cites
(Ferdinand et al.):

1. CFG reconstruction from the linked binary;
2. stack-depth analysis (bounds sp-relative accesses);
3. for cached systems: interprocedural MUST cache analysis
   (+ optional persistence); for scratchpad systems **nothing** — region
   timing suffices, which is the paper's central observation;
4. bottom-up per-function IPET (callee WCETs fold into call sites;
   recursion is rejected);
5. the program WCET is the entry function's bound.

All repeated work is content-addressed (see ``docs/performance.md``):
the *frontend* (CFG reconstruction, stack analysis, access resolution)
is memoized per image content hash, each cache level's fixpoints go
through :mod:`~repro.wcet.cacheanalysis`'s reuse cache, and per-function
IPET solutions are memoized on their exact inputs (costs, edge extras,
scope penalties).  A sweep that re-analyses one image under many memory
configurations therefore only pays for what actually changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Op
from ..link.image import Image
from ..memory.hierarchy import SystemConfig
from . import cacheanalysis
from .accesses import resolve_all
from .cacheanalysis import FM, analyze_hierarchy
from .cfg import build_all_cfgs
from .costmodel import CostModel
from .ipet import solve_function_ipet
from .loops import resolve_bounds
from .stackdepth import stack_region


class WCETError(Exception):
    pass


#: (image content key, entry) -> (cfgs, entry_by_addr, stack, accesses).
_FRONTEND_CACHE = {}

#: exact IPET inputs -> IPETResult (the solver is deterministic).
_IPET_CACHE = {}

COUNTERS = {
    "frontend_hits": 0,
    "frontend_misses": 0,
    "ipet_hits": 0,
    "ipet_misses": 0,
}


def clear_analysis_caches():
    """Drop every in-memory analysis cache (frontend, IPET, and the
    cache-analysis reuse layer) — cold-start measurement helper."""
    _FRONTEND_CACHE.clear()
    _IPET_CACHE.clear()
    cacheanalysis.clear_analysis_caches()


def analysis_counters() -> dict:
    """Merged cache/interning counters (``repro-cc wcet --profile``).

    Includes the on-disk reuse store's resilience counters
    (``reuse_store_corrupt`` and friends), so silently-impossible
    corruption handling stays observable.
    """
    merged = cacheanalysis.reuse_counters()
    merged.update(COUNTERS)
    return merged


def _frontend(image: Image, entry: str):
    """Memoized CFG + stack + access resolution for one image."""
    key = (image.content_key(), entry)
    front = _FRONTEND_CACHE.get(key)
    if front is not None:
        COUNTERS["frontend_hits"] += 1
        return front
    COUNTERS["frontend_misses"] += 1
    cfgs = build_all_cfgs(image)
    entry_by_addr = {cfg.entry: name for name, cfg in cfgs.items()}
    if entry not in cfgs:
        raise WCETError(f"no function named {entry!r} in the image")
    stack_rng = stack_region(cfgs, entry, entry_by_addr)
    data_accesses = resolve_all(image, cfgs, stack_rng)
    front = (cfgs, entry_by_addr, stack_rng, data_accesses)
    _FRONTEND_CACHE[key] = front
    return front


def _solve_ipet_cached(image_key, name, cfg, block_costs, edge_extras,
                       loops, scope_penalties):
    """Memoized per-function IPET: the CFG and loop bounds are pinned by
    the image content key, so the exact (costs, extras, penalties)
    triple determines the ILP and therefore its solution."""
    key = (image_key, name,
           tuple(sorted(block_costs.items())),
           tuple(sorted(edge_extras.items())),
           tuple(sorted(scope_penalties.items())))
    result = _IPET_CACHE.get(key)
    if result is not None:
        COUNTERS["ipet_hits"] += 1
        return result
    COUNTERS["ipet_misses"] += 1
    result = solve_function_ipet(cfg, block_costs, edge_extras, loops,
                                 scope_penalties)
    _IPET_CACHE[key] = result
    return result


@dataclass
class WCETResult:
    """Outcome of a whole-program WCET analysis."""

    wcet: int
    config: SystemConfig
    per_function: dict = field(default_factory=dict)
    stack_range: tuple = (0, 0)
    #: outermost cache level's classification (the paper's single-cache
    #: view); see ``hierarchy_result`` for the full level pipeline
    cache_result: object = None
    #: per-level classifications (HierarchyCacheResult) for cached configs
    hierarchy_result: object = None
    #: entry function analysed (usually ``_start``)
    entry: str = "_start"
    #: function -> {block addr -> executions per function invocation on
    #: the critical path} (consumed by the WCET-driven allocator)
    block_counts: dict = field(default_factory=dict)
    #: reconstructed CFGs (function name -> FunctionCFG)
    cfgs: dict = field(default_factory=dict)

    def report(self) -> str:
        lines = [f"WCET({self.entry}) = {self.wcet} cycles "
                 f"[{self.config.describe()}]"]
        for name, wcet in sorted(self.per_function.items(),
                                 key=lambda kv: -kv[1]):
            lines.append(f"  {name:24} {wcet:>12}")
        return "\n".join(lines)


def _call_order(cfgs, entry_by_addr, entry: str):
    """Bottom-up (callees first) topological order of the call graph."""
    order = []
    seen = set()

    def visit(name, stack):
        if name in seen:
            return
        if name in stack:
            raise WCETError(f"recursive call chain through {name!r}")
        stack.add(name)
        for callee_addr in cfgs[name].calls:
            callee = entry_by_addr.get(callee_addr)
            if callee is None:
                raise WCETError(
                    f"{name!r} calls unknown address {callee_addr:#x}")
            visit(callee, stack)
        stack.discard(name)
        seen.add(name)
        order.append(name)

    visit(entry, set())
    return order


def analyze_wcet(image: Image, config: SystemConfig, entry: str = "_start",
                 persistence: bool = False,
                 domain: str = "packed") -> WCETResult:
    """Compute a safe WCET bound for *image* under *config*.

    *persistence* enables the optional first-miss cache analysis
    (the paper's "full aiT" ablation); it has no effect on scratchpad or
    uncached systems.  *domain* selects the abstract cache domain —
    ``"packed"`` (the bitset default) or ``"dict"`` (the retained
    reference semantics, used by differential fuzzing).
    """
    # Memoized frontend: CFGs, stack range and every instruction's
    # resolved data access, shared by all levels and the cost model.
    cfgs, entry_by_addr, stack_rng, data_accesses = _frontend(image, entry)
    image_key = image.content_key()

    hierarchy_result = None
    cache_result = None
    if config.has_cache:
        hierarchy_result = analyze_hierarchy(
            image, cfgs, config, stack_rng, entry, persistence=persistence,
            resolved_accesses=data_accesses, domain=domain)
        cache_result = hierarchy_result.primary

    costs = CostModel(config, data_accesses, hierarchy_result)

    per_function = {}
    block_counts = {}
    for name in _call_order(cfgs, entry_by_addr, entry):
        cfg = cfgs[name]
        loops = resolve_bounds(cfg, image.loop_bounds, image.loop_totals)
        block_costs = {}
        edge_extras = {}
        fm_lines = {}  # scope header -> set of first-miss lines
        for baddr, block in cfg.blocks.items():
            total = 0
            for addr, instr in block.instrs:
                base, taken_extra = costs.instr_cost(addr, instr)
                total += base
                if taken_extra:
                    if len(block.succs) >= 2:
                        edge_extras[(baddr, block.succs[0])] = taken_extra
                    else:
                        total += taken_extra  # degenerate bcc
                if cache_result is not None:
                    entry_class = cache_result.classes.get(addr)
                    if entry_class is not None and entry_class.fetch == FM:
                        fm_lines.setdefault(
                            entry_class.fetch_scope, set()).add(
                            config.cache.block_of(addr))
            if block.call_target is not None:
                callee = entry_by_addr[block.call_target]
                total += per_function[callee]
            block_costs[baddr] = total

        scope_penalties = {
            header: len(lines) * costs.fetch_miss_penalty(0)
            for header, lines in fm_lines.items()
        }
        result = _solve_ipet_cached(image_key, name, cfg, block_costs,
                                    edge_extras, loops, scope_penalties)
        per_function[name] = result.wcet
        block_counts[name] = result.block_counts

    return WCETResult(
        wcet=per_function[entry],
        config=config,
        per_function=per_function,
        stack_range=stack_rng,
        cache_result=cache_result,
        hierarchy_result=hierarchy_result,
        entry=entry,
        block_counts=block_counts,
        cfgs=cfgs,
    )
