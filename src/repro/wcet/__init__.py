"""Static WCET analysis (the aiT role in the paper's workflow)."""

from .accesses import DataAccess, resolve_all, resolve_data_access
from .analyzer import (
    WCETError,
    WCETResult,
    analysis_counters,
    analyze_wcet,
    clear_analysis_caches,
)
from .annotations import (
    AnnotationSet,
    MemoryArea,
    format_annotations,
    generate_annotations,
    parse_annotations,
)
from .cacheanalysis import (
    AH,
    FM,
    NC,
    CacheAnalysis,
    CacheAnalysisResult,
    HierarchyCacheResult,
    PackedCacheDomain,
    analyze_hierarchy,
    set_analysis_cache_dir,
)
from .cfg import BasicBlock, CFGError, FunctionCFG, build_all_cfgs, \
    build_function_cfg
from .ipet import IPETError, IPETResult, solve_function_ipet
from .loops import Loop, LoopError, compute_dominators, find_natural_loops, \
    resolve_bounds
from .stackdepth import StackAnalysisError, max_stack_depth, stack_region

__all__ = [
    "DataAccess", "resolve_all", "resolve_data_access",
    "WCETError", "WCETResult", "analyze_wcet",
    "analysis_counters", "clear_analysis_caches",
    "AnnotationSet", "MemoryArea", "format_annotations",
    "generate_annotations", "parse_annotations",
    "AH", "FM", "NC", "CacheAnalysis", "CacheAnalysisResult",
    "HierarchyCacheResult", "PackedCacheDomain", "analyze_hierarchy",
    "set_analysis_cache_dir",
    "BasicBlock", "CFGError", "FunctionCFG", "build_all_cfgs",
    "build_function_cfg",
    "IPETError", "IPETResult", "solve_function_ipet",
    "Loop", "LoopError", "compute_dominators", "find_natural_loops",
    "resolve_bounds",
    "StackAnalysisError", "max_stack_depth", "stack_region",
]
