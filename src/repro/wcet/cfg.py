"""Control-flow graph reconstruction from a linked executable.

Like aiT, the analyser works on the *binary*, not the compiler IR: basic
blocks are rediscovered by decoding reachable instructions from each
function's entry point.  Literal pools are never decoded because control
flow cannot reach them (reconstruction is reachability-driven, not a
linear sweep).

Terminators:

* ``b`` / ``bcc``  — intra-function edges (conditional: two successors);
* ``bl``           — a call; the block gets a fall-through edge and a
  ``call_target`` annotation (callee WCET is added by the analyser);
* ``bx lr`` / ``pop {.., pc}`` — function return (exit block);
* ``swi #0``       — program exit (no successors).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.encoding import IllegalInstruction, decode
from ..isa.opcodes import Op
from ..link.image import Image


class CFGError(Exception):
    """The binary's control flow cannot be reconstructed."""


@dataclass
class BasicBlock:
    """A maximal straight-line instruction sequence."""

    start: int
    instrs: list = field(default_factory=list)   # (addr, Instr) pairs
    succs: list = field(default_factory=list)    # successor block addrs
    #: callee entry address if the block ends in BL
    call_target: int = None
    #: True if the block ends by returning from the function
    is_exit: bool = False

    @property
    def end(self) -> int:
        addr, instr = self.instrs[-1]
        return addr + instr.size

    def __repr__(self):
        return (f"<BB {self.start:#x}..{self.end:#x} "
                f"succs={[hex(s) for s in self.succs]}>")


@dataclass
class FunctionCFG:
    """CFG of one function."""

    name: str
    entry: int
    blocks: dict                     # start addr -> BasicBlock
    calls: set                       # callee entry addresses

    def block_at(self, addr) -> BasicBlock:
        return self.blocks[addr]

    @property
    def exit_blocks(self):
        return [b for b in self.blocks.values() if b.is_exit]

    def edges(self):
        for block in self.blocks.values():
            for succ in block.succs:
                yield block.start, succ


def _decode_function(image: Image, base: int, end: int):
    """Decode reachable instructions in [base, end); returns addr->Instr."""
    instrs = {}
    work = [base]
    while work:
        addr = work.pop()
        if addr in instrs:
            continue
        if not base <= addr < end:
            raise CFGError(
                f"control flow leaves function at {addr:#x} "
                f"(function {base:#x}..{end:#x})")
        halfword = image.read_halfword(addr)
        nxt = image.read_halfword(addr + 2) if addr + 2 < end else None
        try:
            instr = decode(halfword, addr, nxt)
        except IllegalInstruction as exc:
            raise CFGError(f"cannot decode instruction: {exc}") from exc
        instrs[addr] = instr
        op = instr.op
        if op is Op.B:
            work.append(instr.target)
        elif op is Op.BCC:
            work.append(instr.target)
            work.append(addr + instr.size)
        elif op is Op.BL:
            work.append(addr + instr.size)  # call returns here
        elif op is Op.BX:
            if instr.rm != 14:
                raise CFGError(
                    f"indirect branch bx r{instr.rm} at {addr:#x} "
                    "is not analysable")
            # return: no successors
        elif op is Op.POP and instr.with_link:
            pass  # return
        elif op is Op.SWI and instr.imm == 0:
            pass  # program exit
        else:
            work.append(addr + instr.size)
    return instrs


def build_function_cfg(image: Image, name: str) -> FunctionCFG:
    """Reconstruct the CFG of the function object *name*."""
    base, end = image.function_range(name)
    instrs = _decode_function(image, base, end)

    # Leaders: entry, branch targets, and instructions after terminators.
    leaders = {base}
    for addr, instr in instrs.items():
        nxt = addr + instr.size
        if instr.op is Op.B:
            leaders.add(instr.target)
        elif instr.op is Op.BCC:
            leaders.add(instr.target)
            leaders.add(nxt)
        elif instr.op is Op.BL:
            leaders.add(nxt)  # keep calls at block ends
        elif instr.op is Op.BX or (
                instr.op is Op.POP and instr.with_link) or (
                instr.op is Op.SWI and instr.imm == 0):
            if nxt in instrs:
                leaders.add(nxt)

    blocks = {}
    calls = set()
    for leader in sorted(leaders):
        if leader not in instrs:
            continue
        block = BasicBlock(start=leader)
        addr = leader
        while addr in instrs:
            instr = instrs[addr]
            block.instrs.append((addr, instr))
            nxt = addr + instr.size
            op = instr.op
            if op is Op.B:
                block.succs = [instr.target]
                break
            if op is Op.BCC:
                if instr.target == nxt:  # branch to fall-through
                    block.succs = [nxt]
                else:
                    block.succs = [instr.target, nxt]
                break
            if op is Op.BL:
                block.call_target = instr.target
                calls.add(instr.target)
                block.succs = [nxt]
                break
            if op is Op.BX or (op is Op.POP and instr.with_link):
                block.is_exit = True
                break
            if op is Op.SWI and instr.imm == 0:
                break
            if nxt in leaders:
                block.succs = [nxt]
                break
            addr = nxt
        blocks[leader] = block

    # Validate successor integrity.
    for block in blocks.values():
        for succ in block.succs:
            if succ not in blocks:
                raise CFGError(
                    f"{name}: edge {block.start:#x} -> {succ:#x} "
                    "targets no block")
    return FunctionCFG(name=name, entry=base, blocks=blocks, calls=calls)


def build_all_cfgs(image: Image) -> dict:
    """CFGs for every code object; returns name -> FunctionCFG."""
    return {obj.name: build_function_cfg(image, obj.name)
            for obj in image.code_objects}
