"""Dominators, natural loops and loop-bound resolution.

Loop bounds arrive as flow facts in the image (header address -> maximal
back-edge count per loop entry), produced by the compiler's bound analysis
or by ``#pragma loopbound`` annotations — mirroring aiT's mix of automatic
bounds and user annotation.  IPET turns each loop into the constraint::

    sum(back-edge counts)  <=  bound * sum(entry-edge counts)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import FunctionCFG


class LoopError(Exception):
    """A loop required for WCET analysis has no usable bound."""


@dataclass
class Loop:
    """One natural loop (possibly merged over several back edges)."""

    header: int
    #: blocks belonging to the loop (addresses), header included
    body: set = field(default_factory=set)
    #: back edges as (tail, header) pairs
    back_edges: list = field(default_factory=list)
    #: edges entering the header from outside the loop
    entry_edges: list = field(default_factory=list)
    #: max back edges per loop entry (None if only a total bound exists)
    bound: int = None
    #: max back edges per function invocation (triangular nests)
    bound_total: int = None


def compute_dominators(cfg: FunctionCFG) -> dict:
    """Iterative dominator sets: block addr -> set of dominator addrs."""
    addrs = list(cfg.blocks)
    preds = {addr: [] for addr in addrs}
    for src, dst in cfg.edges():
        preds[dst].append(src)
    full = set(addrs)
    dom = {addr: set(full) for addr in addrs}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for addr in addrs:
            if addr == cfg.entry:
                continue
            pred_doms = [dom[p] for p in preds[addr]]
            new = set.intersection(*pred_doms) if pred_doms else set()
            new.add(addr)
            if new != dom[addr]:
                dom[addr] = new
                changed = True
    return dom


def find_natural_loops(cfg: FunctionCFG) -> dict:
    """Detect natural loops; returns header addr -> :class:`Loop`.

    Back edges sharing a header are merged into one loop (the usual
    treatment for continue statements, which create multiple latches).
    """
    dom = compute_dominators(cfg)
    preds = {addr: [] for addr in cfg.blocks}
    for src, dst in cfg.edges():
        preds[dst].append(src)

    loops = {}
    for src, dst in cfg.edges():
        if dst not in dom[src]:
            continue  # not a back edge
        loop = loops.setdefault(dst, Loop(header=dst))
        loop.back_edges.append((src, dst))
        # Natural loop body: header + all blocks reaching the latch
        # without passing through the header.
        body = {dst, src}
        work = [src]
        while work:
            node = work.pop()
            if node == dst:
                continue
            for pred in preds[node]:
                if pred not in body:
                    body.add(pred)
                    work.append(pred)
        loop.body |= body

    for loop in loops.values():
        for src, dst in cfg.edges():
            if dst == loop.header and src not in loop.body:
                loop.entry_edges.append((src, dst))
    return loops


def resolve_bounds(cfg: FunctionCFG, flow_facts: dict,
                   total_facts: dict = None) -> dict:
    """Attach flow-fact bounds to loops; raise on unbounded loops.

    *flow_facts* maps header addresses to per-entry back-edge bounds,
    *total_facts* to per-invocation totals (both from the linked image).
    A loop is analysable with either kind of bound.
    """
    total_facts = total_facts or {}
    loops = find_natural_loops(cfg)
    for header, loop in loops.items():
        if header in flow_facts:
            loop.bound = flow_facts[header]
        if header in total_facts:
            loop.bound_total = total_facts[header]
        if loop.bound is None and loop.bound_total is None:
            raise LoopError(
                f"function {cfg.name!r}: loop at {header:#x} has no bound; "
                "add '#pragma loopbound N' before the loop")
    return loops
