"""Abstract-interpretation cache analysis (Ferdinand-style MUST analysis).

This is the analyser the paper attributes to aiT's cache module — with the
same restriction its experimental ARM7 version had: a **MUST analysis
only** (guaranteed cache contents), without MAY or persistence.  An
optional scope-based persistence analysis is provided as the paper's
"full cache analysis would improve things" ablation.

Domain: per cache set, a map ``memory block -> maximal LRU age`` with at
most ``assoc`` entries.  A block in the map is *guaranteed* resident.
Join is intersection with per-block maximum age (classic must-join).

Transfer per access:

* known address: the block moves to age 0; blocks younger than its old age
  (or all, if it was absent) age by one; age >= assoc evicts;
* address range (arrays with unknown index, stack accesses): every
  possibly-touched set ages by one — reads may insert an unknown block;
* writes are write-through/no-allocate: a known write refreshes a resident
  block but never allocates; an unknown write can only reshuffle recency,
  which ages conservatively without evicting.

The analysis runs over the interprocedural CFG (call and return edges,
context-insensitive), then a classification pass labels every fetch and
every data read as always-hit (AH) / not-classified (NC), plus first-miss
(FM) with a loop scope when persistence is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Op
from ..memory.cache import CacheConfig
from .accesses import resolve_data_access
from .cfg import FunctionCFG


# --------------------------------------------------------------------------
# Abstract must-cache state
# --------------------------------------------------------------------------

class MustCache:
    """Per-set ``block -> max age`` maps; absence means "not guaranteed"."""

    __slots__ = ("config", "sets")

    def __init__(self, config: CacheConfig, sets=None):
        self.config = config
        self.sets = sets if sets is not None else {}

    def copy(self) -> "MustCache":
        return MustCache(self.config,
                         {s: dict(ages) for s, ages in self.sets.items()})

    def __eq__(self, other):
        return self.sets == other.sets

    # -- transfer -----------------------------------------------------------

    def access_block(self, block: int, allocate=True):
        """A definite access to *block* (read, or write hit refresh)."""
        config = self.config
        index = (block % config.num_sets)
        ages = self.sets.get(index)
        if ages is None:
            if not allocate:
                return
            ages = self.sets[index] = {}
        old_age = ages.get(block)
        if old_age is None:
            if not allocate:
                # Write miss, no allocation: recency may shift arbitrarily
                # among resident blocks -> age everyone, no eviction.
                for other in ages:
                    ages[other] = min(ages[other] + 1, config.assoc - 1)
                return
            threshold = config.assoc  # everyone ages
        else:
            threshold = old_age
        for other, age in list(ages.items()):
            if other != block and age < threshold:
                new_age = age + 1
                if new_age >= config.assoc:
                    del ages[other]
                else:
                    ages[other] = new_age
        ages[block] = 0

    def age_set(self, index: int, evict=True):
        """An unknown access may touch set *index*: age everything."""
        ages = self.sets.get(index)
        if not ages:
            return
        for block, age in list(ages.items()):
            new_age = age + 1
            if evict and new_age >= self.config.assoc:
                del ages[block]
            else:
                ages[block] = min(new_age, self.config.assoc - 1)
        if not ages:
            del self.sets[index]

    def contains(self, block: int) -> bool:
        index = block % self.config.num_sets
        return block in self.sets.get(index, ())

    def join_with(self, other: "MustCache") -> bool:
        """In-place must-join (intersection, max age); True if changed."""
        changed = False
        for index in list(self.sets):
            ages = self.sets[index]
            other_ages = other.sets.get(index, {})
            for block in list(ages):
                if block not in other_ages:
                    del ages[block]
                    changed = True
                elif other_ages[block] > ages[block]:
                    ages[block] = other_ages[block]
                    changed = True
            if not ages:
                del self.sets[index]
        return changed


# --------------------------------------------------------------------------
# Classification results
# --------------------------------------------------------------------------

AH = "always-hit"
NC = "not-classified"
FM = "first-miss"     # persistence: miss once per scope entry


@dataclass
class AccessClass:
    """Classification of one instruction's memory behaviour."""

    fetch: str = NC
    #: classification of the data read (None when the op reads nothing)
    data: str = None
    #: loop-header addr of the persistence scope for FM fetches
    fetch_scope: int = None


@dataclass
class CacheAnalysisResult:
    config: CacheConfig
    #: instruction addr -> AccessClass
    classes: dict = field(default_factory=dict)

    def fetch_class(self, addr) -> str:
        entry = self.classes.get(addr)
        return entry.fetch if entry else NC

    def data_class(self, addr) -> str:
        entry = self.classes.get(addr)
        return entry.data if entry else NC

    def count(self, kind) -> int:
        total = 0
        for entry in self.classes.values():
            total += entry.fetch == kind
            total += entry.data == kind
        return total


# --------------------------------------------------------------------------
# Interprocedural fixpoint + classification
# --------------------------------------------------------------------------

class CacheAnalysis:
    """MUST (+ optional persistence) analysis over the whole program."""

    def __init__(self, image, cfgs: dict, config: CacheConfig,
                 stack_range, entry_name: str, persistence=False):
        self.image = image
        self.cfgs = cfgs
        self.config = config
        self.stack_range = stack_range
        self.entry_name = entry_name
        self.persistence = persistence
        self._entry_by_addr = {cfg.entry: name
                               for name, cfg in cfgs.items()}
        # Pre-resolve every instruction's data access and compile it to a
        # cheap "plan" so the fixpoint loop never re-derives address sets.
        self._data = {}
        self._plan = {}
        self._read_blocks = {}   # addr -> blocks that must all hit for AH
        for cfg in cfgs.values():
            for block in cfg.blocks.values():
                for addr, instr in block.instrs:
                    access = resolve_data_access(
                        instr, addr, image, stack_range)
                    self._data[addr] = access
                    self._plan[addr] = self._compile_plan(access)
                    self._read_blocks[addr] = self._compile_read(access)

    def _compile_plan(self, access):
        """Compile a DataAccess into (kind, payload) steps for transfer."""
        if access is None:
            return None
        if not self.config.unified:
            return None  # instruction cache: data never touches it
        if access.unknown:
            return ("allsets", not access.is_write, access.count)
        if access.exact:
            block = self.config.block_of(access.address)
            return ("wblock" if access.is_write else "rblock", block, 1)
        blocks = set()
        for lo, hi in access.ranges:
            blocks.update(self._blocks_of_range(lo, hi))
        if len(blocks) == 1 and not access.is_write:
            return ("rblock", next(iter(blocks)), access.count)
        sets = tuple(sorted(self._sets_of_ranges(access.ranges)))
        if len(sets) == self.config.num_sets:
            return ("allsets", not access.is_write, access.count)
        return ("sets", sets, not access.is_write, access.count)

    def _compile_read(self, access):
        """Blocks that must all be resident for the read to be AH."""
        if access is None or access.is_write or access.unknown or \
                access.count != 1 or not self.config.unified:
            return None
        blocks = set()
        for lo, hi in access.ranges:
            blocks.update(self._blocks_of_range(lo, hi))
        if len(blocks) > 4 * self.config.assoc:
            return None  # cannot all be resident in interesting cases
        return tuple(blocks)

    # -- helpers -------------------------------------------------------------

    def _blocks_of_range(self, lo, hi):
        return self.config.blocks_in_range(lo, hi)

    def _sets_of_ranges(self, ranges):
        sets = set()
        num_sets = self.config.num_sets
        for lo, hi in ranges:
            blocks = self._blocks_of_range(lo, hi)
            if len(blocks) >= num_sets:
                return set(range(num_sets))
            for block in blocks:
                sets.add(block % num_sets)
        return sets

    def _apply_plan(self, state: MustCache, plan):
        if plan is None:
            return
        kind = plan[0]
        if kind == "rblock":
            _kind, block, count = plan
            for _ in range(count):
                state.access_block(block)
        elif kind == "wblock":
            state.access_block(plan[1], allocate=state.contains(plan[1]))
        elif kind == "sets":
            _kind, sets, evict, count = plan
            for _ in range(count):
                for index in sets:
                    state.age_set(index, evict=evict)
        else:  # allsets
            _kind, evict, count = plan
            for _ in range(count):
                for index in list(state.sets):
                    state.age_set(index, evict=evict)

    def _transfer_block(self, state: MustCache, block, classify=None):
        """Apply one basic block's accesses to *state* (in place)."""
        block_of = self.config.block_of
        for addr, instr in block.instrs:
            fetch_block = block_of(addr)
            if classify is not None:
                classify(addr, "fetch", state.contains(fetch_block))
            state.access_block(fetch_block)
            if instr.size == 4:
                second = block_of(addr + 2)
                if second != fetch_block:
                    if classify is not None and not state.contains(second):
                        # Both halves must hit for an AH fetch.
                        classify(addr, "fetch_second", False)
                    state.access_block(second)
            if classify is not None:
                needed = self._read_blocks[addr]
                if needed is not None:
                    hit = all(state.contains(b) for b in needed)
                    classify(addr, "data", hit)
            self._apply_plan(state, self._plan[addr])

    # -- fixpoint ---------------------------------------------------------------

    def run(self) -> CacheAnalysisResult:
        cfgs = self.cfgs
        # Node = (func_name, block_addr). in-states start unknown (None);
        # the program entry starts with the empty must cache (nothing
        # guaranteed — cold and sound).
        in_states = {}
        entry_cfg = cfgs[self.entry_name]
        in_states[(self.entry_name, entry_cfg.entry)] = MustCache(
            self.config)

        # Successor map including interprocedural edges.
        succs = {}
        for name, cfg in cfgs.items():
            for baddr, block in cfg.blocks.items():
                node = (name, baddr)
                out = []
                if block.call_target is not None:
                    callee = self._entry_by_addr[block.call_target]
                    out.append((callee, cfgs[callee].entry))
                    # Return edge: callee exits -> call fall-through.
                    for exit_block in cfgs[callee].exit_blocks:
                        ret_node = (callee, exit_block.start)
                        succs.setdefault(ret_node, []).extend(
                            (name, s) for s in block.succs)
                else:
                    out.extend((name, s) for s in block.succs)
                succs.setdefault(node, []).extend(out)

        work = [(self.entry_name, entry_cfg.entry)]
        iterations = 0
        limit = 400 * sum(len(c.blocks) for c in cfgs.values()) + 10_000
        while work:
            iterations += 1
            if iterations > limit:
                raise RuntimeError("cache fixpoint failed to converge")
            node = work.pop()
            name, baddr = node
            state = in_states[node].copy()
            self._transfer_block(state, cfgs[name].blocks[baddr])
            for succ in succs.get(node, ()):
                current = in_states.get(succ)
                if current is None:
                    in_states[succ] = state.copy()
                    work.append(succ)
                elif current.join_with(state):
                    work.append(succ)

        # Classification pass.
        result = CacheAnalysisResult(config=self.config)

        def classify_factory(classes):
            def classify(addr, what, hit):
                entry = classes.setdefault(addr, AccessClass())
                if what == "fetch":
                    entry.fetch = AH if hit else NC
                elif what == "fetch_second":
                    entry.fetch = NC
                else:
                    entry.data = AH if hit else NC
            return classify

        classify = classify_factory(result.classes)
        for name, cfg in cfgs.items():
            for baddr, block in cfg.blocks.items():
                node = (name, baddr)
                if node not in in_states:
                    continue  # unreachable
                state = in_states[node].copy()
                self._transfer_block(state, block, classify=classify)

        if self.persistence:
            self._apply_persistence(result)
        return result

    # -- persistence (optional ablation) ---------------------------------------

    def _apply_persistence(self, result: CacheAnalysisResult):
        """Upgrade NC fetches to first-miss where a loop scope protects them.

        A fetch line is persistent in a loop if the distinct lines possibly
        touched inside the loop that map to its cache set fit in the set
        (and no unbounded access can reach that set).  Scopes do not cross
        function boundaries; outermost qualifying scope wins.
        """
        from .loops import find_natural_loops

        num_sets = self.config.num_sets
        for name, cfg in self.cfgs.items():
            loops = find_natural_loops(cfg)
            if not loops:
                continue
            ordered = sorted(loops.values(), key=lambda l: -len(l.body))
            for loop in ordered:
                lines, dirty_sets, clean = self._loop_footprint(cfg, loop)
                if not clean:
                    continue
                per_set = {}
                for line in lines:
                    per_set.setdefault(line % num_sets, set()).add(line)
                for baddr in loop.body:
                    for addr, instr in cfg.blocks[baddr].instrs:
                        entry = result.classes.get(addr)
                        if entry is None or entry.fetch != NC:
                            continue
                        line = self.config.block_of(addr)
                        index = line % num_sets
                        if index in dirty_sets:
                            continue
                        if len(per_set.get(index, ())) <= self.config.assoc:
                            entry.fetch = FM
                            entry.fetch_scope = loop.header

    def _loop_footprint(self, cfg, loop):
        """(fetch/data lines, sets touched by range accesses, analysable)."""
        lines = set()
        dirty_sets = set()
        for baddr in loop.body:
            block = cfg.blocks[baddr]
            if block.call_target is not None:
                # Calls inside the loop: every line the callee (closure)
                # may touch would need collecting; be conservative and
                # give up on this scope.
                return set(), set(), False
            for addr, instr in block.instrs:
                lines.add(self.config.block_of(addr))
                if instr.size == 4:
                    lines.add(self.config.block_of(addr + 2))
                plan = self._plan[addr]
                if plan is None:
                    continue
                kind = plan[0]
                if kind in ("rblock", "wblock"):
                    lines.add(plan[1])
                elif kind == "sets":
                    dirty_sets |= set(plan[1])
                else:  # allsets
                    return set(), set(), False
        return lines, dirty_sets, True
