"""Abstract-interpretation cache analysis (Ferdinand-style MUST analysis).

This is the analyser the paper attributes to aiT's cache module — with the
same restriction its experimental ARM7 version had: a **MUST analysis
only** (guaranteed cache contents), without MAY or persistence.  An
optional scope-based persistence analysis is provided as the paper's
"full cache analysis would improve things" ablation.

Domain: per cache set, a map ``memory block -> maximal LRU age`` with at
most ``assoc`` entries.  A block in the map is *guaranteed* resident.
Join is intersection with per-block maximum age (classic must-join).

Transfer per access:

* known address: the block moves to age 0; blocks younger than its old age
  (or all, if it was absent) age by one; age >= assoc evicts;
* address range (arrays with unknown index, stack accesses): every
  possibly-touched set ages by one — reads may insert an unknown block;
* writes are write-through/no-allocate: a known write refreshes a resident
  block but never allocates; an unknown write can only reshuffle recency,
  which ages conservatively without evicting.

The analysis runs over the interprocedural CFG (call and return edges,
context-insensitive), then a classification pass labels every fetch and
every data read as always-hit (AH) / not-classified (NC), plus first-miss
(FM) with a loop scope when persistence is enabled.

Multi-level hierarchies (Hardy & Puaut, "WCET analysis of multi-level
set-associative instruction caches"): each cache level is analysed in
turn, outermost first, under a **cache access classification** (CAC)
derived from the level above — an access is *Always* performed at L1;
at level k+1 it is *Never* performed when level k classified it
always-hit, *Always* performed when level k classified it always-miss
(a MAY analysis proves the block cannot be resident), and *Uncertain*
otherwise.  Uncertain accesses use a joined transfer
(state-with-access ⊓ state-without), which keeps the deeper level's MUST
state sound whether or not the access reaches it; only A accesses (and
write-through stores) insert must-facts at the deeper level, exactly as
in Hardy & Puaut.  Context-insensitive CAC makes deep always-miss facts
rare (an instruction executed twice may hit the second time), so L2
MUST classification is honest but conservative — the cost model prices
unclassified L1 misses all the way to main memory.
:func:`analyze_hierarchy` orchestrates the per-level runs for any
pipeline a :class:`~repro.memory.hierarchy.SystemConfig` can express —
unified, instruction-only, split I/D, hybrid SPM+cache, L1+L2.

Two engineering layers sit on top of the abstract domains (see
``docs/performance.md``):

* the **packed bitset domain** (:class:`PackedCacheDomain`): every cache
  block one analysis can insert is numbered once, a MUST state becomes
  ``assoc`` cumulative age masks (word *k* holds the blocks of age <= k)
  and a MAY state a single possibly-resident mask plus a per-set TOP
  mask, so transfers and joins are a handful of bulk ``&``/``|``
  operations and a state's fingerprint is the word tuple itself.  States
  are hash-consed (interned), so the fixpoint's out-state memoization
  and join change-detection are pointer comparisons.  The dict-based
  :class:`MustCache`/:class:`MayCache` remain the executable reference
  semantics (``CacheAnalysis(domain="dict")``) for differential tests;
* a **content-addressed analysis reuse cache** keyed by (image content
  hash, cache config, CAC inputs, ...): :func:`analyze_hierarchy`
  consults it before running a level's fixpoints, so a sweep point that
  varies only the SPM capacity or an unrelated level skips every
  unchanged per-level analysis.  :func:`set_analysis_cache_dir` adds a
  shared on-disk layer so ``repro-experiments --jobs N`` workers reuse
  each other's fixpoints, not just their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Op
from ..memory.cache import CacheConfig
from ..store import STORE_COUNTER_KEYS, ArtifactStore, LRUCache, env_capacity
from .accesses import resolve_all, resolve_data_access
from .cfg import FunctionCFG


# --------------------------------------------------------------------------
# Abstract must-cache state
# --------------------------------------------------------------------------

class MustCache:
    """Per-set ``block -> max age`` maps; absence means "not guaranteed"."""

    __slots__ = ("config", "sets")

    def __init__(self, config: CacheConfig, sets=None):
        self.config = config
        self.sets = sets if sets is not None else {}

    def copy(self) -> "MustCache":
        return MustCache(self.config,
                         {s: dict(ages) for s, ages in self.sets.items()})

    def __eq__(self, other):
        return self.sets == other.sets

    def fingerprint(self):
        """Hashable snapshot of the abstract state.

        The fixpoint driver memoizes each node's out-state fingerprint,
        so an unchanged transfer result short-circuits all successor
        joins instead of deep-comparing dicts edge by edge.
        """
        return tuple(sorted(
            (index, tuple(sorted(ages.items())))
            for index, ages in self.sets.items() if ages))

    # -- transfer -----------------------------------------------------------

    def _age_younger(self, ages, block: int, threshold: int):
        """Age (and evict past assoc) every block younger than
        *threshold*, except *block* itself — the LRU aging both the
        definite and the uncertain transfer share."""
        for other, age in list(ages.items()):
            if other != block and age < threshold:
                new_age = age + 1
                if new_age >= self.config.assoc:
                    del ages[other]
                else:
                    ages[other] = new_age

    def access_block(self, block: int, allocate=True):
        """A definite access to *block* (read, or write hit refresh)."""
        config = self.config
        index = (block % config.num_sets)
        ages = self.sets.get(index)
        if ages is None:
            if not allocate:
                return
            ages = self.sets[index] = {}
        old_age = ages.get(block)
        if old_age is None:
            if not allocate:
                # Write miss, no allocation: recency may shift arbitrarily
                # among resident blocks -> age everyone, no eviction.
                for other in ages:
                    ages[other] = min(ages[other] + 1, config.assoc - 1)
                return
            threshold = config.assoc  # everyone ages
        else:
            threshold = old_age
        self._age_younger(ages, block, threshold)
        ages[block] = 0

    def access_block_uncertain(self, block: int):
        """A read of *block* that may or may not occur (CAC ``U``).

        Equivalent to ``join(state after access, state unchanged)`` but
        computed in place: the accessed block never gains residency or
        youth, every other block ages as the definite access would have
        aged it.  Sound whichever way the uncertainty resolves.  (Writes
        never take this path — write-through stores reach every level
        definitely.)
        """
        index = block % self.config.num_sets
        ages = self.sets.get(index)
        if not ages:
            return
        old_age = ages.get(block)
        threshold = self.config.assoc if old_age is None else old_age
        self._age_younger(ages, block, threshold)
        if not ages:
            del self.sets[index]

    def age_set(self, index: int, evict=True):
        """An unknown access may touch set *index*: age everything."""
        ages = self.sets.get(index)
        if not ages:
            return
        for block, age in list(ages.items()):
            new_age = age + 1
            if evict and new_age >= self.config.assoc:
                del ages[block]
            else:
                ages[block] = min(new_age, self.config.assoc - 1)
        if not ages:
            del self.sets[index]

    def contains(self, block: int) -> bool:
        index = block % self.config.num_sets
        return block in self.sets.get(index, ())

    def join_with(self, other: "MustCache") -> bool:
        """In-place must-join (intersection, max age); True if changed."""
        changed = False
        for index in list(self.sets):
            ages = self.sets[index]
            other_ages = other.sets.get(index, {})
            for block in list(ages):
                if block not in other_ages:
                    del ages[block]
                    changed = True
                elif other_ages[block] > ages[block]:
                    ages[block] = other_ages[block]
                    changed = True
            if not ages:
                del self.sets[index]
        return changed


#: Sentinel: a MayCache set that may contain *any* block.
MAY_TOP = "may-top"


class MayCache:
    """Per-set overapproximation of possibly-resident blocks.

    Deliberately coarse: blocks are never evicted (the set only grows),
    so membership is monotone and the fixpoint converges in a couple of
    sweeps.  A block *absent* from the may-state is guaranteed not
    resident — its access is **always-miss**, which is what licenses a
    CAC of ``A`` at the next level down (Hardy & Puaut).  Range and
    unknown accesses may load any block of their sets, modelled by the
    :data:`MAY_TOP` sentinel.
    """

    __slots__ = ("config", "sets")

    def __init__(self, config: CacheConfig, sets=None):
        self.config = config
        self.sets = sets if sets is not None else {}

    def copy(self) -> "MayCache":
        return MayCache(self.config,
                        {s: (blocks if blocks is MAY_TOP else set(blocks))
                         for s, blocks in self.sets.items()})

    def fingerprint(self):
        """Hashable snapshot (see :meth:`MustCache.fingerprint`)."""
        return tuple(sorted(
            (index, MAY_TOP if blocks is MAY_TOP
             else tuple(sorted(blocks)))
            for index, blocks in self.sets.items() if blocks))

    def add_block(self, block: int):
        index = block % self.config.num_sets
        blocks = self.sets.get(index)
        if blocks is MAY_TOP:
            return
        if blocks is None:
            self.sets[index] = {block}
        else:
            blocks.add(block)

    def mark_top(self, index: int):
        self.sets[index] = MAY_TOP

    def mark_all_top(self):
        for index in range(self.config.num_sets):
            self.sets[index] = MAY_TOP

    def may_contain(self, block: int) -> bool:
        blocks = self.sets.get(block % self.config.num_sets)
        return blocks is MAY_TOP or (blocks is not None and block in blocks)

    def join_with(self, other: "MayCache") -> bool:
        """In-place may-join (union); True if changed."""
        changed = False
        for index, theirs in other.sets.items():
            mine = self.sets.get(index)
            if mine is MAY_TOP:
                continue
            if theirs is MAY_TOP:
                self.sets[index] = MAY_TOP
                changed = True
            elif mine is None:
                self.sets[index] = set(theirs)
                changed = True
            elif not theirs <= mine:
                mine |= theirs
                changed = True
        return changed


# --------------------------------------------------------------------------
# Packed bitset domain
# --------------------------------------------------------------------------
#
# A MUST state over a fixed block universe is a tuple of ``assoc``
# integers: word ``k`` has bit ``i`` set iff universe block ``i`` is
# guaranteed resident with LRU age <= k (cumulative encoding).  The
# cumulative form makes the must-join (intersection with per-block
# maximum age) a plain pointwise AND.  All transfers are expressed with
# a per-set mask ``smask`` (the universe bits mapping to the accessed
# set), so one access costs O(assoc) whole-word operations however many
# blocks the set holds.  The functions below are the single executable
# definition shared by the analysis's compiled step programs and the
# test-facing :class:`PackedCacheDomain` wrapper.

def _must_access(w, assoc, bit, smask):
    """Definite access: *bit* to age 0, younger set-mates age (+evict)."""
    if assoc == 1:
        w[0] = (w[0] & ~smask) | bit
        return
    age = assoc
    for k in range(assoc):
        if w[k] & bit:
            age = k
            break
    # Set-mates younger than the old age shift up one; words >= the old
    # age already contain both them and *bit*, so they are untouched
    # (when absent, "old age" is assoc and the top word shifts too,
    # evicting the blocks that were at age assoc-1).
    for k in range((age if age < assoc else assoc) - 1, 0, -1):
        w[k] = (w[k] & ~smask) | (w[k - 1] & smask) | bit
    w[0] = (w[0] & ~smask) | bit


def _must_uncertain(w, assoc, bit, smask):
    """CAC-``U`` read: *bit* keeps its age, set-mates age as if accessed."""
    age = None
    for k in range(assoc):
        if w[k] & bit:
            age = k
            break
    if age == 0:
        return
    if age is None:  # not guaranteed resident: whole set ages, evicting
        for k in range(assoc - 1, 0, -1):
            w[k] = (w[k] & ~smask) | (w[k - 1] & smask)
        w[0] &= ~smask
        return
    # Set-mates younger than *bit*'s (kept) age shift up one; words at
    # and above that age keep their contents (bit included).
    for k in range(age - 1, 0, -1):
        w[k] = (w[k] & ~smask) | (w[k - 1] & smask)
    w[0] &= ~smask


def _must_write(w, assoc, bit, smask):
    """Write-through store: refresh when resident, else age-no-evict."""
    if w[assoc - 1] & bit:
        _must_access(w, assoc, bit, smask)
        return
    for k in range(assoc - 2, 0, -1):
        w[k] = (w[k] & ~smask) | (w[k - 1] & smask)
    if assoc > 1:
        w[0] &= ~smask


def _must_age(w, assoc, mask, evict):
    """Unknown access touching the sets in *mask*: age them all."""
    if evict:
        for k in range(assoc - 1, 0, -1):
            w[k] = (w[k] & ~mask) | (w[k - 1] & mask)
        w[0] &= ~mask
    else:  # saturate at age assoc-1 (no eviction)
        for k in range(assoc - 2, 0, -1):
            w[k] = (w[k] & ~mask) | (w[k - 1] & mask)
        if assoc > 1:
            w[0] &= ~mask


class PackedCacheDomain:
    """Bit-packed MUST/MAY domain over a fixed universe of cache blocks.

    The universe is every block an analysis can ever *insert* (fetch
    targets and resolved read/write targets); blocks outside it can only
    matter through the MAY domain's per-set TOP sentinel.  MUST states
    are ``assoc``-tuples of cumulative age masks, MAY states are
    ``(blocks, top)`` pairs (possibly-resident mask, per-set-index TOP
    mask).  All operations are pure (states are immutable values),
    which is what makes hash-consing them sound.
    """

    def __init__(self, config: CacheConfig, blocks):
        self.config = config
        self.assoc = config.assoc
        self.blocks = tuple(dict.fromkeys(blocks))
        self.bit = {block: 1 << i for i, block in enumerate(self.blocks)}
        self.block_of_bit = {1 << i: block
                             for i, block in enumerate(self.blocks)}
        num_sets = config.num_sets
        self.set_mask = [0] * num_sets
        for block, bit in self.bit.items():
            self.set_mask[block % num_sets] |= bit
        self.universe_mask = (1 << len(self.blocks)) - 1
        self.all_top_mask = (1 << num_sets) - 1

    def _smask(self, block):
        return self.set_mask[block % self.config.num_sets]

    # -- MUST ----------------------------------------------------------------

    def must_empty(self):
        return (0,) * self.assoc

    def must_access(self, state, block):
        w = list(state)
        _must_access(w, self.assoc, self.bit[block], self._smask(block))
        return tuple(w)

    def must_access_uncertain(self, state, block):
        w = list(state)
        _must_uncertain(w, self.assoc, self.bit[block], self._smask(block))
        return tuple(w)

    def must_write(self, state, block):
        w = list(state)
        _must_write(w, self.assoc, self.bit[block], self._smask(block))
        return tuple(w)

    def must_age_sets(self, state, indices, evict=True):
        mask = 0
        for index in indices:
            mask |= self.set_mask[index]
        w = list(state)
        _must_age(w, self.assoc, mask, evict)
        return tuple(w)

    def must_age_all(self, state, evict=True):
        w = list(state)
        _must_age(w, self.assoc, self.universe_mask, evict)
        return tuple(w)

    @staticmethod
    def must_join(a, b):
        return tuple(x & y for x, y in zip(a, b))

    def must_contains(self, state, block):
        return bool(state[self.assoc - 1] & self.bit[block])

    def must_decode(self, state) -> MustCache:
        """Expand a packed MUST state to the reference dict form."""
        sets = {}
        num_sets = self.config.num_sets
        block_of_bit = self.block_of_bit
        resident = state[self.assoc - 1]
        while resident:
            low = resident & -resident
            resident ^= low
            age = 0
            while not state[age] & low:
                age += 1
            block = block_of_bit[low]
            sets.setdefault(block % num_sets, {})[block] = age
        return MustCache(self.config, sets)

    # -- MAY -----------------------------------------------------------------

    @staticmethod
    def may_empty():
        return (0, 0)

    def may_add(self, state, block):
        return (state[0] | self.bit[block], state[1])

    def may_mark_top(self, state, indices):
        blocks, top = state
        for index in indices:
            top |= 1 << index
            blocks |= self.set_mask[index]  # canonical completion
        return (blocks, top)

    def may_mark_all_top(self, state):
        return (state[0] | self.universe_mask, state[1] | self.all_top_mask)

    @staticmethod
    def may_join(a, b):
        return (a[0] | b[0], a[1] | b[1])

    def may_contains(self, state, block):
        if state[1] >> (block % self.config.num_sets) & 1:
            return True
        return bool(state[0] & self.bit[block])

    def may_decode(self, state) -> MayCache:
        """Expand a packed MAY state to the reference dict form."""
        blocks, top = state
        sets = {}
        num_sets = self.config.num_sets
        index = 0
        while top:
            if top & 1:
                sets[index] = MAY_TOP
            top >>= 1
            index += 1
        block_of_bit = self.block_of_bit
        while blocks:
            low = blocks & -blocks
            blocks ^= low
            block = block_of_bit[low]
            index = block % num_sets
            if sets.get(index) is MAY_TOP:
                continue
            sets.setdefault(index, set()).add(block)
        return MayCache(self.config, sets)


# --------------------------------------------------------------------------
# Hash-consing and the analysis reuse cache
# --------------------------------------------------------------------------

#: Process-wide instrumentation (``repro-cc wcet --profile`` prints it).
COUNTERS = {
    "intern_hits": 0,
    "intern_misses": 0,
    "reuse_hits": 0,
    "reuse_disk_hits": 0,
    "reuse_misses": 0,
    "reuse_evictions": 0,
}

#: Bump when analysis semantics change: invalidates on-disk reuse entries.
_CACHE_VERSION = "wcet-bitset-1"


def _count_reuse_eviction():
    COUNTERS["reuse_evictions"] += 1


#: In-process reuse table: bounded LRU (REPRO_REUSE_CACHE_CAP knob,
#: 0 = unbounded) instead of the unbounded dict it used to be.
_REUSE_CACHE = LRUCache(env_capacity("REPRO_REUSE_CACHE_CAP", 512),
                        on_evict=_count_reuse_eviction)

#: Shared on-disk layer (:class:`repro.store.ArtifactStore`), or None.
_REUSE_STORE = None


def _intern(table, state):
    """Hash-cons *state*: equal states share one canonical object, so
    fixpoint change-detection degrades to an ``is`` comparison."""
    cached = table.get(state)
    if cached is not None:
        COUNTERS["intern_hits"] += 1
        return cached
    table[state] = state
    COUNTERS["intern_misses"] += 1
    return state


def set_analysis_cache_dir(path, max_bytes=None):
    """Enable (or with None disable) the shared on-disk reuse layer.

    The layer is a checksummed, corruption-quarantining
    :class:`repro.store.ArtifactStore`; *max_bytes* optionally caps it
    with mtime-LRU garbage collection.
    """
    global _REUSE_STORE
    _REUSE_STORE = (None if path is None else
                    ArtifactStore(path, suffix=".pkl",
                                  max_bytes=max_bytes))


def set_analysis_store(store):
    """Install a prebuilt store object as the on-disk reuse layer.

    The cluster tier passes a
    :class:`repro.store.ShardedArtifactStore` here; anything with the
    ``load`` / ``store`` / ``counters`` surface works.  ``None``
    disables the layer, same as ``set_analysis_cache_dir(None)``.
    """
    global _REUSE_STORE
    _REUSE_STORE = store


def analysis_cache_dir():
    return None if _REUSE_STORE is None else _REUSE_STORE.root


def analysis_store():
    """The on-disk :class:`~repro.store.ArtifactStore`, or None."""
    return _REUSE_STORE


def set_analysis_cache_capacity(capacity):
    """Bound (or with None unbound) the in-process reuse table."""
    _REUSE_CACHE.set_capacity(capacity)


def clear_analysis_caches():
    """Drop every in-memory reuse entry (the disk layer is untouched)."""
    _REUSE_CACHE.clear()


def reuse_counters() -> dict:
    """The in-process counters plus the disk store's, one flat dict."""
    merged = dict(COUNTERS)
    store_counts = (_REUSE_STORE.counters if _REUSE_STORE is not None
                    else dict.fromkeys(STORE_COUNTER_KEYS, 0))
    for key in STORE_COUNTER_KEYS:
        merged[f"reuse_store_{key}"] = store_counts[key]
    return merged


def _reuse_get(key):
    result = _REUSE_CACHE.get(key)
    if result is not None:
        COUNTERS["reuse_hits"] += 1
        return result
    if _REUSE_STORE is not None:
        # Envelope-checksummed load: corrupt entries quarantine + count.
        result = _REUSE_STORE.load(key)
        if result is not None:
            _REUSE_CACHE[key] = result
            COUNTERS["reuse_hits"] += 1
            COUNTERS["reuse_disk_hits"] += 1
            return result
    COUNTERS["reuse_misses"] += 1
    return None


def _reuse_put(key, result):
    _REUSE_CACHE[key] = result
    if _REUSE_STORE is not None:
        _REUSE_STORE.store(key, result)


# --------------------------------------------------------------------------
# Classification results
# --------------------------------------------------------------------------

AH = "always-hit"
NC = "not-classified"
FM = "first-miss"     # persistence: miss once per scope entry


@dataclass
class AccessClass:
    """Classification of one instruction's memory behaviour."""

    fetch: str = NC
    #: classification of the data read (None when the op reads nothing)
    data: str = None
    #: loop-header addr of the persistence scope for FM fetches
    fetch_scope: int = None
    #: MAY analysis proved the fetch misses this level on every
    #: execution (so it is Always performed at the next level)
    fetch_always_miss: bool = False
    #: likewise for the data read
    data_always_miss: bool = False


@dataclass
class CacheAnalysisResult:
    config: CacheConfig
    #: instruction addr -> AccessClass
    classes: dict = field(default_factory=dict)

    def fetch_class(self, addr) -> str:
        entry = self.classes.get(addr)
        return entry.fetch if entry else NC

    def data_class(self, addr) -> str:
        entry = self.classes.get(addr)
        return entry.data if entry else NC

    def count(self, kind) -> int:
        total = 0
        for entry in self.classes.values():
            total += entry.fetch == kind
            total += entry.data == kind
        return total


# --------------------------------------------------------------------------
# Interprocedural fixpoint + classification
# --------------------------------------------------------------------------

class CacheAnalysis:
    """MUST (+ optional persistence) analysis of one cache level.

    The default arguments analyse the paper's single cache: every access
    definitely happens (CAC ``A``) and the cache's ``unified`` flag
    decides whether data traffic touches it.  Deeper levels pass
    *fetch_cac*/*data_cac* maps (addr -> ``"A"``/``"U"``/``"N"``) from
    the level above, *serves_fetch*/*serves_data* to model split I/D
    arrays, and *spm_size* so accesses settled by a scratchpad in front
    never reach the tags.
    """

    def __init__(self, image, cfgs: dict, config: CacheConfig,
                 stack_range, entry_name: str, persistence=False, *,
                 serves_fetch=True, serves_data=None, spm_size=0,
                 fetch_cac=None, data_cac=None, always_miss=False,
                 resolved_accesses=None, domain="packed",
                 intern_tables=None):
        self.image = image
        self.cfgs = cfgs
        self.config = config
        self.stack_range = stack_range
        self.entry_name = entry_name
        self.persistence = persistence
        self.always_miss = always_miss
        self.serves_fetch = serves_fetch
        self.serves_data = (config.unified if serves_data is None
                            else serves_data)
        self.spm_size = spm_size
        self.fetch_cac = fetch_cac
        self.data_cac = data_cac
        if domain not in ("packed", "dict"):
            raise ValueError(f"unknown abstract domain {domain!r}")
        self.domain = domain
        # Hash-consing tables, shareable across the levels of one
        # hierarchy so identical out-states are one object everywhere.
        self._intern_must, self._intern_may = (intern_tables
                                               or ({}, {}))
        self._entry_by_addr = {cfg.entry: name
                               for name, cfg in cfgs.items()}
        # Worklist machinery shared by the MUST and MAY fixpoints.
        self._succs = None
        self._rpo_index = None
        # Pre-resolve every instruction's data access and compile it to a
        # cheap "plan" so the fixpoint loop never re-derives address sets.
        # *resolved_accesses* (addr -> DataAccess) lets a multi-level
        # analysis resolve each instruction once and share the result
        # across every level's CacheAnalysis.
        self._data = {}
        self._plan = {}
        self._read_blocks = {}   # addr -> blocks that must all hit for AH
        for cfg in cfgs.values():
            for block in cfg.blocks.values():
                for addr, instr in block.instrs:
                    if resolved_accesses is not None:
                        access = resolved_accesses[addr]
                    else:
                        access = resolve_data_access(
                            instr, addr, image, stack_range)
                    self._data[addr] = access
                    self._plan[addr] = self._compile_plan(access)
                    self._read_blocks[addr] = self._compile_read(access)
        # Per-basic-block transfer programs: the CAC decisions, block
        # numbers and plan lookups above are all static per analysis, so
        # the fixpoint replays a flat step list instead of re-deriving
        # them on every iteration.
        self._must_progs = {}
        self._may_progs = {}
        for name, cfg in cfgs.items():
            for baddr, block in cfg.blocks.items():
                must, may = self._compile_block(block)
                self._must_progs[(name, baddr)] = must
                self._may_progs[(name, baddr)] = may
        if domain == "packed":
            self._compile_packed()

    def _cached_ranges(self, ranges):
        """Clip *ranges* to the part behind the cache (above the SPM)."""
        spm = self.spm_size
        if not spm:
            return ranges
        return tuple((max(lo, spm), hi) for lo, hi in ranges if hi > spm)

    def _compile_plan(self, access):
        """Compile a DataAccess into (kind, payload) steps for transfer."""
        if access is None:
            return None
        if not self.serves_data:
            return None  # instruction cache: data never touches it
        if access.unknown:
            return ("allsets", not access.is_write, access.count)
        if access.exact:
            if access.address < self.spm_size:
                return None  # settled by the scratchpad in front
            block = self.config.block_of(access.address)
            return ("wblock" if access.is_write else "rblock", block, 1)
        ranges = self._cached_ranges(access.ranges)
        if not ranges:
            return None
        blocks = set()
        for lo, hi in ranges:
            blocks.update(self._blocks_of_range(lo, hi))
        if len(blocks) == 1 and not access.is_write:
            return ("rblock", next(iter(blocks)), access.count)
        sets = tuple(sorted(self._sets_of_ranges(ranges)))
        if len(sets) == self.config.num_sets:
            return ("allsets", not access.is_write, access.count)
        return ("sets", sets, not access.is_write, access.count)

    def _compile_read(self, access):
        """Blocks that must all be resident for the read to be AH."""
        if access is None or access.is_write or access.unknown or \
                access.count != 1 or not self.serves_data:
            return None
        ranges = self._cached_ranges(access.ranges)
        if not ranges or ranges != access.ranges:
            return None  # fully or partly in front of the cache
        blocks = set()
        for lo, hi in ranges:
            blocks.update(self._blocks_of_range(lo, hi))
        if len(blocks) > 4 * self.config.assoc:
            return None  # cannot all be resident in interesting cases
        return tuple(blocks)

    # -- helpers -------------------------------------------------------------

    def _blocks_of_range(self, lo, hi):
        return self.config.blocks_in_range(lo, hi)

    def _sets_of_ranges(self, ranges):
        sets = set()
        num_sets = self.config.num_sets
        for lo, hi in ranges:
            blocks = self._blocks_of_range(lo, hi)
            if len(blocks) >= num_sets:
                return set(range(num_sets))
            for block in blocks:
                sets.add(block % num_sets)
        return sets

    def _data_cac_for(self, addr):
        if self.data_cac is None:
            return "A"
        return self.data_cac.get(addr, "U")

    def _apply_plan(self, state: MustCache, plan, addr):
        if plan is None:
            return
        kind = plan[0]
        if kind == "rblock":
            # Reads respect the CAC: an access settled by the level in
            # front never reaches these tags, an uncertain one joins.
            cac = self._data_cac_for(addr)
            if cac == "N":
                return
            _kind, block, count = plan
            if cac == "A":
                for _ in range(count):
                    state.access_block(block)
            else:
                for _ in range(count):
                    state.access_block_uncertain(block)
        elif kind == "wblock":
            # Writes are write-through: they touch every level's tags.
            state.access_block(plan[1], allocate=state.contains(plan[1]))
        elif kind == "sets":
            _kind, sets, evict, count = plan
            if evict and self._data_cac_for(addr) == "N":
                return
            for _ in range(count):
                for index in sets:
                    state.age_set(index, evict=evict)
        else:  # allsets
            _kind, evict, count = plan
            if evict and self._data_cac_for(addr) == "N":
                return
            for _ in range(count):
                for index in list(state.sets):
                    state.age_set(index, evict=evict)

    def _transfer_block(self, state: MustCache, block, classify=None):
        """Apply one basic block's accesses to *state* (in place)."""
        block_of = self.config.block_of
        fetch_cac = self.fetch_cac
        for addr, instr in block.instrs:
            if self.serves_fetch and addr >= self.spm_size:
                cac = "A" if fetch_cac is None else fetch_cac.get(addr, "U")
                if cac != "N":
                    definite = cac == "A"
                    fetch_block = block_of(addr)
                    if classify is not None:
                        classify(addr, "fetch", state.contains(fetch_block))
                    if definite:
                        state.access_block(fetch_block)
                    else:
                        state.access_block_uncertain(fetch_block)
                    if instr.size == 4:
                        second = block_of(addr + 2)
                        if second != fetch_block:
                            if classify is not None and \
                                    not state.contains(second):
                                # Both halves must hit for an AH fetch.
                                classify(addr, "fetch_second", False)
                            if definite:
                                state.access_block(second)
                            else:
                                state.access_block_uncertain(second)
            if self.serves_data:
                if classify is not None:
                    needed = self._read_blocks[addr]
                    if needed is not None:
                        hit = all(state.contains(b) for b in needed)
                        classify(addr, "data", hit)
                self._apply_plan(state, self._plan[addr], addr)

    # -- the MAY side (always-miss facts for the next level's CAC) -----------

    def _transfer_block_may(self, state: MayCache, block, classify=None):
        """Apply one basic block's accesses to a may-state (in place).

        With *classify*, records whether each CAC-``A`` access targets a
        block provably absent — an **always-miss**, i.e. an access that
        is Always performed at the next level down.
        """
        block_of = self.config.block_of
        fetch_cac = self.fetch_cac
        for addr, instr in block.instrs:
            if self.serves_fetch and addr >= self.spm_size:
                cac = "A" if fetch_cac is None else fetch_cac.get(addr, "U")
                if cac != "N":
                    fetch_block = block_of(addr)
                    second = (block_of(addr + 2) if instr.size == 4
                              else fetch_block)
                    if classify is not None and cac == "A":
                        # Both halves must miss for the next level to be
                        # definitely accessed on every execution.
                        miss = not (state.may_contain(fetch_block)
                                    or state.may_contain(second))
                        classify(addr, "fetch", miss)
                    state.add_block(fetch_block)
                    if second != fetch_block:
                        state.add_block(second)
            if self.serves_data:
                plan = self._plan[addr]
                if plan is None:
                    continue
                kind = plan[0]
                if kind == "rblock":
                    cac = self._data_cac_for(addr)
                    if cac == "N":
                        continue
                    _kind, block_num, count = plan
                    if classify is not None and cac == "A" and count == 1:
                        classify(addr, "data",
                                 not state.may_contain(block_num))
                    state.add_block(block_num)
                elif kind == "wblock":
                    pass  # write-through, no allocate: never inserts
                elif kind == "sets":
                    _kind, sets, evict, _count = plan
                    if evict and self._data_cac_for(addr) != "N":
                        for index in sets:
                            state.mark_top(index)
                else:  # allsets
                    _kind, evict, _count = plan
                    if evict and self._data_cac_for(addr) != "N":
                        state.mark_all_top()

    # -- compiled transfer programs ---------------------------------------------

    def _compile_block(self, block):
        """Compile one basic block into flat MUST and MAY step lists.

        Everything the per-instruction transfers re-derive on every
        fixpoint iteration — spm clipping, CAC decisions, block numbers,
        plan lookups — is static for one analysis, so it is folded here
        once.  The classification passes keep using the original
        ``_transfer_block``/``_transfer_block_may`` (whose state updates
        these programs mirror exactly).
        """
        block_of = self.config.block_of
        fetch_cac = self.fetch_cac
        must = []
        may = []
        for addr, instr in block.instrs:
            if self.serves_fetch and addr >= self.spm_size:
                cac = "A" if fetch_cac is None else fetch_cac.get(addr, "U")
                if cac != "N":
                    opcode = 0 if cac == "A" else 1
                    fetch_block = block_of(addr)
                    must.append((opcode, fetch_block))
                    may.append((0, fetch_block))
                    if instr.size == 4:
                        second = block_of(addr + 2)
                        if second != fetch_block:
                            must.append((opcode, second))
                            may.append((0, second))
            if self.serves_data:
                plan = self._plan[addr]
                if plan is None:
                    continue
                kind = plan[0]
                if kind == "rblock":
                    cac = self._data_cac_for(addr)
                    if cac == "N":
                        continue
                    _kind, target, count = plan
                    must.append((2 if cac == "A" else 3, target, count))
                    may.append((0, target))
                elif kind == "wblock":
                    must.append((4, plan[1]))
                elif kind == "sets":
                    _kind, sets, evict, count = plan
                    if evict and self._data_cac_for(addr) == "N":
                        continue
                    must.append((5, sets, evict, count))
                    if evict:
                        may.append((1, sets))
                else:  # allsets
                    _kind, evict, count = plan
                    if evict and self._data_cac_for(addr) == "N":
                        continue
                    must.append((6, evict, count))
                    if evict:
                        may.append((2,))
        return tuple(must), tuple(may)

    @staticmethod
    def _run_must_prog(state: MustCache, prog):
        for step in prog:
            opcode = step[0]
            if opcode == 0:
                state.access_block(step[1])
            elif opcode == 1:
                state.access_block_uncertain(step[1])
            elif opcode == 2:
                for _ in range(step[2]):
                    state.access_block(step[1])
            elif opcode == 3:
                for _ in range(step[2]):
                    state.access_block_uncertain(step[1])
            elif opcode == 4:
                target = step[1]
                state.access_block(target, allocate=state.contains(target))
            elif opcode == 5:
                _opcode, sets, evict, count = step
                for _ in range(count):
                    for index in sets:
                        state.age_set(index, evict=evict)
            else:
                _opcode, evict, count = step
                for _ in range(count):
                    for index in list(state.sets):
                        state.age_set(index, evict=evict)

    @staticmethod
    def _run_may_prog(state: MayCache, prog):
        for step in prog:
            opcode = step[0]
            if opcode == 0:
                state.add_block(step[1])
            elif opcode == 1:
                for index in step[1]:
                    state.mark_top(index)
            else:
                state.mark_all_top()

    # -- packed (bitset) transfer programs -----------------------------------

    def _compile_packed(self):
        """Translate the logical step lists into packed-bitset programs.

        The block universe is every block the logical programs can
        insert or probe; aging counts are clamped to ``assoc`` (further
        repetitions are no-ops on a finite-age domain).  Direct-mapped
        caches get a dedicated encoding over a *single* integer state:
        runs of consecutive definite accesses fuse into one
        clear-mask/set-bits pair, writes vanish (refresh and
        no-allocate aging are both identities at assoc 1), and
        no-evict aging saturates to the identity.
        """
        universe = []
        for prog in self._must_progs.values():
            for step in prog:
                if step[0] <= 4:
                    universe.append(step[1])
        for prog in self._may_progs.values():
            for step in prog:
                if step[0] == 0:
                    universe.append(step[1])
        domain = self._packed = PackedCacheDomain(self.config, universe)
        assoc = self.config.assoc
        num_sets = self.config.num_sets
        bits = domain.bit
        set_mask = domain.set_mask
        full = domain.universe_mask
        dm = assoc == 1
        self._packed_must = {}
        self._packed_may = {}
        for node, prog in self._must_progs.items():
            steps = []
            for step in prog:
                opcode = step[0]
                if opcode in (0, 2):   # definite access (idempotent, so
                    block = step[1]    # the repeat count collapses)
                    steps.append((0, bits[block],
                                  set_mask[block % num_sets]))
                elif opcode in (1, 3):  # uncertain access
                    block = step[1]
                    count = min(step[2] if opcode == 3 else 1, assoc)
                    steps.append((1, bits[block],
                                  set_mask[block % num_sets], count))
                elif opcode == 4:       # write-through store
                    block = step[1]
                    steps.append((2, bits[block],
                                  set_mask[block % num_sets]))
                elif opcode == 5:
                    _opcode, sets, evict, count = step
                    mask = 0
                    for index in sets:
                        mask |= set_mask[index]
                    if mask:
                        steps.append((3, mask, evict, min(count, assoc)))
                else:
                    _opcode, evict, count = step
                    if full:
                        steps.append((3, full, evict, min(count, assoc)))
            self._packed_must[node] = (self._fuse_dm(steps) if dm
                                       else tuple(steps))
        for node, prog in self._may_progs.items():
            steps = []
            pending = 0  # consecutive inserts fuse into one OR mask
            for step in prog:
                opcode = step[0]
                if opcode == 0:
                    pending |= bits[step[1]]
                    continue
                if pending:
                    steps.append((0, pending))
                    pending = 0
                if opcode == 1:
                    top = blocks = 0
                    for index in step[1]:
                        top |= 1 << index
                        blocks |= set_mask[index]
                    steps.append((1, top, blocks))
                else:
                    steps.append((1, domain.all_top_mask, full))
            if pending:
                steps.append((0, pending))
            self._packed_may[node] = tuple(steps)

    @staticmethod
    def _fuse_dm(steps):
        """Re-encode packed MUST steps for a direct-mapped cache.

        State is one integer (the single age-0 word).  Step forms:
        ``(0, set_bits, keep_mask)`` fused definite-access runs
        (``w = (w & keep) | set_bits``), ``(1, bit, keep_mask)``
        uncertain access, ``(3, keep_mask)`` evicting aging.
        """
        fused = []
        clear = setb = 0
        for step in steps:
            opcode = step[0]
            if opcode == 0:
                _opcode, bit, smask = step
                setb = (setb & ~smask) | bit
                clear |= smask
                continue
            if clear or setb:
                fused.append((0, setb, ~clear))
                clear = setb = 0
            if opcode == 1:
                _opcode, bit, smask, _count = step
                fused.append((1, bit, ~smask))
            elif opcode == 3:
                _opcode, mask, evict, _count = step
                if evict:
                    fused.append((3, ~mask))
            # opcode 2 (write): refresh and no-allocate aging are both
            # identities on a direct-mapped must state -> dropped.
        if clear or setb:
            fused.append((0, setb, ~clear))
        return tuple(fused)

    @staticmethod
    def _run_must_dm(word, prog):
        for step in prog:
            opcode = step[0]
            if opcode == 0:
                word = (word & step[2]) | step[1]
            elif opcode == 1:
                if not word & step[1]:
                    word &= step[2]
            else:
                word &= step[1]
        return word

    @staticmethod
    def _run_must_packed(state, prog, assoc):
        words = list(state)
        for step in prog:
            opcode = step[0]
            if opcode == 0:
                _must_access(words, assoc, step[1], step[2])
            elif opcode == 1:
                for _ in range(step[3]):
                    _must_uncertain(words, assoc, step[1], step[2])
            elif opcode == 2:
                _must_write(words, assoc, step[1], step[2])
            else:
                for _ in range(step[3]):
                    _must_age(words, assoc, step[1], step[2])
        return tuple(words)

    @staticmethod
    def _run_may_packed(state, prog):
        blocks, top = state
        for step in prog:
            if step[0] == 0:
                blocks |= step[1]
            else:
                top |= step[1]
                blocks |= step[2]
        return (blocks, top)

    # -- packed classification walks -----------------------------------------
    #
    # Mirrors of ``_transfer_block``/``_transfer_block_may`` operating
    # directly on packed states, so the classification passes need no
    # decode back to the dict domain.  The differential tests assert
    # instruction-level equality of the two classification paths.

    def _apply_plan_packed(self, words, plan, addr):
        if plan is None:
            return
        assoc = self.config.assoc
        domain = self._packed
        kind = plan[0]
        if kind == "rblock":
            cac = self._data_cac_for(addr)
            if cac == "N":
                return
            _kind, block, count = plan
            bit = domain.bit[block]
            smask = domain.set_mask[block % self.config.num_sets]
            if cac == "A":  # idempotent: the repeat count collapses
                _must_access(words, assoc, bit, smask)
            else:
                for _ in range(min(count, assoc)):
                    _must_uncertain(words, assoc, bit, smask)
        elif kind == "wblock":
            block = plan[1]
            _must_write(words, assoc, domain.bit[block],
                        domain.set_mask[block % self.config.num_sets])
        elif kind == "sets":
            _kind, sets, evict, count = plan
            if evict and self._data_cac_for(addr) == "N":
                return
            mask = 0
            for index in sets:
                mask |= domain.set_mask[index]
            for _ in range(min(count, assoc)):
                _must_age(words, assoc, mask, evict)
        else:  # allsets
            _kind, evict, count = plan
            if evict and self._data_cac_for(addr) == "N":
                return
            for _ in range(min(count, assoc)):
                _must_age(words, assoc, domain.universe_mask, evict)

    def _transfer_block_packed(self, words, block, classify=None):
        """Packed mirror of :meth:`_transfer_block` (*words* mutable)."""
        assoc = self.config.assoc
        domain = self._packed
        bits = domain.bit
        set_mask = domain.set_mask
        num_sets = self.config.num_sets
        block_of = self.config.block_of
        fetch_cac = self.fetch_cac
        top = assoc - 1
        for addr, instr in block.instrs:
            if self.serves_fetch and addr >= self.spm_size:
                cac = "A" if fetch_cac is None else fetch_cac.get(addr, "U")
                if cac != "N":
                    definite = cac == "A"
                    fetch_block = block_of(addr)
                    bit = bits[fetch_block]
                    smask = set_mask[fetch_block % num_sets]
                    if classify is not None:
                        classify(addr, "fetch", bool(words[top] & bit))
                    if definite:
                        _must_access(words, assoc, bit, smask)
                    else:
                        _must_uncertain(words, assoc, bit, smask)
                    if instr.size == 4:
                        second = block_of(addr + 2)
                        if second != fetch_block:
                            bit = bits[second]
                            smask = set_mask[second % num_sets]
                            if classify is not None and \
                                    not words[top] & bit:
                                # Both halves must hit for an AH fetch.
                                classify(addr, "fetch_second", False)
                            if definite:
                                _must_access(words, assoc, bit, smask)
                            else:
                                _must_uncertain(words, assoc, bit, smask)
            if self.serves_data:
                if classify is not None:
                    needed = self._read_blocks[addr]
                    if needed is not None:
                        resident = words[top]
                        hit = True
                        for need in needed:
                            need_bit = bits.get(need)
                            if need_bit is None or not resident & need_bit:
                                hit = False
                                break
                        classify(addr, "data", hit)
                self._apply_plan_packed(words, self._plan[addr], addr)

    def _transfer_block_may_packed(self, state, block, classify=None):
        """Packed mirror of :meth:`_transfer_block_may` (*state* is a
        mutable ``[blocks, top]`` pair of mask words)."""
        domain = self._packed
        bits = domain.bit
        set_mask = domain.set_mask
        num_sets = self.config.num_sets
        block_of = self.config.block_of
        fetch_cac = self.fetch_cac
        blocks, top = state
        for addr, instr in block.instrs:
            if self.serves_fetch and addr >= self.spm_size:
                cac = "A" if fetch_cac is None else fetch_cac.get(addr, "U")
                if cac != "N":
                    fetch_block = block_of(addr)
                    second = (block_of(addr + 2) if instr.size == 4
                              else fetch_block)
                    if classify is not None and cac == "A":
                        # Both halves must miss for the next level to be
                        # definitely accessed on every execution.
                        miss = not (
                            top >> (fetch_block % num_sets) & 1
                            or blocks & bits[fetch_block]
                            or top >> (second % num_sets) & 1
                            or blocks & bits[second])
                        classify(addr, "fetch", miss)
                    blocks |= bits[fetch_block]
                    if second != fetch_block:
                        blocks |= bits[second]
            if self.serves_data:
                plan = self._plan[addr]
                if plan is None:
                    continue
                kind = plan[0]
                if kind == "rblock":
                    cac = self._data_cac_for(addr)
                    if cac == "N":
                        continue
                    _kind, block_num, count = plan
                    if classify is not None and cac == "A" and count == 1:
                        miss = not (top >> (block_num % num_sets) & 1
                                    or blocks & bits[block_num])
                        classify(addr, "data", miss)
                    blocks |= bits[block_num]
                elif kind == "wblock":
                    pass  # write-through, no allocate: never inserts
                elif kind == "sets":
                    _kind, sets, evict, _count = plan
                    if evict and self._data_cac_for(addr) != "N":
                        for index in sets:
                            top |= 1 << index
                            blocks |= set_mask[index]
                else:  # allsets
                    _kind, evict, _count = plan
                    if evict and self._data_cac_for(addr) != "N":
                        top |= domain.all_top_mask
                        blocks |= domain.universe_mask
        state[0] = blocks
        state[1] = top

    # -- fixpoint ---------------------------------------------------------------

    def _interproc_succs(self):
        """Successor map over (func_name, block_addr) nodes, including
        call and return edges (context-insensitive)."""
        cfgs = self.cfgs
        succs = {}
        for name, cfg in cfgs.items():
            for baddr, block in cfg.blocks.items():
                node = (name, baddr)
                out = []
                if block.call_target is not None:
                    callee = self._entry_by_addr[block.call_target]
                    out.append((callee, cfgs[callee].entry))
                    # Return edge: callee exits -> call fall-through.
                    for exit_block in cfgs[callee].exit_blocks:
                        ret_node = (callee, exit_block.start)
                        succs.setdefault(ret_node, []).extend(
                            (name, s) for s in block.succs)
                else:
                    out.extend((name, s) for s in block.succs)
                succs.setdefault(node, []).extend(out)
        return succs

    def _succs_cached(self):
        if self._succs is None:
            self._succs = self._interproc_succs()
        return self._succs

    def _rpo(self):
        """node -> reverse-post-order index over the interprocedural
        graph (computed once, shared by the MUST and MAY fixpoints)."""
        if self._rpo_index is not None:
            return self._rpo_index
        succs = self._succs_cached()
        entry = (self.entry_name, self.cfgs[self.entry_name].entry)
        seen = {entry}
        order = []
        stack = [(entry, iter(succs.get(entry, ())))]
        while stack:
            node, remaining = stack[-1]
            advanced = False
            for succ in remaining:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(succs.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(node)
        order.reverse()
        self._rpo_index = {node: i for i, node in enumerate(order)}
        return self._rpo_index

    def _fixpoint(self, entry_state, run_prog, progs):
        """Reverse-post-order worklist fixpoint; returns in-states.

        Nodes are processed in RPO (a priority queue over the RPO
        index), so a change flows through a whole procedure before its
        loop headers are revisited — far fewer re-transfers than the
        LIFO stack this replaces.  Each node's out-state fingerprint is
        memoized: when a re-transfer reproduces the previous out-state,
        the successor joins (deep dict walks) are skipped entirely.
        """
        import heapq

        cfgs = self.cfgs
        # Node = (func_name, block_addr). in-states start unknown (None);
        # the program entry starts cold (empty state), which is sound for
        # both directions: nothing guaranteed, nothing possibly resident.
        entry = (self.entry_name, cfgs[self.entry_name].entry)
        in_states = {entry: entry_state}
        succs = self._succs_cached()
        rpo = self._rpo()
        fallback = len(rpo)

        heap = [(rpo.get(entry, fallback), entry)]
        pending = {entry}
        out_fingerprints = {}
        iterations = 0
        limit = 400 * sum(len(c.blocks) for c in cfgs.values()) + 10_000
        while heap:
            iterations += 1
            if iterations > limit:
                raise RuntimeError("cache fixpoint failed to converge")
            _, node = heapq.heappop(heap)
            pending.discard(node)
            state = in_states[node].copy()
            run_prog(state, progs[node])
            fingerprint = state.fingerprint()
            if out_fingerprints.get(node) == fingerprint:
                continue  # same out-state as last time: nothing to push
            out_fingerprints[node] = fingerprint
            for succ in succs.get(node, ()):
                current = in_states.get(succ)
                if current is None:
                    in_states[succ] = state.copy()
                elif not current.join_with(state):
                    continue
                if succ not in pending:
                    pending.add(succ)
                    heapq.heappush(heap, (rpo.get(succ, fallback), succ))
        return in_states

    def _fixpoint_packed(self, entry_state, run_prog, progs, join):
        """RPO worklist fixpoint over interned immutable states.

        Same shape as :meth:`_fixpoint`, but states are hash-consed
        integer words: the out-state memo and the join change test are
        both pointer (``is``) comparisons, and an unchanged join costs
        one AND/OR pass plus a dict probe instead of a deep dict walk.
        """
        import heapq

        cfgs = self.cfgs
        entry = (self.entry_name, cfgs[self.entry_name].entry)
        in_states = {entry: entry_state}
        succs = self._succs_cached()
        rpo = self._rpo()
        fallback = len(rpo)

        heap = [(rpo.get(entry, fallback), entry)]
        pending = {entry}
        out_memo = {}
        iterations = 0
        limit = 400 * sum(len(c.blocks) for c in cfgs.values()) + 10_000
        while heap:
            iterations += 1
            if iterations > limit:
                raise RuntimeError("cache fixpoint failed to converge")
            _, node = heapq.heappop(heap)
            pending.discard(node)
            out = run_prog(in_states[node], progs[node])
            if out_memo.get(node) is out:
                continue  # same interned out-state: nothing to push
            out_memo[node] = out
            for succ in succs.get(node, ()):
                current = in_states.get(succ)
                if current is None:
                    in_states[succ] = out
                else:
                    joined = join(current, out)
                    if joined is current:
                        continue
                    in_states[succ] = joined
                if succ not in pending:
                    pending.add(succ)
                    heapq.heappush(heap, (rpo.get(succ, fallback), succ))
        return in_states

    def _must_fixpoint_packed(self):
        table = self._intern_must
        if self.config.assoc == 1:
            run_dm = self._run_must_dm

            def run_prog(state, prog):
                return _intern(table, run_dm(state, prog))

            def join(a, b):
                if a is b:
                    return a
                return _intern(table, a & b)

            entry_state = _intern(table, 0)
        else:
            run_packed = self._run_must_packed
            assoc = self.config.assoc

            def run_prog(state, prog):
                return _intern(table, run_packed(state, prog, assoc))

            def join(a, b):
                if a is b:
                    return a
                return _intern(table, tuple(x & y for x, y in zip(a, b)))

            entry_state = _intern(table, (0,) * assoc)
        return self._fixpoint_packed(entry_state, run_prog,
                                     self._packed_must, join)

    def _may_fixpoint_packed(self):
        table = self._intern_may
        run_may = self._run_may_packed

        def run_prog(state, prog):
            return _intern(table, run_may(state, prog))

        def join(a, b):
            if a is b:
                return a
            return _intern(table, (a[0] | b[0], a[1] | b[1]))

        entry_state = _intern(table, (0, 0))
        return self._fixpoint_packed(entry_state, run_prog,
                                     self._packed_may, join)

    def _classify_pass(self, in_states, transfer, classify, prepare=None):
        for name, cfg in self.cfgs.items():
            for baddr, block in cfg.blocks.items():
                node = (name, baddr)
                if node not in in_states:
                    continue  # unreachable
                state = in_states[node]
                state = state.copy() if prepare is None else prepare(state)
                transfer(state, block, classify=classify)

    def run(self) -> CacheAnalysisResult:
        packed = self.domain == "packed"
        if packed:
            in_states = self._must_fixpoint_packed()
            must_transfer = self._transfer_block_packed
            if self.config.assoc == 1:
                def must_prepare(word):
                    return [word]
            else:
                must_prepare = list
        else:
            in_states = self._fixpoint(MustCache(self.config),
                                       self._run_must_prog,
                                       self._must_progs)
            must_transfer = self._transfer_block
            must_prepare = None

        # Classification pass.
        result = CacheAnalysisResult(config=self.config)
        classes = result.classes

        def classify(addr, what, hit):
            entry = classes.setdefault(addr, AccessClass())
            if what == "fetch":
                entry.fetch = AH if hit else NC
            elif what == "fetch_second":
                entry.fetch = NC
            else:
                entry.data = AH if hit else NC

        self._classify_pass(in_states, must_transfer, classify,
                            prepare=must_prepare)

        if self.always_miss:
            if packed:
                may_states = self._may_fixpoint_packed()
                may_transfer = self._transfer_block_may_packed
                may_prepare = list
            else:
                may_states = self._fixpoint(MayCache(self.config),
                                            self._run_may_prog,
                                            self._may_progs)
                may_transfer = self._transfer_block_may
                may_prepare = None

            def classify_am(addr, what, miss):
                entry = classes.setdefault(addr, AccessClass())
                if what == "fetch":
                    entry.fetch_always_miss = miss
                else:
                    entry.data_always_miss = miss

            self._classify_pass(may_states, may_transfer, classify_am,
                                prepare=may_prepare)

        if self.persistence:
            self._apply_persistence(result)
        return result

    # -- persistence (optional ablation) ---------------------------------------

    def _apply_persistence(self, result: CacheAnalysisResult):
        """Upgrade NC fetches to first-miss where a loop scope protects them.

        A fetch line is persistent in a loop if the distinct lines possibly
        touched inside the loop that map to its cache set fit in the set
        (and no unbounded access can reach that set).  Scopes do not cross
        function boundaries; outermost qualifying scope wins.
        """
        from .loops import find_natural_loops

        num_sets = self.config.num_sets
        for name, cfg in self.cfgs.items():
            loops = find_natural_loops(cfg)
            if not loops:
                continue
            ordered = sorted(loops.values(), key=lambda l: -len(l.body))
            for loop in ordered:
                lines, dirty_sets, clean = self._loop_footprint(cfg, loop)
                if not clean:
                    continue
                per_set = {}
                for line in lines:
                    per_set.setdefault(line % num_sets, set()).add(line)
                for baddr in loop.body:
                    for addr, instr in cfg.blocks[baddr].instrs:
                        entry = result.classes.get(addr)
                        if entry is None or entry.fetch != NC:
                            continue
                        line = self.config.block_of(addr)
                        index = line % num_sets
                        if index in dirty_sets:
                            continue
                        if len(per_set.get(index, ())) <= self.config.assoc:
                            entry.fetch = FM
                            entry.fetch_scope = loop.header

    def all_addrs(self):
        """Every instruction address the analysis saw."""
        return self._data.keys()

    def _loop_footprint(self, cfg, loop):
        """(fetch/data lines, sets touched by range accesses, analysable)."""
        lines = set()
        dirty_sets = set()
        for baddr in loop.body:
            block = cfg.blocks[baddr]
            if block.call_target is not None:
                # Calls inside the loop: every line the callee (closure)
                # may touch would need collecting; be conservative and
                # give up on this scope.
                return set(), set(), False
            for addr, instr in block.instrs:
                lines.add(self.config.block_of(addr))
                if instr.size == 4:
                    lines.add(self.config.block_of(addr + 2))
                plan = self._plan[addr]
                if plan is None:
                    continue
                kind = plan[0]
                if kind in ("rblock", "wblock"):
                    lines.add(plan[1])
                elif kind == "sets":
                    dirty_sets |= set(plan[1])
                else:  # allsets
                    return set(), set(), False
        return lines, dirty_sets, True


# --------------------------------------------------------------------------
# Multi-level orchestration (Hardy & Puaut-style CAC chaining)
# --------------------------------------------------------------------------

@dataclass
class LevelClassification:
    """Per-level classification results for one cache level."""

    level: object  # CacheLevel spec
    #: classification of instruction fetches at this level (None when the
    #: level has no instruction side)
    iresult: CacheAnalysisResult = None
    #: classification of data accesses (same object as iresult for a
    #: unified level)
    dresult: CacheAnalysisResult = None


@dataclass
class HierarchyCacheResult:
    """Classifications for every cache level of a pipeline.

    ``primary`` is the outermost level's result — for the paper's
    single-cache systems it is exactly what the old single-level
    analysis produced.
    """

    levels: list = field(default_factory=list)

    @property
    def primary(self) -> CacheAnalysisResult:
        first = self.levels[0]
        return first.iresult if first.iresult is not None else first.dresult

    def fetch_results(self):
        """(CacheLevel, CacheAnalysisResult) along the fetch path."""
        return [(entry.level, entry.iresult) for entry in self.levels
                if entry.iresult is not None]

    def data_results(self):
        """(CacheLevel, CacheAnalysisResult) along the data path."""
        return [(entry.level, entry.dresult) for entry in self.levels
                if entry.dresult is not None]


def _chain_cac(prev_cac, result, addrs, what):
    """CAC for the next level down, given this level's classification.

    ``N`` (never reaches the next level) when the access already never
    reached this one or is guaranteed to hit here; ``A`` when it
    definitely reached this level and the MAY analysis proved it always
    misses; ``U`` otherwise.
    """
    nxt = {}
    for addr in addrs:
        prev = "A" if prev_cac is None else prev_cac.get(addr, "U")
        if prev == "N":
            nxt[addr] = "N"
            continue
        entry = result.classes.get(addr)
        if what == "fetch":
            cls = entry.fetch if entry else NC
            am = entry.fetch_always_miss if entry else False
        else:
            cls = entry.data if entry else None
            am = entry.data_always_miss if entry else False
        if cls == AH:
            nxt[addr] = "N"
        elif prev == "A" and am:
            nxt[addr] = "A"
        else:
            nxt[addr] = "U"
    return nxt


def _cac_fingerprint(cac):
    return None if cac is None else tuple(sorted(cac.items()))


def analyze_hierarchy(image, cfgs, config, stack_range, entry_name,
                      persistence=False, resolved_accesses=None,
                      domain="packed", reuse=True) -> HierarchyCacheResult:
    """Classify every cache level of *config*'s pipeline, outermost first.

    *config* is a :class:`~repro.memory.hierarchy.SystemConfig`.  Each
    level is analysed under the CAC derived from the level above;
    persistence (first-miss) applies to the outermost level only, where
    every access is definite.  *resolved_accesses* (addr -> DataAccess)
    is computed here when not supplied and shared by every level's
    analysis, so address resolution runs once per image rather than
    once per cache level.

    With *reuse* (the default) each per-level run goes through the
    content-addressed reuse cache: the key is the image's content hash
    plus everything else a level's result depends on (its cache config,
    the CAC maps chained from the level above, the SPM clip, the served
    sides, persistence/always-miss, the abstract *domain*), so a sweep
    point that changes only an unrelated level — or a repeat of the
    same point in another worker process, via the shared disk layer —
    skips the fixpoints entirely.
    """
    spm_size = config.spm_size
    specs = config.cache_level_specs
    if resolved_accesses is None:
        resolved_accesses = resolve_all(image, cfgs, stack_range)
    image_key = image.content_key() if reuse else None
    intern_tables = ({}, {})

    def run_level(cache_config, *, outermost, chained, serves_fetch,
                  serves_data, fetch_cac=None, data_cac=None):
        use_persistence = persistence and outermost
        if image_key is not None:
            key = (_CACHE_VERSION, domain, image_key, cache_config,
                   stack_range, entry_name, spm_size, use_persistence,
                   chained, serves_fetch, serves_data,
                   _cac_fingerprint(fetch_cac), _cac_fingerprint(data_cac))
            cached = _reuse_get(key)
            if cached is not None:
                return cached
        result = CacheAnalysis(
            image, cfgs, cache_config, stack_range, entry_name,
            persistence=use_persistence, serves_fetch=serves_fetch,
            serves_data=serves_data, spm_size=spm_size,
            fetch_cac=fetch_cac, data_cac=data_cac, always_miss=chained,
            resolved_accesses=resolved_accesses, domain=domain,
            intern_tables=intern_tables).run()
        if image_key is not None:
            _reuse_put(key, result)
        return result

    fetch_cac = None
    data_cac = None
    out = HierarchyCacheResult()
    addrs = list(resolved_accesses)
    for depth, level in enumerate(specs):
        outermost = depth == 0
        # Always-miss (MAY) facts are only needed to seed the CAC of a
        # deeper level; the innermost analysis can skip that pass.
        chained = depth + 1 < len(specs)
        iresult = dresult = None
        if level.shared:
            iresult = dresult = run_level(
                level.icache, outermost=outermost, chained=chained,
                serves_fetch=True, serves_data=True,
                fetch_cac=fetch_cac, data_cac=data_cac)
        else:
            if level.icache is not None:
                iresult = run_level(
                    level.icache, outermost=outermost, chained=chained,
                    serves_fetch=True, serves_data=False,
                    fetch_cac=fetch_cac)
            if level.dcache is not None:
                dresult = run_level(
                    level.dcache, outermost=False, chained=chained,
                    serves_fetch=False, serves_data=True,
                    data_cac=data_cac)
        out.levels.append(LevelClassification(
            level=level, iresult=iresult, dresult=dresult))
        if iresult is not None:
            fetch_cac = _chain_cac(fetch_cac, iresult, addrs, "fetch")
        if dresult is not None:
            data_cac = _chain_cac(data_cac, dresult, addrs, "data")
    return out
