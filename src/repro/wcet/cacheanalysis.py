"""Abstract-interpretation cache analysis (Ferdinand-style MUST analysis).

This is the analyser the paper attributes to aiT's cache module — with the
same restriction its experimental ARM7 version had: a **MUST analysis
only** (guaranteed cache contents), without MAY or persistence.  An
optional scope-based persistence analysis is provided as the paper's
"full cache analysis would improve things" ablation.

Domain: per cache set, a map ``memory block -> maximal LRU age`` with at
most ``assoc`` entries.  A block in the map is *guaranteed* resident.
Join is intersection with per-block maximum age (classic must-join).

Transfer per access:

* known address: the block moves to age 0; blocks younger than its old age
  (or all, if it was absent) age by one; age >= assoc evicts;
* address range (arrays with unknown index, stack accesses): every
  possibly-touched set ages by one — reads may insert an unknown block;
* writes are write-through/no-allocate: a known write refreshes a resident
  block but never allocates; an unknown write can only reshuffle recency,
  which ages conservatively without evicting.

The analysis runs over the interprocedural CFG (call and return edges,
context-insensitive), then a classification pass labels every fetch and
every data read as always-hit (AH) / not-classified (NC), plus first-miss
(FM) with a loop scope when persistence is enabled.

Multi-level hierarchies (Hardy & Puaut, "WCET analysis of multi-level
set-associative instruction caches"): each cache level is analysed in
turn, outermost first, under a **cache access classification** (CAC)
derived from the level above — an access is *Always* performed at L1;
at level k+1 it is *Never* performed when level k classified it
always-hit, *Always* performed when level k classified it always-miss
(a MAY analysis proves the block cannot be resident), and *Uncertain*
otherwise.  Uncertain accesses use a joined transfer
(state-with-access ⊓ state-without), which keeps the deeper level's MUST
state sound whether or not the access reaches it; only A accesses (and
write-through stores) insert must-facts at the deeper level, exactly as
in Hardy & Puaut.  Context-insensitive CAC makes deep always-miss facts
rare (an instruction executed twice may hit the second time), so L2
MUST classification is honest but conservative — the cost model prices
unclassified L1 misses all the way to main memory.
:func:`analyze_hierarchy` orchestrates the per-level runs for any
pipeline a :class:`~repro.memory.hierarchy.SystemConfig` can express —
unified, instruction-only, split I/D, hybrid SPM+cache, L1+L2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import Op
from ..memory.cache import CacheConfig
from .accesses import resolve_data_access
from .cfg import FunctionCFG


# --------------------------------------------------------------------------
# Abstract must-cache state
# --------------------------------------------------------------------------

class MustCache:
    """Per-set ``block -> max age`` maps; absence means "not guaranteed"."""

    __slots__ = ("config", "sets")

    def __init__(self, config: CacheConfig, sets=None):
        self.config = config
        self.sets = sets if sets is not None else {}

    def copy(self) -> "MustCache":
        return MustCache(self.config,
                         {s: dict(ages) for s, ages in self.sets.items()})

    def __eq__(self, other):
        return self.sets == other.sets

    def fingerprint(self):
        """Hashable snapshot of the abstract state.

        The fixpoint driver memoizes each node's out-state fingerprint,
        so an unchanged transfer result short-circuits all successor
        joins instead of deep-comparing dicts edge by edge.
        """
        return tuple(sorted(
            (index, tuple(sorted(ages.items())))
            for index, ages in self.sets.items() if ages))

    # -- transfer -----------------------------------------------------------

    def _age_younger(self, ages, block: int, threshold: int):
        """Age (and evict past assoc) every block younger than
        *threshold*, except *block* itself — the LRU aging both the
        definite and the uncertain transfer share."""
        for other, age in list(ages.items()):
            if other != block and age < threshold:
                new_age = age + 1
                if new_age >= self.config.assoc:
                    del ages[other]
                else:
                    ages[other] = new_age

    def access_block(self, block: int, allocate=True):
        """A definite access to *block* (read, or write hit refresh)."""
        config = self.config
        index = (block % config.num_sets)
        ages = self.sets.get(index)
        if ages is None:
            if not allocate:
                return
            ages = self.sets[index] = {}
        old_age = ages.get(block)
        if old_age is None:
            if not allocate:
                # Write miss, no allocation: recency may shift arbitrarily
                # among resident blocks -> age everyone, no eviction.
                for other in ages:
                    ages[other] = min(ages[other] + 1, config.assoc - 1)
                return
            threshold = config.assoc  # everyone ages
        else:
            threshold = old_age
        self._age_younger(ages, block, threshold)
        ages[block] = 0

    def access_block_uncertain(self, block: int):
        """A read of *block* that may or may not occur (CAC ``U``).

        Equivalent to ``join(state after access, state unchanged)`` but
        computed in place: the accessed block never gains residency or
        youth, every other block ages as the definite access would have
        aged it.  Sound whichever way the uncertainty resolves.  (Writes
        never take this path — write-through stores reach every level
        definitely.)
        """
        index = block % self.config.num_sets
        ages = self.sets.get(index)
        if not ages:
            return
        old_age = ages.get(block)
        threshold = self.config.assoc if old_age is None else old_age
        self._age_younger(ages, block, threshold)
        if not ages:
            del self.sets[index]

    def age_set(self, index: int, evict=True):
        """An unknown access may touch set *index*: age everything."""
        ages = self.sets.get(index)
        if not ages:
            return
        for block, age in list(ages.items()):
            new_age = age + 1
            if evict and new_age >= self.config.assoc:
                del ages[block]
            else:
                ages[block] = min(new_age, self.config.assoc - 1)
        if not ages:
            del self.sets[index]

    def contains(self, block: int) -> bool:
        index = block % self.config.num_sets
        return block in self.sets.get(index, ())

    def join_with(self, other: "MustCache") -> bool:
        """In-place must-join (intersection, max age); True if changed."""
        changed = False
        for index in list(self.sets):
            ages = self.sets[index]
            other_ages = other.sets.get(index, {})
            for block in list(ages):
                if block not in other_ages:
                    del ages[block]
                    changed = True
                elif other_ages[block] > ages[block]:
                    ages[block] = other_ages[block]
                    changed = True
            if not ages:
                del self.sets[index]
        return changed


#: Sentinel: a MayCache set that may contain *any* block.
MAY_TOP = "may-top"


class MayCache:
    """Per-set overapproximation of possibly-resident blocks.

    Deliberately coarse: blocks are never evicted (the set only grows),
    so membership is monotone and the fixpoint converges in a couple of
    sweeps.  A block *absent* from the may-state is guaranteed not
    resident — its access is **always-miss**, which is what licenses a
    CAC of ``A`` at the next level down (Hardy & Puaut).  Range and
    unknown accesses may load any block of their sets, modelled by the
    :data:`MAY_TOP` sentinel.
    """

    __slots__ = ("config", "sets")

    def __init__(self, config: CacheConfig, sets=None):
        self.config = config
        self.sets = sets if sets is not None else {}

    def copy(self) -> "MayCache":
        return MayCache(self.config,
                        {s: (blocks if blocks is MAY_TOP else set(blocks))
                         for s, blocks in self.sets.items()})

    def fingerprint(self):
        """Hashable snapshot (see :meth:`MustCache.fingerprint`)."""
        return tuple(sorted(
            (index, MAY_TOP if blocks is MAY_TOP
             else tuple(sorted(blocks)))
            for index, blocks in self.sets.items() if blocks))

    def add_block(self, block: int):
        index = block % self.config.num_sets
        blocks = self.sets.get(index)
        if blocks is MAY_TOP:
            return
        if blocks is None:
            self.sets[index] = {block}
        else:
            blocks.add(block)

    def mark_top(self, index: int):
        self.sets[index] = MAY_TOP

    def mark_all_top(self):
        for index in range(self.config.num_sets):
            self.sets[index] = MAY_TOP

    def may_contain(self, block: int) -> bool:
        blocks = self.sets.get(block % self.config.num_sets)
        return blocks is MAY_TOP or (blocks is not None and block in blocks)

    def join_with(self, other: "MayCache") -> bool:
        """In-place may-join (union); True if changed."""
        changed = False
        for index, theirs in other.sets.items():
            mine = self.sets.get(index)
            if mine is MAY_TOP:
                continue
            if theirs is MAY_TOP:
                self.sets[index] = MAY_TOP
                changed = True
            elif mine is None:
                self.sets[index] = set(theirs)
                changed = True
            elif not theirs <= mine:
                mine |= theirs
                changed = True
        return changed


# --------------------------------------------------------------------------
# Classification results
# --------------------------------------------------------------------------

AH = "always-hit"
NC = "not-classified"
FM = "first-miss"     # persistence: miss once per scope entry


@dataclass
class AccessClass:
    """Classification of one instruction's memory behaviour."""

    fetch: str = NC
    #: classification of the data read (None when the op reads nothing)
    data: str = None
    #: loop-header addr of the persistence scope for FM fetches
    fetch_scope: int = None
    #: MAY analysis proved the fetch misses this level on every
    #: execution (so it is Always performed at the next level)
    fetch_always_miss: bool = False
    #: likewise for the data read
    data_always_miss: bool = False


@dataclass
class CacheAnalysisResult:
    config: CacheConfig
    #: instruction addr -> AccessClass
    classes: dict = field(default_factory=dict)

    def fetch_class(self, addr) -> str:
        entry = self.classes.get(addr)
        return entry.fetch if entry else NC

    def data_class(self, addr) -> str:
        entry = self.classes.get(addr)
        return entry.data if entry else NC

    def count(self, kind) -> int:
        total = 0
        for entry in self.classes.values():
            total += entry.fetch == kind
            total += entry.data == kind
        return total


# --------------------------------------------------------------------------
# Interprocedural fixpoint + classification
# --------------------------------------------------------------------------

class CacheAnalysis:
    """MUST (+ optional persistence) analysis of one cache level.

    The default arguments analyse the paper's single cache: every access
    definitely happens (CAC ``A``) and the cache's ``unified`` flag
    decides whether data traffic touches it.  Deeper levels pass
    *fetch_cac*/*data_cac* maps (addr -> ``"A"``/``"U"``/``"N"``) from
    the level above, *serves_fetch*/*serves_data* to model split I/D
    arrays, and *spm_size* so accesses settled by a scratchpad in front
    never reach the tags.
    """

    def __init__(self, image, cfgs: dict, config: CacheConfig,
                 stack_range, entry_name: str, persistence=False, *,
                 serves_fetch=True, serves_data=None, spm_size=0,
                 fetch_cac=None, data_cac=None, always_miss=False,
                 resolved_accesses=None):
        self.image = image
        self.cfgs = cfgs
        self.config = config
        self.stack_range = stack_range
        self.entry_name = entry_name
        self.persistence = persistence
        self.always_miss = always_miss
        self.serves_fetch = serves_fetch
        self.serves_data = (config.unified if serves_data is None
                            else serves_data)
        self.spm_size = spm_size
        self.fetch_cac = fetch_cac
        self.data_cac = data_cac
        self._entry_by_addr = {cfg.entry: name
                               for name, cfg in cfgs.items()}
        # Worklist machinery shared by the MUST and MAY fixpoints.
        self._succs = None
        self._rpo_index = None
        # Pre-resolve every instruction's data access and compile it to a
        # cheap "plan" so the fixpoint loop never re-derives address sets.
        # *resolved_accesses* (addr -> DataAccess) lets a multi-level
        # analysis resolve each instruction once and share the result
        # across every level's CacheAnalysis.
        self._data = {}
        self._plan = {}
        self._read_blocks = {}   # addr -> blocks that must all hit for AH
        for cfg in cfgs.values():
            for block in cfg.blocks.values():
                for addr, instr in block.instrs:
                    if resolved_accesses is not None:
                        access = resolved_accesses[addr]
                    else:
                        access = resolve_data_access(
                            instr, addr, image, stack_range)
                    self._data[addr] = access
                    self._plan[addr] = self._compile_plan(access)
                    self._read_blocks[addr] = self._compile_read(access)
        # Per-basic-block transfer programs: the CAC decisions, block
        # numbers and plan lookups above are all static per analysis, so
        # the fixpoint replays a flat step list instead of re-deriving
        # them on every iteration.
        self._must_progs = {}
        self._may_progs = {}
        for name, cfg in cfgs.items():
            for baddr, block in cfg.blocks.items():
                must, may = self._compile_block(block)
                self._must_progs[(name, baddr)] = must
                self._may_progs[(name, baddr)] = may

    def _cached_ranges(self, ranges):
        """Clip *ranges* to the part behind the cache (above the SPM)."""
        spm = self.spm_size
        if not spm:
            return ranges
        return tuple((max(lo, spm), hi) for lo, hi in ranges if hi > spm)

    def _compile_plan(self, access):
        """Compile a DataAccess into (kind, payload) steps for transfer."""
        if access is None:
            return None
        if not self.serves_data:
            return None  # instruction cache: data never touches it
        if access.unknown:
            return ("allsets", not access.is_write, access.count)
        if access.exact:
            if access.address < self.spm_size:
                return None  # settled by the scratchpad in front
            block = self.config.block_of(access.address)
            return ("wblock" if access.is_write else "rblock", block, 1)
        ranges = self._cached_ranges(access.ranges)
        if not ranges:
            return None
        blocks = set()
        for lo, hi in ranges:
            blocks.update(self._blocks_of_range(lo, hi))
        if len(blocks) == 1 and not access.is_write:
            return ("rblock", next(iter(blocks)), access.count)
        sets = tuple(sorted(self._sets_of_ranges(ranges)))
        if len(sets) == self.config.num_sets:
            return ("allsets", not access.is_write, access.count)
        return ("sets", sets, not access.is_write, access.count)

    def _compile_read(self, access):
        """Blocks that must all be resident for the read to be AH."""
        if access is None or access.is_write or access.unknown or \
                access.count != 1 or not self.serves_data:
            return None
        ranges = self._cached_ranges(access.ranges)
        if not ranges or ranges != access.ranges:
            return None  # fully or partly in front of the cache
        blocks = set()
        for lo, hi in ranges:
            blocks.update(self._blocks_of_range(lo, hi))
        if len(blocks) > 4 * self.config.assoc:
            return None  # cannot all be resident in interesting cases
        return tuple(blocks)

    # -- helpers -------------------------------------------------------------

    def _blocks_of_range(self, lo, hi):
        return self.config.blocks_in_range(lo, hi)

    def _sets_of_ranges(self, ranges):
        sets = set()
        num_sets = self.config.num_sets
        for lo, hi in ranges:
            blocks = self._blocks_of_range(lo, hi)
            if len(blocks) >= num_sets:
                return set(range(num_sets))
            for block in blocks:
                sets.add(block % num_sets)
        return sets

    def _data_cac_for(self, addr):
        if self.data_cac is None:
            return "A"
        return self.data_cac.get(addr, "U")

    def _apply_plan(self, state: MustCache, plan, addr):
        if plan is None:
            return
        kind = plan[0]
        if kind == "rblock":
            # Reads respect the CAC: an access settled by the level in
            # front never reaches these tags, an uncertain one joins.
            cac = self._data_cac_for(addr)
            if cac == "N":
                return
            _kind, block, count = plan
            if cac == "A":
                for _ in range(count):
                    state.access_block(block)
            else:
                for _ in range(count):
                    state.access_block_uncertain(block)
        elif kind == "wblock":
            # Writes are write-through: they touch every level's tags.
            state.access_block(plan[1], allocate=state.contains(plan[1]))
        elif kind == "sets":
            _kind, sets, evict, count = plan
            if evict and self._data_cac_for(addr) == "N":
                return
            for _ in range(count):
                for index in sets:
                    state.age_set(index, evict=evict)
        else:  # allsets
            _kind, evict, count = plan
            if evict and self._data_cac_for(addr) == "N":
                return
            for _ in range(count):
                for index in list(state.sets):
                    state.age_set(index, evict=evict)

    def _transfer_block(self, state: MustCache, block, classify=None):
        """Apply one basic block's accesses to *state* (in place)."""
        block_of = self.config.block_of
        fetch_cac = self.fetch_cac
        for addr, instr in block.instrs:
            if self.serves_fetch and addr >= self.spm_size:
                cac = "A" if fetch_cac is None else fetch_cac.get(addr, "U")
                if cac != "N":
                    definite = cac == "A"
                    fetch_block = block_of(addr)
                    if classify is not None:
                        classify(addr, "fetch", state.contains(fetch_block))
                    if definite:
                        state.access_block(fetch_block)
                    else:
                        state.access_block_uncertain(fetch_block)
                    if instr.size == 4:
                        second = block_of(addr + 2)
                        if second != fetch_block:
                            if classify is not None and \
                                    not state.contains(second):
                                # Both halves must hit for an AH fetch.
                                classify(addr, "fetch_second", False)
                            if definite:
                                state.access_block(second)
                            else:
                                state.access_block_uncertain(second)
            if self.serves_data:
                if classify is not None:
                    needed = self._read_blocks[addr]
                    if needed is not None:
                        hit = all(state.contains(b) for b in needed)
                        classify(addr, "data", hit)
                self._apply_plan(state, self._plan[addr], addr)

    # -- the MAY side (always-miss facts for the next level's CAC) -----------

    def _transfer_block_may(self, state: MayCache, block, classify=None):
        """Apply one basic block's accesses to a may-state (in place).

        With *classify*, records whether each CAC-``A`` access targets a
        block provably absent — an **always-miss**, i.e. an access that
        is Always performed at the next level down.
        """
        block_of = self.config.block_of
        fetch_cac = self.fetch_cac
        for addr, instr in block.instrs:
            if self.serves_fetch and addr >= self.spm_size:
                cac = "A" if fetch_cac is None else fetch_cac.get(addr, "U")
                if cac != "N":
                    fetch_block = block_of(addr)
                    second = (block_of(addr + 2) if instr.size == 4
                              else fetch_block)
                    if classify is not None and cac == "A":
                        # Both halves must miss for the next level to be
                        # definitely accessed on every execution.
                        miss = not (state.may_contain(fetch_block)
                                    or state.may_contain(second))
                        classify(addr, "fetch", miss)
                    state.add_block(fetch_block)
                    if second != fetch_block:
                        state.add_block(second)
            if self.serves_data:
                plan = self._plan[addr]
                if plan is None:
                    continue
                kind = plan[0]
                if kind == "rblock":
                    cac = self._data_cac_for(addr)
                    if cac == "N":
                        continue
                    _kind, block_num, count = plan
                    if classify is not None and cac == "A" and count == 1:
                        classify(addr, "data",
                                 not state.may_contain(block_num))
                    state.add_block(block_num)
                elif kind == "wblock":
                    pass  # write-through, no allocate: never inserts
                elif kind == "sets":
                    _kind, sets, evict, _count = plan
                    if evict and self._data_cac_for(addr) != "N":
                        for index in sets:
                            state.mark_top(index)
                else:  # allsets
                    _kind, evict, _count = plan
                    if evict and self._data_cac_for(addr) != "N":
                        state.mark_all_top()

    # -- compiled transfer programs ---------------------------------------------

    def _compile_block(self, block):
        """Compile one basic block into flat MUST and MAY step lists.

        Everything the per-instruction transfers re-derive on every
        fixpoint iteration — spm clipping, CAC decisions, block numbers,
        plan lookups — is static for one analysis, so it is folded here
        once.  The classification passes keep using the original
        ``_transfer_block``/``_transfer_block_may`` (whose state updates
        these programs mirror exactly).
        """
        block_of = self.config.block_of
        fetch_cac = self.fetch_cac
        must = []
        may = []
        for addr, instr in block.instrs:
            if self.serves_fetch and addr >= self.spm_size:
                cac = "A" if fetch_cac is None else fetch_cac.get(addr, "U")
                if cac != "N":
                    opcode = 0 if cac == "A" else 1
                    fetch_block = block_of(addr)
                    must.append((opcode, fetch_block))
                    may.append((0, fetch_block))
                    if instr.size == 4:
                        second = block_of(addr + 2)
                        if second != fetch_block:
                            must.append((opcode, second))
                            may.append((0, second))
            if self.serves_data:
                plan = self._plan[addr]
                if plan is None:
                    continue
                kind = plan[0]
                if kind == "rblock":
                    cac = self._data_cac_for(addr)
                    if cac == "N":
                        continue
                    _kind, target, count = plan
                    must.append((2 if cac == "A" else 3, target, count))
                    may.append((0, target))
                elif kind == "wblock":
                    must.append((4, plan[1]))
                elif kind == "sets":
                    _kind, sets, evict, count = plan
                    if evict and self._data_cac_for(addr) == "N":
                        continue
                    must.append((5, sets, evict, count))
                    if evict:
                        may.append((1, sets))
                else:  # allsets
                    _kind, evict, count = plan
                    if evict and self._data_cac_for(addr) == "N":
                        continue
                    must.append((6, evict, count))
                    if evict:
                        may.append((2,))
        return tuple(must), tuple(may)

    @staticmethod
    def _run_must_prog(state: MustCache, prog):
        for step in prog:
            opcode = step[0]
            if opcode == 0:
                state.access_block(step[1])
            elif opcode == 1:
                state.access_block_uncertain(step[1])
            elif opcode == 2:
                for _ in range(step[2]):
                    state.access_block(step[1])
            elif opcode == 3:
                for _ in range(step[2]):
                    state.access_block_uncertain(step[1])
            elif opcode == 4:
                target = step[1]
                state.access_block(target, allocate=state.contains(target))
            elif opcode == 5:
                _opcode, sets, evict, count = step
                for _ in range(count):
                    for index in sets:
                        state.age_set(index, evict=evict)
            else:
                _opcode, evict, count = step
                for _ in range(count):
                    for index in list(state.sets):
                        state.age_set(index, evict=evict)

    @staticmethod
    def _run_may_prog(state: MayCache, prog):
        for step in prog:
            opcode = step[0]
            if opcode == 0:
                state.add_block(step[1])
            elif opcode == 1:
                for index in step[1]:
                    state.mark_top(index)
            else:
                state.mark_all_top()

    # -- fixpoint ---------------------------------------------------------------

    def _interproc_succs(self):
        """Successor map over (func_name, block_addr) nodes, including
        call and return edges (context-insensitive)."""
        cfgs = self.cfgs
        succs = {}
        for name, cfg in cfgs.items():
            for baddr, block in cfg.blocks.items():
                node = (name, baddr)
                out = []
                if block.call_target is not None:
                    callee = self._entry_by_addr[block.call_target]
                    out.append((callee, cfgs[callee].entry))
                    # Return edge: callee exits -> call fall-through.
                    for exit_block in cfgs[callee].exit_blocks:
                        ret_node = (callee, exit_block.start)
                        succs.setdefault(ret_node, []).extend(
                            (name, s) for s in block.succs)
                else:
                    out.extend((name, s) for s in block.succs)
                succs.setdefault(node, []).extend(out)
        return succs

    def _succs_cached(self):
        if self._succs is None:
            self._succs = self._interproc_succs()
        return self._succs

    def _rpo(self):
        """node -> reverse-post-order index over the interprocedural
        graph (computed once, shared by the MUST and MAY fixpoints)."""
        if self._rpo_index is not None:
            return self._rpo_index
        succs = self._succs_cached()
        entry = (self.entry_name, self.cfgs[self.entry_name].entry)
        seen = {entry}
        order = []
        stack = [(entry, iter(succs.get(entry, ())))]
        while stack:
            node, remaining = stack[-1]
            advanced = False
            for succ in remaining:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(succs.get(succ, ()))))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                order.append(node)
        order.reverse()
        self._rpo_index = {node: i for i, node in enumerate(order)}
        return self._rpo_index

    def _fixpoint(self, entry_state, run_prog, progs):
        """Reverse-post-order worklist fixpoint; returns in-states.

        Nodes are processed in RPO (a priority queue over the RPO
        index), so a change flows through a whole procedure before its
        loop headers are revisited — far fewer re-transfers than the
        LIFO stack this replaces.  Each node's out-state fingerprint is
        memoized: when a re-transfer reproduces the previous out-state,
        the successor joins (deep dict walks) are skipped entirely.
        """
        import heapq

        cfgs = self.cfgs
        # Node = (func_name, block_addr). in-states start unknown (None);
        # the program entry starts cold (empty state), which is sound for
        # both directions: nothing guaranteed, nothing possibly resident.
        entry = (self.entry_name, cfgs[self.entry_name].entry)
        in_states = {entry: entry_state}
        succs = self._succs_cached()
        rpo = self._rpo()
        fallback = len(rpo)

        heap = [(rpo.get(entry, fallback), entry)]
        pending = {entry}
        out_fingerprints = {}
        iterations = 0
        limit = 400 * sum(len(c.blocks) for c in cfgs.values()) + 10_000
        while heap:
            iterations += 1
            if iterations > limit:
                raise RuntimeError("cache fixpoint failed to converge")
            _, node = heapq.heappop(heap)
            pending.discard(node)
            state = in_states[node].copy()
            run_prog(state, progs[node])
            fingerprint = state.fingerprint()
            if out_fingerprints.get(node) == fingerprint:
                continue  # same out-state as last time: nothing to push
            out_fingerprints[node] = fingerprint
            for succ in succs.get(node, ()):
                current = in_states.get(succ)
                if current is None:
                    in_states[succ] = state.copy()
                elif not current.join_with(state):
                    continue
                if succ not in pending:
                    pending.add(succ)
                    heapq.heappush(heap, (rpo.get(succ, fallback), succ))
        return in_states

    def _classify_pass(self, in_states, transfer, classify):
        for name, cfg in self.cfgs.items():
            for baddr, block in cfg.blocks.items():
                node = (name, baddr)
                if node not in in_states:
                    continue  # unreachable
                state = in_states[node].copy()
                transfer(state, block, classify=classify)

    def run(self) -> CacheAnalysisResult:
        in_states = self._fixpoint(MustCache(self.config),
                                   self._run_must_prog, self._must_progs)

        # Classification pass.
        result = CacheAnalysisResult(config=self.config)
        classes = result.classes

        def classify(addr, what, hit):
            entry = classes.setdefault(addr, AccessClass())
            if what == "fetch":
                entry.fetch = AH if hit else NC
            elif what == "fetch_second":
                entry.fetch = NC
            else:
                entry.data = AH if hit else NC

        self._classify_pass(in_states, self._transfer_block, classify)

        if self.always_miss:
            may_states = self._fixpoint(MayCache(self.config),
                                        self._run_may_prog, self._may_progs)

            def classify_am(addr, what, miss):
                entry = classes.setdefault(addr, AccessClass())
                if what == "fetch":
                    entry.fetch_always_miss = miss
                else:
                    entry.data_always_miss = miss

            self._classify_pass(may_states, self._transfer_block_may,
                                classify_am)

        if self.persistence:
            self._apply_persistence(result)
        return result

    # -- persistence (optional ablation) ---------------------------------------

    def _apply_persistence(self, result: CacheAnalysisResult):
        """Upgrade NC fetches to first-miss where a loop scope protects them.

        A fetch line is persistent in a loop if the distinct lines possibly
        touched inside the loop that map to its cache set fit in the set
        (and no unbounded access can reach that set).  Scopes do not cross
        function boundaries; outermost qualifying scope wins.
        """
        from .loops import find_natural_loops

        num_sets = self.config.num_sets
        for name, cfg in self.cfgs.items():
            loops = find_natural_loops(cfg)
            if not loops:
                continue
            ordered = sorted(loops.values(), key=lambda l: -len(l.body))
            for loop in ordered:
                lines, dirty_sets, clean = self._loop_footprint(cfg, loop)
                if not clean:
                    continue
                per_set = {}
                for line in lines:
                    per_set.setdefault(line % num_sets, set()).add(line)
                for baddr in loop.body:
                    for addr, instr in cfg.blocks[baddr].instrs:
                        entry = result.classes.get(addr)
                        if entry is None or entry.fetch != NC:
                            continue
                        line = self.config.block_of(addr)
                        index = line % num_sets
                        if index in dirty_sets:
                            continue
                        if len(per_set.get(index, ())) <= self.config.assoc:
                            entry.fetch = FM
                            entry.fetch_scope = loop.header

    def all_addrs(self):
        """Every instruction address the analysis saw."""
        return self._data.keys()

    def _loop_footprint(self, cfg, loop):
        """(fetch/data lines, sets touched by range accesses, analysable)."""
        lines = set()
        dirty_sets = set()
        for baddr in loop.body:
            block = cfg.blocks[baddr]
            if block.call_target is not None:
                # Calls inside the loop: every line the callee (closure)
                # may touch would need collecting; be conservative and
                # give up on this scope.
                return set(), set(), False
            for addr, instr in block.instrs:
                lines.add(self.config.block_of(addr))
                if instr.size == 4:
                    lines.add(self.config.block_of(addr + 2))
                plan = self._plan[addr]
                if plan is None:
                    continue
                kind = plan[0]
                if kind in ("rblock", "wblock"):
                    lines.add(plan[1])
                elif kind == "sets":
                    dirty_sets |= set(plan[1])
                else:  # allsets
                    return set(), set(), False
        return lines, dirty_sets, True


# --------------------------------------------------------------------------
# Multi-level orchestration (Hardy & Puaut-style CAC chaining)
# --------------------------------------------------------------------------

@dataclass
class LevelClassification:
    """Per-level classification results for one cache level."""

    level: object  # CacheLevel spec
    #: classification of instruction fetches at this level (None when the
    #: level has no instruction side)
    iresult: CacheAnalysisResult = None
    #: classification of data accesses (same object as iresult for a
    #: unified level)
    dresult: CacheAnalysisResult = None


@dataclass
class HierarchyCacheResult:
    """Classifications for every cache level of a pipeline.

    ``primary`` is the outermost level's result — for the paper's
    single-cache systems it is exactly what the old single-level
    analysis produced.
    """

    levels: list = field(default_factory=list)

    @property
    def primary(self) -> CacheAnalysisResult:
        first = self.levels[0]
        return first.iresult if first.iresult is not None else first.dresult

    def fetch_results(self):
        """(CacheLevel, CacheAnalysisResult) along the fetch path."""
        return [(entry.level, entry.iresult) for entry in self.levels
                if entry.iresult is not None]

    def data_results(self):
        """(CacheLevel, CacheAnalysisResult) along the data path."""
        return [(entry.level, entry.dresult) for entry in self.levels
                if entry.dresult is not None]


def _chain_cac(prev_cac, result, addrs, what):
    """CAC for the next level down, given this level's classification.

    ``N`` (never reaches the next level) when the access already never
    reached this one or is guaranteed to hit here; ``A`` when it
    definitely reached this level and the MAY analysis proved it always
    misses; ``U`` otherwise.
    """
    nxt = {}
    for addr in addrs:
        prev = "A" if prev_cac is None else prev_cac.get(addr, "U")
        if prev == "N":
            nxt[addr] = "N"
            continue
        entry = result.classes.get(addr)
        if what == "fetch":
            cls = entry.fetch if entry else NC
            am = entry.fetch_always_miss if entry else False
        else:
            cls = entry.data if entry else None
            am = entry.data_always_miss if entry else False
        if cls == AH:
            nxt[addr] = "N"
        elif prev == "A" and am:
            nxt[addr] = "A"
        else:
            nxt[addr] = "U"
    return nxt


def analyze_hierarchy(image, cfgs, config, stack_range, entry_name,
                      persistence=False,
                      resolved_accesses=None) -> HierarchyCacheResult:
    """Classify every cache level of *config*'s pipeline, outermost first.

    *config* is a :class:`~repro.memory.hierarchy.SystemConfig`.  Each
    level is analysed under the CAC derived from the level above;
    persistence (first-miss) applies to the outermost level only, where
    every access is definite.  *resolved_accesses* (addr -> DataAccess)
    is computed here when not supplied and shared by every level's
    analysis, so address resolution runs once per image rather than
    once per cache level.
    """
    spm_size = config.spm_size
    specs = config.cache_level_specs
    if resolved_accesses is None:
        resolved_accesses = {}
        for cfg in cfgs.values():
            for block in cfg.blocks.values():
                for addr, instr in block.instrs:
                    resolved_accesses[addr] = resolve_data_access(
                        instr, addr, image, stack_range)
    fetch_cac = None
    data_cac = None
    out = HierarchyCacheResult()
    addrs = None
    for depth, level in enumerate(specs):
        outermost = depth == 0
        # Always-miss (MAY) facts are only needed to seed the CAC of a
        # deeper level; the innermost analysis can skip that pass.
        chained = depth + 1 < len(specs)
        iresult = dresult = None
        if level.shared:
            analysis = CacheAnalysis(
                image, cfgs, level.icache, stack_range, entry_name,
                persistence=persistence and outermost,
                serves_fetch=True, serves_data=True, spm_size=spm_size,
                fetch_cac=fetch_cac, data_cac=data_cac,
                always_miss=chained,
                resolved_accesses=resolved_accesses)
            iresult = dresult = analysis.run()
            addrs = addrs or list(analysis.all_addrs())
        else:
            if level.icache is not None:
                analysis = CacheAnalysis(
                    image, cfgs, level.icache, stack_range, entry_name,
                    persistence=persistence and outermost,
                    serves_fetch=True, serves_data=False,
                    spm_size=spm_size, fetch_cac=fetch_cac,
                    always_miss=chained,
                    resolved_accesses=resolved_accesses)
                iresult = analysis.run()
                addrs = addrs or list(analysis.all_addrs())
            if level.dcache is not None:
                analysis = CacheAnalysis(
                    image, cfgs, level.dcache, stack_range, entry_name,
                    serves_fetch=False, serves_data=True,
                    spm_size=spm_size, data_cac=data_cac,
                    always_miss=chained,
                    resolved_accesses=resolved_accesses)
                dresult = analysis.run()
                addrs = addrs or list(analysis.all_addrs())
        out.levels.append(LevelClassification(
            level=level, iresult=iresult, dresult=dresult))
        if iresult is not None:
            fetch_cac = _chain_cac(fetch_cac, iresult, addrs, "fetch")
        if dresult is not None:
            data_cac = _chain_cac(data_cac, dresult, addrs, "data")
    return out
