"""Static stack-depth analysis.

Bounds the address range the runtime stack can occupy, so the cache
analysis only invalidates the cache sets the stack may actually map to
(instead of clobbering the whole cache on every sp-relative access).
This is the lightweight analogue of aiT's value/stack analysis.

Per function, the frame is fixed by the prologue (mini-C never moves sp
mid-function): pushed registers plus the static sp adjustment.  The
program-wide bound follows the call graph (recursion is rejected — the
paper's setting is static real-time code).
"""

from __future__ import annotations

from ..isa.opcodes import Op
from ..memory.regions import STACK_TOP
from .cfg import FunctionCFG


class StackAnalysisError(Exception):
    pass


def frame_bytes(cfg: FunctionCFG) -> int:
    """Maximal stack bytes this function itself occupies."""
    pushed = 0
    adjusted = 0
    for block in cfg.blocks.values():
        block_adjust = 0
        for _addr, instr in block.instrs:
            if instr.op is Op.PUSH:
                pushed = max(
                    pushed,
                    4 * (len(instr.reglist) + (1 if instr.with_link else 0)))
            elif instr.op is Op.SPADJ and instr.imm < 0:
                block_adjust += -instr.imm
        adjusted = max(adjusted, block_adjust)
    return pushed + adjusted


def max_stack_depth(cfgs: dict, entry_name: str,
                    entry_by_addr: dict) -> int:
    """Maximal total stack bytes from *entry_name* down the call graph."""
    memo = {}
    visiting = set()

    def depth(name):
        if name in memo:
            return memo[name]
        if name in visiting:
            raise StackAnalysisError(
                f"recursion detected at {name!r}; WCET analysis requires "
                "a recursion-free call graph")
        visiting.add(name)
        cfg = cfgs[name]
        own = frame_bytes(cfg)
        deepest_callee = 0
        for callee_addr in cfg.calls:
            callee = entry_by_addr.get(callee_addr)
            if callee is None:
                raise StackAnalysisError(
                    f"{name!r} calls unknown address {callee_addr:#x}")
            deepest_callee = max(deepest_callee, depth(callee))
        visiting.discard(name)
        memo[name] = own + deepest_callee
        return memo[name]

    return depth(entry_name)


def stack_region(cfgs: dict, entry_name: str, entry_by_addr: dict):
    """The address range [lo, hi) the stack can occupy during execution."""
    depth = max_stack_depth(cfgs, entry_name, entry_by_addr)
    return STACK_TOP - depth, STACK_TOP
