"""Static resolution of data accesses for the WCET analyser.

For each memory-touching instruction this module derives *where* the access
can go, combining:

* decoder facts (PC-relative literal loads carry their absolute address);
* sp-relative opcodes (LDRSP/STRSP/PUSH/POP -> the analysed stack range);
* compiler access notes resolved against the linker map — the automated
  version of the paper's "range of possible addresses for array accesses"
  annotations.

The result is a :class:`DataAccess` consumed by both the timing model
(region lookup for scratchpad systems) and the cache analysis (which
blocks/sets an access can touch).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.opcodes import LOAD_WIDTH, STORE_WIDTH, Op
from ..link.image import Image


@dataclass(frozen=True)
class DataAccess:
    """Static description of one instruction's data traffic.

    *ranges* is a tuple of ``(lo, hi)`` absolute byte ranges: the access
    touches exactly one address inside one of the ranges.  ``exact`` is
    set when the range pins a single address.  ``count`` > 1 models
    PUSH/POP word sequences (each word may touch any address in range —
    in practice the stack range).  ``unknown`` means no information.
    """

    width: int
    is_write: bool
    ranges: tuple = ()
    exact: bool = False
    count: int = 1
    unknown: bool = False

    @property
    def address(self) -> int:
        assert self.exact
        return self.ranges[0][0]


def resolve_all(image: Image, cfgs: dict, stack_range) -> dict:
    """``addr -> DataAccess`` for every instruction of every CFG.

    One shared resolution pass: the analyser driver, every cache
    level's analysis and the cost model all consume this map, so the
    note/symbol lookups run once per image instead of once per level.
    """
    accesses = {}
    for cfg in cfgs.values():
        for block in cfg.blocks.values():
            for addr, instr in block.instrs:
                accesses[addr] = resolve_data_access(
                    instr, addr, image, stack_range)
    return accesses


def resolve_data_access(instr, addr: int, image: Image, stack_range):
    """Return a :class:`DataAccess` for *instr* at *addr*, or None."""
    op = instr.op

    if op is Op.LDRPC:
        literal = ((addr + 4) & ~3) + instr.imm
        return DataAccess(width=4, is_write=False,
                          ranges=((literal, literal + 4),), exact=True)

    if op in (Op.LDRSP, Op.STRSP):
        return DataAccess(width=4, is_write=op is Op.STRSP,
                          ranges=(stack_range,))

    if op in (Op.PUSH, Op.POP):
        regs = len(instr.reglist) + (1 if instr.with_link else 0)
        if regs == 0:
            return None
        return DataAccess(width=4, is_write=op is Op.PUSH,
                          ranges=(stack_range,), count=regs)

    load_width = LOAD_WIDTH.get(op)
    store_width = STORE_WIDTH.get(op)
    if load_width is None and store_width is None:
        return None
    width = load_width or store_width
    is_write = store_width is not None

    note = image.access_notes.get(addr)
    if note is None:
        return DataAccess(width=width, is_write=is_write, unknown=True)
    if note.stack:
        return DataAccess(width=width, is_write=is_write,
                          ranges=(stack_range,))
    if not note.targets:
        return DataAccess(width=width, is_write=is_write, unknown=True)

    ranges = []
    for symbol, lo, hi in note.targets:
        base = image.symbols.get(symbol)
        if base is None:
            return DataAccess(width=width, is_write=is_write, unknown=True)
        ranges.append((base + lo, base + hi))
    exact = (len(ranges) == 1
             and ranges[0][1] - ranges[0][0] == width)
    return DataAccess(width=width, is_write=is_write,
                      ranges=tuple(ranges), exact=exact)
