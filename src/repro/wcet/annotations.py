"""aiT-style annotation files (the paper's Figure 2).

The paper's workflow feeds the WCET tool a configuration file describing
memory areas (address range, cycles per access, waitstates, attributes),
plus loop bounds and possible address ranges for array accesses — all
"automated using information from the simulator and from the linker".

This module generates exactly that artefact from a linked image:

* one ``MEMORY-AREA`` per scratchpad/main region, with the Table-1 cycle
  counts; code objects are split into instruction ranges (16-bit, 2
  cycles from main memory) and literal pools (32-bit read-only data,
  4 cycles), as in Figure 2;
* ``LOOP-BOUND`` lines for every flow fact;
* ``ACCESS`` lines for every load/store with a known target range.

The analyser itself consumes the same linker facts directly; the file
format exists to reproduce the paper's artefact and for interoperability
tests (it parses back losslessly via :func:`parse_annotations`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..link.image import Image
from ..memory.hierarchy import SystemConfig
from ..memory.regions import RegionKind
from .cfg import build_all_cfgs


@dataclass(frozen=True)
class MemoryArea:
    lo: int
    hi: int              # inclusive, as in aiT annotation files
    cycles: int
    attributes: tuple    # e.g. ("READ-ONLY", "CODE-ONLY")
    comment: str = ""


@dataclass
class AnnotationSet:
    areas: list = field(default_factory=list)
    loop_bounds: dict = field(default_factory=dict)   # addr -> bound
    accesses: dict = field(default_factory=dict)      # addr -> tuple ranges


def _pool_ranges(image: Image, cfgs):
    """Byte ranges inside code objects not covered by instructions."""
    pools = []
    for obj in image.code_objects:
        covered = set()
        cfg = cfgs[obj.name]
        for block in cfg.blocks.values():
            for addr, instr in block.instrs:
                for offset in range(0, instr.size, 2):
                    covered.add(addr + offset)
        cursor = obj.base
        while cursor < obj.end:
            if cursor in covered:
                cursor += 2
                continue
            start = cursor
            while cursor < obj.end and cursor not in covered:
                cursor += 2
            pools.append((obj.name, start, cursor))
    return pools


def generate_annotations(image: Image, config: SystemConfig) -> AnnotationSet:
    """Build the annotation set for *image* under *config*."""
    cfgs = build_all_cfgs(image)
    timing = config.timing
    annos = AnnotationSet()

    def cycles(kind, width):
        return timing.cycles(kind, width)

    if config.spm_size:
        annos.areas.append(MemoryArea(
            lo=0, hi=config.spm_size - 1,
            cycles=cycles(RegionKind.SPM, 4),
            attributes=("READ-WRITE",),
            comment="Scratchpad"))

    pool_by_obj = {}
    for name, lo, hi in _pool_ranges(image, cfgs):
        pool_by_obj.setdefault(name, []).append((lo, hi))

    for obj in sorted(image.objects, key=lambda o: o.base):
        if obj.region == "scratchpad":
            continue  # covered by the scratchpad area
        if obj.kind == "code":
            pool_ranges = pool_by_obj.get(obj.name, [])
            cursor = obj.base
            for lo, hi in sorted(pool_ranges):
                if cursor < lo:
                    annos.areas.append(MemoryArea(
                        lo=cursor, hi=lo - 1,
                        cycles=cycles(RegionKind.MAIN, 2),
                        attributes=("READ-ONLY", "CODE-ONLY"),
                        comment=f"Instructions {obj.name}"))
                annos.areas.append(MemoryArea(
                    lo=lo, hi=hi - 1,
                    cycles=cycles(RegionKind.MAIN, 4),
                    attributes=("READ-ONLY", "DATA-ONLY"),
                    comment=f"Literal pool {obj.name}"))
                cursor = hi
            if cursor < obj.end:
                annos.areas.append(MemoryArea(
                    lo=cursor, hi=obj.end - 1,
                    cycles=cycles(RegionKind.MAIN, 2),
                    attributes=("READ-ONLY", "CODE-ONLY"),
                    comment=f"Instructions {obj.name}"))
        else:
            attrs = ("READ-ONLY", "DATA-ONLY") if obj.readonly else \
                ("READ-WRITE", "DATA-ONLY")
            annos.areas.append(MemoryArea(
                lo=obj.base, hi=obj.end - 1,
                cycles=cycles(RegionKind.MAIN, obj.element_width),
                attributes=attrs,
                comment=f"{obj.name} (array of "
                        f"{8 * obj.element_width} bit)"))

    annos.loop_bounds = dict(image.loop_bounds)
    for addr, note in sorted(image.access_notes.items()):
        if note.stack or not note.targets:
            continue
        resolved = []
        for symbol, lo, hi in note.targets:
            base = image.symbols[symbol]
            resolved.append((base + lo, base + hi))
        annos.accesses[addr] = tuple(resolved)
    return annos


def format_annotations(annos: AnnotationSet) -> str:
    """Render an annotation set in the paper's Figure-2 style."""
    lines = []
    comment = None
    for area in annos.areas:
        if area.comment != comment:
            lines.append(f"# {area.comment}")
            comment = area.comment
        attrs = " ".join(area.attributes)
        lines.append(
            f"MEMORY-AREA: {area.lo:#010x} {area.hi:#010x} "
            f"{area.cycles} {attrs}")
    if annos.loop_bounds:
        lines.append("# Flow facts")
        for addr, bound in sorted(annos.loop_bounds.items()):
            lines.append(f"LOOP-BOUND: {addr:#010x} {bound}")
    if annos.accesses:
        lines.append("# Data access ranges")
        for addr, ranges in sorted(annos.accesses.items()):
            spans = " ".join(f"{lo:#010x}..{hi:#010x}" for lo, hi in ranges)
            lines.append(f"ACCESS: {addr:#010x} {spans}")
    return "\n".join(lines) + "\n"


def parse_annotations(text: str) -> AnnotationSet:
    """Parse :func:`format_annotations` output back (round-trip tested)."""
    annos = AnnotationSet()
    comment = ""
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            comment = line[1:].strip()
            continue
        key, rest = line.split(":", 1)
        fields = rest.split()
        if key == "MEMORY-AREA":
            lo, hi, cycles = (int(fields[0], 0), int(fields[1], 0),
                              int(fields[2]))
            annos.areas.append(MemoryArea(
                lo=lo, hi=hi, cycles=cycles,
                attributes=tuple(fields[3:]), comment=comment))
        elif key == "LOOP-BOUND":
            annos.loop_bounds[int(fields[0], 0)] = int(fields[1])
        elif key == "ACCESS":
            ranges = []
            for span in fields[1:]:
                lo_text, hi_text = span.split("..")
                ranges.append((int(lo_text, 0), int(hi_text, 0)))
            annos.accesses[int(fields[0], 0)] = tuple(ranges)
        else:
            raise ValueError(f"unknown annotation line: {line!r}")
    return annos
