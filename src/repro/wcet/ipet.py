"""Implicit Path Enumeration (IPET): longest path as an ILP.

The classic Li/Malik formulation the paper's aiT workflow uses after
microarchitectural analysis: one execution-count variable per basic block
and per edge, flow conservation, a unit entry flow, and per-loop bound
constraints; the WCET is the maximum of the total cost.

Per function::

    maximise   sum(cost_b * x_b) + sum(extra_e * x_e) + persistence terms
    subject to x_entry's in-flow = 1
               sum(in-edges of b) = x_b = sum(out-edges of b)
               sum(back-edges of L) <= bound_L * sum(entry-edges of L)

The ILP is solved with :mod:`repro.ilp` (the CPLEX stand-in).  IPET flow
matrices are network-like, so the LP relaxation is almost always integral
and branch & bound terminates immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ilp import Model, Status
from .cfg import FunctionCFG
from .loops import Loop


class IPETError(Exception):
    pass


@dataclass
class IPETResult:
    wcet: int
    #: block start addr -> execution count on the critical path
    block_counts: dict = field(default_factory=dict)


def solve_function_ipet(cfg: FunctionCFG, block_costs: dict,
                        edge_extras: dict, loops: dict,
                        scope_penalties=None) -> IPETResult:
    """Solve IPET for one function.

    * *block_costs*: block addr -> cycles per execution (callee WCETs
      already folded into call blocks);
    * *edge_extras*: (src, dst) -> extra cycles when that edge is taken
      (conditional-branch refill);
    * *loops*: header addr -> :class:`Loop` with resolved bounds;
    * *scope_penalties*: header addr -> cycles charged once per loop entry
      (first-miss persistence penalties).
    """
    model = Model(f"ipet_{cfg.name}", maximize=True)

    x_block = {addr: model.add_var(f"x_{addr:#x}", lo=0, integer=True)
               for addr in cfg.blocks}
    x_edge = {}
    for src, dst in cfg.edges():
        x_edge[(src, dst)] = model.add_var(
            f"e_{src:#x}_{dst:#x}", lo=0, integer=True)
    # Virtual entry edge and exit edges.
    entry_var = model.add_var("e_entry", lo=1, hi=1, integer=True)
    exit_vars = {}
    for addr, block in cfg.blocks.items():
        terminal = block.is_exit or not block.succs
        if terminal:
            exit_vars[addr] = model.add_var(
                f"exit_{addr:#x}", lo=0, integer=True)
    if not exit_vars:
        raise IPETError(f"{cfg.name}: no exit blocks (infinite loop?)")

    preds = {addr: [] for addr in cfg.blocks}
    for src, dst in cfg.edges():
        preds[dst].append(src)

    # Flow conservation.
    for addr, block in cfg.blocks.items():
        inflow = {x_edge[(p, addr)]: 1 for p in preds[addr]}
        if addr == cfg.entry:
            inflow[entry_var] = 1
        coeffs = dict(inflow)
        coeffs[x_block[addr]] = coeffs.get(x_block[addr], 0) - 1
        model.add_eq(coeffs, 0)

        outflow = {x_edge[(addr, s)]: 1 for s in block.succs}
        if addr in exit_vars:
            outflow[exit_vars[addr]] = 1
        coeffs = dict(outflow)
        coeffs[x_block[addr]] = coeffs.get(x_block[addr], 0) - 1
        model.add_eq(coeffs, 0)

    # Loop bounds: back edges <= bound * entry edges, and/or
    # back edges <= total (per function invocation).
    for header, loop in loops.items():
        if loop.bound is None and loop.bound_total is None:
            raise IPETError(
                f"{cfg.name}: loop at {header:#x} has no bound")
        if loop.bound is not None:
            coeffs = {}
            for edge in loop.back_edges:
                coeffs[x_edge[edge]] = coeffs.get(x_edge[edge], 0) + 1
            for edge in loop.entry_edges:
                coeffs[x_edge[edge]] = coeffs.get(x_edge[edge], 0) \
                    - loop.bound
            if loop.header == cfg.entry:
                # Entering the function enters the loop.
                coeffs[entry_var] = coeffs.get(entry_var, 0) - loop.bound
            model.add_le(coeffs, 0)
        if loop.bound_total is not None:
            coeffs = {}
            for edge in loop.back_edges:
                coeffs[x_edge[edge]] = coeffs.get(x_edge[edge], 0) + 1
            model.add_le(coeffs, loop.bound_total)

    # Objective.
    objective = {}
    for addr, var in x_block.items():
        cost = block_costs.get(addr, 0)
        if cost:
            objective[var] = cost
    for edge, extra in edge_extras.items():
        if extra and edge in x_edge:
            objective[x_edge[edge]] = objective.get(x_edge[edge], 0) + extra
    for header, penalty in (scope_penalties or {}).items():
        if not penalty:
            continue
        loop = loops.get(header)
        if loop is None:
            continue
        for edge in loop.entry_edges:
            objective[x_edge[edge]] = objective.get(
                x_edge[edge], 0) + penalty
        if loop.header == cfg.entry:
            objective[entry_var] = objective.get(entry_var, 0) + penalty
    if not objective:
        objective[entry_var] = 0
    model.set_objective(objective)

    solution = model.solve()
    if solution.status != Status.OPTIMAL:
        raise IPETError(
            f"{cfg.name}: IPET ILP is {solution.status} "
            f"({model.stats()})")
    counts = {addr: round(solution[var]) for addr, var in x_block.items()}
    return IPETResult(wcet=round(solution.objective), block_counts=counts)
