"""Worst-case cycle cost of individual instructions.

Uses the *same* level pipeline and :func:`~repro.memory.levels.serve_costs`
table as the simulator (:mod:`repro.memory.levels`); the only difference
is that concrete addresses/cache states are replaced by static
classifications:

* scratchpad/uncached systems: every address range maps to its region
  statically, so costs are exact — the paper's point that a scratchpad
  needs *no* analysis beyond region annotation;
* cached systems: an access classified always-hit at the outermost cache
  costs that level's hit; anything else is priced by walking the level
  chain — it pays the miss fills down to the first level whose MUST
  analysis guarantees a hit (Hardy & Puaut), or all the way to main
  memory; writes are write-through and cost main-memory time in both
  worlds.
"""

from __future__ import annotations

from ..isa.opcodes import Cond, Op
from ..memory.hierarchy import SystemConfig
from ..memory.levels import path_geometry, serve_costs
from ..memory.regions import RegionKind
from ..memory.timing import (
    BRANCH_REFILL_CYCLES,
    instruction_extra_cycles,
)
from .accesses import DataAccess
from .cacheanalysis import (
    AH,
    FM,
    CacheAnalysisResult,
    HierarchyCacheResult,
    LevelClassification,
)


def _wrap_single_level(config: SystemConfig, result: CacheAnalysisResult):
    """Adapt a bare single-level analysis result to the hierarchy shape."""
    level = config.cache_level_specs[0]
    wrapped = HierarchyCacheResult()
    wrapped.levels.append(LevelClassification(
        level=level,
        iresult=result if level.icache is not None else None,
        dresult=result if level.dcache is not None else None))
    return wrapped


class CostModel:
    """Static per-instruction worst-case costs for one system config."""

    def __init__(self, config: SystemConfig, data_accesses: dict,
                 cache_result=None):
        self.config = config
        self.timing = config.timing
        self.spm_size = config.spm_size
        self.cache = config.cache
        self._data = data_accesses

        fetch_levels = config.fetch_path()
        data_levels = config.data_path()
        if (fetch_levels or data_levels) and cache_result is None:
            raise ValueError("cached config needs a cache analysis result")
        if isinstance(cache_result, CacheAnalysisResult):
            cache_result = _wrap_single_level(config, cache_result)
        self.cache_result = cache_result

        #: [(CacheLevel, CacheAnalysisResult)] along each access path.
        self._fetch = (cache_result.fetch_results()
                       if fetch_levels else [])
        self._data_levels = (cache_result.data_results()
                             if data_levels else [])
        # Raw per-level classification dicts: the per-instruction cost
        # loop probes these thousands of times, so skip the accessor
        # methods and their AccessClass default handling.
        self._fetch_classes = [result.classes
                               for _level, result in self._fetch]
        self._data_classes = [result.classes
                              for _level, result in self._data_levels]
        self._fetch_serve = serve_costs(
            path_geometry(fetch_levels, "i"), self.timing)
        self._data_serve = serve_costs(
            path_geometry(data_levels, "d"), self.timing)

    # -- region helpers ------------------------------------------------------

    def _region_kind(self, addr: int) -> str:
        if addr < self.spm_size:
            return RegionKind.SPM
        return RegionKind.MAIN

    def _uncached_cost(self, lo: int, hi: int, width: int) -> int:
        """Worst-case cost of one access somewhere in [lo, hi)."""
        kinds = {self._region_kind(lo), self._region_kind(max(lo, hi - 1))}
        return max(self.timing.cycles(kind, width) for kind in kinds)

    def _all_in_spm(self, access: DataAccess) -> bool:
        return (not access.unknown and bool(access.ranges)
                and all(hi <= self.spm_size for _lo, hi in access.ranges))

    # -- chain walking -------------------------------------------------------

    def _fetch_miss_cost(self, addr: int) -> int:
        """Cycles of an outer-level fetch miss: fills down to the first
        level whose MUST analysis guarantees the line, else main."""
        for idx in range(1, len(self._fetch_classes)):
            entry = self._fetch_classes[idx].get(addr)
            if entry is not None and entry.fetch == AH:
                return self._fetch_serve[idx]
        return self._fetch_serve[len(self._fetch_classes)]

    def _data_miss_cost(self, addr: int) -> int:
        for idx in range(1, len(self._data_classes)):
            entry = self._data_classes[idx].get(addr)
            if entry is not None and entry.data == AH:
                return self._data_serve[idx]
        return self._data_serve[len(self._data_classes)]

    # -- fetch ---------------------------------------------------------------

    def fetch_cost(self, addr: int, instr) -> int:
        halves = instr.size // 2
        if addr < self.spm_size:
            return halves * self.timing.cycles(RegionKind.SPM, 2)
        if not self._fetch:
            return halves * self.timing.cycles(RegionKind.MAIN, 2)
        level, _result = self._fetch[0]
        entry = self._fetch_classes[0].get(addr)
        fetch_class = entry.fetch if entry is not None else None
        if fetch_class in (AH, FM):
            # FM is charged as a hit here; the per-scope penalty is added
            # by the IPET builder on the loop's entry edges.
            return halves * level.hit_cycles
        miss = self._fetch_miss_cost(addr)
        if halves == 1:
            return miss
        line = level.icache.line_size
        same_line = addr // line == (addr + 2) // line
        if same_line:
            return miss + level.hit_cycles
        # The outer level's classification covers both halves, so a
        # deeper guaranteed hit (if any) covers both of them too.
        return 2 * miss

    def fetch_miss_penalty(self, addr: int) -> int:
        """Extra cycles of the one FM miss vs. the charged hit."""
        if not self._fetch:
            return 0
        return (self._fetch_serve[len(self._fetch)]
                - self._fetch[0][0].hit_cycles)

    # -- data ----------------------------------------------------------------

    def _read_cost(self, addr: int, access: DataAccess) -> int:
        if not self._data_levels or self._all_in_spm(access):
            # No cache on this access's path: region timing is exact.
            worst = 0
            for lo, hi in access.ranges or ((0, 0),):
                worst = max(worst,
                            self._uncached_cost(lo, hi, access.width))
            if access.unknown:
                worst = self.timing.cycles(RegionKind.MAIN, access.width)
            return worst * access.count
        if access.count == 1:
            entry = self._data_classes[0].get(addr)
            if entry is not None and entry.data == AH:
                return self._data_levels[0][0].hit_cycles
        return self._data_miss_cost(addr) * access.count

    def _write_cost(self, access: DataAccess) -> int:
        if self._data_levels and not self._all_in_spm(access):
            # Write-through, no allocate: main-memory cost per store.
            return self.timing.cycles(RegionKind.MAIN,
                                      access.width) * access.count
        worst = 0
        for lo, hi in access.ranges or ((0, 0),):
            worst = max(worst, self._uncached_cost(lo, hi, access.width))
        if access.unknown:
            worst = self.timing.cycles(RegionKind.MAIN, access.width)
        return worst * access.count

    def data_cost(self, addr: int) -> int:
        access = self._data.get(addr)
        if access is None:
            return 0
        if access.is_write:
            return self._write_cost(access)
        return self._read_cost(addr, access)

    # -- whole instructions --------------------------------------------------

    def instr_cost(self, addr: int, instr):
        """Return ``(base_cycles, taken_edge_extra)`` for one instruction.

        *base_cycles* is charged whenever the instruction executes;
        *taken_edge_extra* (non-zero only for conditional branches) is
        charged on the taken edge by the IPET builder.
        """
        cost = self.fetch_cost(addr, instr)
        cost += self.data_cost(addr)
        cost += instruction_extra_cycles(instr.op)
        taken_extra = 0
        op = instr.op
        if op in (Op.B, Op.BL, Op.BX):
            cost += BRANCH_REFILL_CYCLES
        elif op is Op.POP and instr.with_link:
            cost += BRANCH_REFILL_CYCLES
        elif op is Op.BCC:
            taken_extra = BRANCH_REFILL_CYCLES
        return cost, taken_extra
