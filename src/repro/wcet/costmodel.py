"""Worst-case cycle cost of individual instructions.

Uses the *same* timing constants as the simulator
(:mod:`repro.memory.timing`); the only difference is that concrete
addresses/cache states are replaced by static classifications:

* scratchpad/uncached systems: every address range maps to its region
  statically, so costs are exact — the paper's point that a scratchpad
  needs *no* analysis beyond region annotation;
* cached systems: instruction fetches and data reads classified always-hit
  cost one cycle, everything else is charged the full line fill; writes are
  write-through and cost main-memory time in both worlds.
"""

from __future__ import annotations

from ..isa.opcodes import Cond, Op
from ..memory.hierarchy import SystemConfig
from ..memory.regions import RegionKind
from ..memory.timing import (
    BRANCH_REFILL_CYCLES,
    CACHE_HIT_CYCLES,
    instruction_extra_cycles,
)
from .accesses import DataAccess
from .cacheanalysis import AH, FM, CacheAnalysisResult


class CostModel:
    """Static per-instruction worst-case costs for one system config."""

    def __init__(self, config: SystemConfig, data_accesses: dict,
                 cache_result: CacheAnalysisResult = None):
        self.config = config
        self.timing = config.timing
        self.spm_size = config.spm_size
        self.cache = config.cache
        self.cache_result = cache_result
        self._data = data_accesses
        self._miss = (self.timing.line_fill_cycles(self.cache.line_size)
                      if self.cache else 0)
        if self.cache and cache_result is None:
            raise ValueError("cached config needs a cache analysis result")

    # -- region helpers ----------------------------------------------------------

    def _region_kind(self, addr: int) -> str:
        if addr < self.spm_size:
            return RegionKind.SPM
        return RegionKind.MAIN

    def _uncached_cost(self, lo: int, hi: int, width: int) -> int:
        """Worst-case cost of one access somewhere in [lo, hi)."""
        kinds = {self._region_kind(lo), self._region_kind(max(lo, hi - 1))}
        return max(self.timing.cycles(kind, width) for kind in kinds)

    # -- fetch -----------------------------------------------------------------------

    def fetch_cost(self, addr: int, instr) -> int:
        halves = instr.size // 2
        if self.cache is None:
            kind = self._region_kind(addr)
            return halves * self.timing.cycles(kind, 2)
        fetch_class = self.cache_result.fetch_class(addr)
        if fetch_class in (AH, FM):
            # FM is charged as a hit here; the per-scope penalty is added
            # by the IPET builder on the loop's entry edges.
            return halves * CACHE_HIT_CYCLES
        if halves == 1:
            return self._miss
        same_line = (addr // self.cache.line_size ==
                     (addr + 2) // self.cache.line_size)
        if same_line:
            return self._miss + CACHE_HIT_CYCLES
        return 2 * self._miss

    def fetch_miss_penalty(self, addr: int) -> int:
        """Extra cycles of the one FM miss vs. the charged hit."""
        return self._miss - CACHE_HIT_CYCLES

    # -- data ---------------------------------------------------------------------------

    def _read_cost(self, addr: int, access: DataAccess) -> int:
        if self.cache is None or not self.cache.unified:
            # No cache on the data path: region timing is exact.
            worst = 0
            for lo, hi in access.ranges or ((0, 0),):
                worst = max(worst,
                            self._uncached_cost(lo, hi, access.width))
            if access.unknown:
                worst = self.timing.cycles(RegionKind.MAIN, access.width)
            return worst * access.count
        if access.count == 1 and \
                self.cache_result.data_class(addr) == AH:
            return CACHE_HIT_CYCLES
        return self._miss * access.count

    def _write_cost(self, access: DataAccess) -> int:
        if self.cache is not None and self.cache.unified:
            # Write-through, no allocate: main-memory cost per store.
            return self.timing.cycles(RegionKind.MAIN,
                                      access.width) * access.count
        worst = 0
        for lo, hi in access.ranges or ((0, 0),):
            worst = max(worst, self._uncached_cost(lo, hi, access.width))
        if access.unknown:
            worst = self.timing.cycles(RegionKind.MAIN, access.width)
        return worst * access.count

    def data_cost(self, addr: int) -> int:
        access = self._data.get(addr)
        if access is None:
            return 0
        if access.is_write:
            return self._write_cost(access)
        return self._read_cost(addr, access)

    # -- whole instructions --------------------------------------------------------------

    def instr_cost(self, addr: int, instr):
        """Return ``(base_cycles, taken_edge_extra)`` for one instruction.

        *base_cycles* is charged whenever the instruction executes;
        *taken_edge_extra* (non-zero only for conditional branches) is
        charged on the taken edge by the IPET builder.
        """
        cost = self.fetch_cost(addr, instr)
        cost += self.data_cost(addr)
        cost += instruction_extra_cycles(instr.op)
        taken_extra = 0
        op = instr.op
        if op in (Op.B, Op.BL, Op.BX):
            cost += BRANCH_REFILL_CYCLES
        elif op is Op.POP and instr.with_link:
            cost += BRANCH_REFILL_CYCLES
        elif op is Op.BCC:
            taken_extra = BRANCH_REFILL_CYCLES
        return cost, taken_extra
