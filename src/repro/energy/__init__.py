"""Energy modelling (the knapsack benefit function of the paper)."""

from .model import (
    CPU_INSTR_NJ,
    MAIN_ACCESS_NJ,
    SPM_ACCESS_NJ,
    EnergyModel,
    cache_access_energy_nj,
    program_energy_nj,
)

__all__ = [
    "CPU_INSTR_NJ", "MAIN_ACCESS_NJ", "SPM_ACCESS_NJ",
    "EnergyModel", "cache_access_energy_nj", "program_energy_nj",
]
