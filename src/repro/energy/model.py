"""Instruction-level energy model (Steinke et al. style).

The paper's allocation objective is *energy*: memory objects go to the
scratchpad to maximise saved energy per access, using the instruction-level
model of Steinke et al. (PATMOS 2001) with the memory energies of the
scratchpad-vs-cache comparison (Banakar et al., CODES 2002).

Absolute calibration is irrelevant to the reproduction (only benefit
*ratios* steer the knapsack), so the constants below are representative
values in nanojoules with the relationships those papers report:

* a main-memory access costs an order of magnitude more energy than a
  scratchpad access of the same width;
* 32-bit main-memory accesses cost more than 16-bit ones (two bus cycles);
* cache accesses cost more than scratchpad accesses of the same capacity
  (tag store + comparators), growing with cache size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..memory.cache import CacheConfig
from ..memory.regions import RegionKind

#: Base CPU energy per executed instruction (nJ).
CPU_INSTR_NJ = 1.0

#: Main-memory access energy by width in bytes (nJ).
MAIN_ACCESS_NJ = {1: 15.5, 2: 15.5, 4: 31.0}

#: Scratchpad access energy by width in bytes (nJ) — roughly an order of
#: magnitude below main memory (Banakar et al.).
SPM_ACCESS_NJ = {1: 1.2, 2: 1.2, 4: 1.6}


def cache_access_energy_nj(config: CacheConfig) -> float:
    """Energy per cache access (hit path) for a given geometry (nJ).

    CACTI-flavoured scaling: tag + data array energy grows with log2 of
    the capacity and with associativity (parallel ways).
    """
    size_term = 0.35 * math.log2(max(config.size, 64) / 64 + 1)
    way_term = 0.45 * config.assoc
    return 1.1 + size_term + way_term


@dataclass(frozen=True)
class EnergyModel:
    """Access/instruction energies used by allocator and reports."""

    cpu_instr: float = CPU_INSTR_NJ
    main: dict = field(default_factory=lambda: dict(MAIN_ACCESS_NJ))
    spm: dict = field(default_factory=lambda: dict(SPM_ACCESS_NJ))

    def access_energy(self, kind: str, width: int) -> float:
        table = self.spm if kind == RegionKind.SPM else self.main
        return table[width]

    def spm_benefit_per_access(self, width: int) -> float:
        """Energy saved by serving one access from SPM instead of main."""
        return self.main[width] - self.spm[width]

    def object_benefit(self, kind: str, accesses: int,
                       element_width: int) -> float:
        """Knapsack benefit of placing one object in the scratchpad.

        Code objects are fetched 16 bits at a time; data objects are
        accessed at their element width.
        """
        width = 2 if kind == "code" else element_width
        return accesses * self.spm_benefit_per_access(width)


def program_energy_nj(image, result, model: EnergyModel = None) -> float:
    """Total energy of a profiled run (fetch + data + CPU base).

    *result* must come from ``simulate(..., profile=True)``.  Each access
    is priced by the region its address landed in; a cached system prices
    main-memory addresses at main cost for misses — callers wanting cache
    energy should add :func:`cache_access_energy_nj` terms from the cache
    statistics.
    """
    model = model or EnergyModel()
    total = model.cpu_instr * result.instructions

    def kind_of(addr):
        placed = image.object_at(addr)
        if placed is not None and placed.region == "scratchpad":
            return RegionKind.SPM
        return RegionKind.MAIN

    for addr, count in result.fetch_counts.items():
        total += count * model.access_energy(kind_of(addr), 2)
    for addr, count in result.data_counts.items():
        # Data widths are not recorded per address; word cost is an upper
        # approximation used consistently for reporting.
        total += count * model.access_energy(kind_of(addr), 4)
    return total
