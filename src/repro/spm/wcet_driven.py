"""WCET-driven scratchpad allocation (the paper's future-work proposal).

Section 5 of the paper proposes replacing the *energy* cost function with
one that places objects "that lie on the critical path" onto the fast
memory, to optimise the WCET bound directly.  This module implements that
idea as a one-shot analysis:

1. analyse the all-in-main-memory layout to get worst-case execution
   counts of every basic block (IPET's critical-path solution);
2. price each memory object by the *cycles* the worst-case path would save
   if the object moved to the scratchpad (fetches: Table-1 main vs. SPM at
   16 bit; literal-pool loads and data accesses at their widths);
3. solve the same knapsack, but with cycle benefits.

Because moving objects can shift the critical path, the result is a
heuristic (the benefit is an upper estimate priced on the *old* critical
path) — but each step is exact, and re-analysis after placement always
yields a safe bound; the experiment (ablation A2) compares it against the
energy-driven allocation of the main flow.
"""

from __future__ import annotations

from ..isa.opcodes import LOAD_WIDTH, STORE_WIDTH, Op
from ..link.linker import link
from ..link.objects import Program
from ..memory.hierarchy import SystemConfig
from ..memory.regions import RegionKind
from ..memory.timing import AccessTiming
from ..wcet.analyzer import analyze_wcet
from .allocator import Allocation
from .knapsack import Item, solve_knapsack_ilp


def _worst_case_invocations(result):
    """Function -> worst-case number of invocations, from IPET counts."""
    invocations = {result.entry: 1}
    # Top-down: callers before callees.
    order = []
    seen = set()

    def visit(name):
        if name in seen:
            return
        seen.add(name)
        order.append(name)
        cfg = result.cfgs[name]
        entry_by_addr = {c.entry: n for n, c in result.cfgs.items()}
        for block in cfg.blocks.values():
            if block.call_target is not None:
                visit(entry_by_addr[block.call_target])

    visit(result.entry)
    entry_by_addr = {c.entry: n for n, c in result.cfgs.items()}
    for name in order:
        cfg = result.cfgs[name]
        count_self = invocations.get(name, 0)
        for baddr, block in cfg.blocks.items():
            if block.call_target is None:
                continue
            callee = entry_by_addr[block.call_target]
            executions = result.block_counts[name].get(baddr, 0)
            invocations[callee] = invocations.get(callee, 0) + \
                count_self * executions
    return invocations


def wcet_cycle_benefits(image, result, timing: AccessTiming = None):
    """Cycle-saving estimate per object if moved to the scratchpad."""
    timing = timing or AccessTiming.table1()
    fetch_delta = timing.cycles(RegionKind.MAIN, 2) - \
        timing.cycles(RegionKind.SPM, 2)
    width_delta = {w: timing.cycles(RegionKind.MAIN, w) -
                   timing.cycles(RegionKind.SPM, w) for w in (1, 2, 4)}

    invocations = _worst_case_invocations(result)
    benefits = {}

    def add(name, cycles):
        benefits[name] = benefits.get(name, 0) + cycles

    for fname, cfg in result.cfgs.items():
        scale = invocations.get(fname, 0)
        if scale == 0:
            continue
        counts = result.block_counts[fname]
        for baddr, block in cfg.blocks.items():
            executions = counts.get(baddr, 0) * scale
            if executions == 0:
                continue
            for addr, instr in block.instrs:
                add(fname, executions * fetch_delta * (instr.size // 2))
                if instr.op is Op.LDRPC:
                    # Literal pool access: moves with the function object.
                    add(fname, executions * width_delta[4])
                    continue
                width = LOAD_WIDTH.get(instr.op) or STORE_WIDTH.get(
                    instr.op)
                if width is None:
                    continue
                note = image.access_notes.get(addr)
                if note is None or note.stack or len(note.targets) != 1:
                    continue  # stack or ambiguous: no attributable gain
                symbol, _lo, _hi = note.targets[0]
                add(symbol, executions * width_delta[width])
    return benefits


def allocate_wcet_driven(program: Program, spm_size: int,
                         entry: str = "_start",
                         baseline_config: SystemConfig = None) -> Allocation:
    """Pick SPM contents to minimise the WCET bound (one-shot heuristic).

    *baseline_config* is the memory system the all-in-main layout is
    analysed under; it defaults to plain main memory.  Pass the cached
    system when a cache sits behind the scratchpad (a hybrid pipeline)
    so the critical-path block counts reflect that hierarchy — the
    cycle pricing itself stays the Table-1 main-vs-SPM delta, an upper
    estimate either way.
    """
    if spm_size <= 0:
        return Allocation(spm_size=spm_size, method="wcet")
    baseline_image = link(program, spm_size=0)
    baseline = analyze_wcet(baseline_image,
                            baseline_config or SystemConfig.uncached(),
                            entry=entry)
    benefits = wcet_cycle_benefits(baseline_image, baseline)

    items = []
    for name, kind, size in program.memory_objects():
        benefit = benefits.get(name, 0)
        if benefit > 0:
            items.append(Item(name=name, size=(size + 3) & ~3,
                              benefit=benefit))
    chosen, benefit = solve_knapsack_ilp(items, spm_size)
    used = sum(it.size for it in items if it.name in chosen)
    return Allocation(spm_size=spm_size, objects=chosen, benefit=benefit,
                      used_bytes=used, method="wcet")
