"""Scratchpad allocation: energy-optimal knapsack + WCET-driven variant."""

from .knapsack import Item, KnapsackError, solve_knapsack_dp, \
    solve_knapsack_ilp
from .allocator import Allocation, allocate_energy_optimal, build_items
from .wcet_driven import allocate_wcet_driven, wcet_cycle_benefits

__all__ = [
    "Item", "KnapsackError", "solve_knapsack_dp", "solve_knapsack_ilp",
    "Allocation", "allocate_energy_optimal", "build_items",
    "allocate_wcet_driven", "wcet_cycle_benefits",
]
