"""Static energy-optimal scratchpad allocation (Steinke et al., DATE'02).

The paper's left branch (Figure 1): given a profile of a typical run, each
memory object (function or global) gets a *benefit* — the energy saved if
all its accesses were served by the scratchpad — and the object subset is
chosen by a knapsack ILP under the SPM capacity.  Placement is then fixed
at link time, which is what makes every access statically predictable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..energy.model import EnergyModel
from ..link.objects import Program
from ..sim.profile import ProgramProfile
from .knapsack import Item, solve_knapsack_dp, solve_knapsack_ilp


@dataclass
class Allocation:
    """Result of one allocation decision."""

    spm_size: int
    objects: set = field(default_factory=set)
    benefit: float = 0.0
    used_bytes: int = 0
    method: str = "ilp"

    def __contains__(self, name):
        return name in self.objects


def _aligned(size: int) -> int:
    """Bytes the linker will actually reserve (4-byte alignment)."""
    return (size + 3) & ~3


def build_items(program: Program, profile: ProgramProfile,
                model: EnergyModel = None):
    """Knapsack items for every allocatable object of *program*."""
    model = model or EnergyModel()
    items = []
    for func in program.functions:
        if func.name not in profile:
            continue
        accesses = profile[func.name].accesses
        items.append(Item(
            name=func.name, size=_aligned(func.size),
            benefit=model.object_benefit("code", accesses, 2)))
    for glob in program.globals:
        if glob.name not in profile:
            continue
        accesses = profile[glob.name].accesses
        items.append(Item(
            name=glob.name, size=_aligned(glob.size),
            benefit=model.object_benefit("data", accesses,
                                         glob.element_width)))
    return items


def allocate_energy_optimal(program: Program, profile: ProgramProfile,
                            spm_size: int, model: EnergyModel = None,
                            method: str = "ilp") -> Allocation:
    """Choose the energy-optimal object set for an *spm_size* scratchpad.

    *method* selects the solver: ``"ilp"`` (the paper's formulation) or
    ``"dp"`` (exact dynamic program; used for cross-validation).
    """
    if spm_size <= 0:
        return Allocation(spm_size=spm_size, method=method)
    items = build_items(program, profile, model)
    if method == "ilp":
        chosen, benefit = solve_knapsack_ilp(items, spm_size)
    elif method == "dp":
        chosen, benefit = solve_knapsack_dp(items, spm_size)
    else:
        raise ValueError(f"unknown method {method!r}")
    used = sum(it.size for it in items if it.name in chosen)
    return Allocation(spm_size=spm_size, objects=chosen, benefit=benefit,
                      used_bytes=used, method=method)
