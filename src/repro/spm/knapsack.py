"""Knapsack solvers for scratchpad allocation.

The paper formulates static allocation as a knapsack problem in ILP form
and solves it with a commercial solver; :func:`solve_knapsack_ilp` does the
same with :mod:`repro.ilp`.  :func:`solve_knapsack_dp` is an independent
exact dynamic program used to cross-validate the ILP path in tests (both
must agree on the optimal benefit).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ilp import Model, Status


@dataclass(frozen=True)
class Item:
    """One knapsack candidate (a memory object)."""

    name: str
    size: int
    benefit: float


class KnapsackError(Exception):
    pass


def solve_knapsack_ilp(items, capacity: int):
    """0/1 knapsack via ILP: returns (chosen names, total benefit)."""
    candidates = [it for it in items if it.benefit > 0 and
                  it.size <= capacity]
    if not candidates:
        return set(), 0.0
    model = Model("spm_knapsack", maximize=True)
    xs = {it.name: model.add_var(f"y_{it.name}", lo=0, hi=1, integer=True)
          for it in candidates}
    model.add_le({xs[it.name]: it.size for it in candidates}, capacity)
    model.set_objective({xs[it.name]: it.benefit for it in candidates})
    solution = model.solve()
    if solution.status != Status.OPTIMAL:
        raise KnapsackError(f"knapsack ILP is {solution.status}")
    chosen = {it.name for it in candidates
              if round(solution[xs[it.name]]) == 1}
    total = sum(it.benefit for it in candidates if it.name in chosen)
    return chosen, total


def solve_knapsack_dp(items, capacity: int, scale: int = 1000):
    """0/1 knapsack via dynamic programming over capacities.

    Benefits are floats; they are scaled to integers for exactness of the
    DP table comparisons (ties resolved identically to the ILP's optimum
    value up to 1/scale).
    """
    candidates = [it for it in items if it.benefit > 0 and
                  it.size <= capacity]
    best = [0] * (capacity + 1)
    keep = [[False] * (capacity + 1) for _ in candidates]
    for index, item in enumerate(candidates):
        weight = item.size
        value = round(item.benefit * scale)
        for cap in range(capacity, weight - 1, -1):
            candidate_value = best[cap - weight] + value
            if candidate_value > best[cap]:
                best[cap] = candidate_value
                keep[index][cap] = True
    chosen = set()
    cap = capacity
    for index in range(len(candidates) - 1, -1, -1):
        if keep[index][cap]:
            chosen.add(candidates[index].name)
            cap -= candidates[index].size
    total = sum(it.benefit for it in candidates if it.name in chosen)
    return chosen, total
