"""Packaging for the memory-hierarchy predictability reproduction.

The execution environment has no network and no ``wheel`` package, so PEP 660
editable installs are unavailable; keeping the metadata in ``setup.py`` lets
``pip install -e .`` fall back to ``setup.py develop``.

The mini-C benchmark programs under ``repro/benchmarks/sources/*.mc`` are
data files read through :mod:`importlib.resources` at runtime
(:meth:`repro.benchmarks.suite.Benchmark.source`), so they must ship inside
the package via ``package_data`` — not only in the source tree.
"""

from setuptools import find_namespace_packages, setup

setup(
    name="repro-memory-hierarchies",
    version="0.1.0",
    description=(
        "Reproduction of 'Influence of Memory Hierarchies on Predictability "
        "for Time Constrained Embedded Software' (Wehmeyer & Marwedel, 2005)"
    ),
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_namespace_packages("src"),
    package_data={"repro.benchmarks": ["sources/*.mc"]},
    include_package_data=True,
    entry_points={
        "console_scripts": [
            "repro-cc = repro.cli:main",
            "repro-gen = repro.gen.cli:main",
            "repro-experiments = repro.experiments.runner:main",
            "repro-serve = repro.serve.cli:main",
            "repro-serve-load = repro.serve.loadgen:main",
        ],
    },
)
